//! Vendored API-subset stand-in for `proptest`.
//!
//! Implements the property-testing surface this workspace's tests use:
//! the `proptest!` macro (with `#![proptest_config(..)]`), range and tuple
//! strategies, `prop_map`, `any::<T>()`, `collection::vec`, and the
//! `prop_assert*` macros. Sampling is plain uniform draws from a
//! deterministic per-test RNG — no shrinking, no failure persistence.
//! Swap for the real crates-io `proptest` when building with network
//! access.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-test deterministic RNG (SplitMix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test identifier so every run of a
    /// given test sees the same case sequence.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`
/// (re-exported as `ProptestConfig` like the real prelude does).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Value-generation strategy, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values, mirroring `Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy yielding one fixed value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // 128-bit span arithmetic: `end - start` overflows the native
                // width for wide signed ranges (e.g. i32::MIN..i32::MAX), and
                // debug builds panic on overflow.
                let span = self.end as i128 - self.start as i128;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end as i128 - start as i128 + 1;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                (start as i128 + off) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + rng.unit_f64() as $t * (end - start)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i32, i64);

/// Strategy over a type's whole domain, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection` subset).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec` strategy with element strategy and length range.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Mirrors `proptest::prelude`: everything the `proptest!` DSL needs.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Mirrors `proptest::proptest!`: each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over sampled cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases: u32 = ($cfg).cases;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

/// Mirrors `proptest::prop_assert!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.5f64..=2.0, flip in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=2.0).contains(&y));
            let _ = flip;
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0usize..5, 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn prop_map_composes(shape in (1u64..5, 10u64..20).prop_map(|(a, b)| a * b)) {
            prop_assert!((10..100).contains(&shape));
        }
    }

    #[test]
    fn whole_domain_ranges_do_not_overflow() {
        // Regression: span arithmetic must not overflow the native width in
        // debug builds for whole-domain ranges, signed or unsigned.
        let mut rng = TestRng::deterministic("whole-domain");
        let _ = Strategy::sample(&(0u64..=u64::MAX), &mut rng);
        let _ = Strategy::sample(&(i32::MIN..=i32::MAX), &mut rng);
        let _ = Strategy::sample(&(i32::MIN..i32::MAX), &mut rng);
        let x = Strategy::sample(&(i64::MIN..=-1i64), &mut rng);
        assert!(x < 0);
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
