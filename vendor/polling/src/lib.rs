//! Vendored API-subset stand-in for the `polling` crate (offline build).
//!
//! Portable readiness polling over raw file descriptors: register sources
//! with interest flags, block in [`Poller::wait`] until one is ready, and
//! wake the waiter from any thread with [`Poller::notify`]. The backend is
//! epoll(7) on Linux/Android and poll(2) on other Unix platforms; both are
//! level-triggered, so an event repeats on every `wait` until the
//! condition is consumed (read drained, write buffer full, or interest
//! changed with [`Poller::modify`]).
//!
//! Only the subset this workspace uses is implemented: no edge-triggered
//! or oneshot modes, no timers, and `wait` delivers into a caller-owned
//! `Vec<Event>`. Keys are caller-chosen `usize` values; [`NOTIFY_KEY`] is
//! reserved for the internal wakeup source and never delivered.

#[cfg(not(unix))]
compile_error!("the vendored `polling` stand-in supports Unix platforms only");

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Reserved key for the internal notify source; never delivered to callers
/// and rejected by [`Poller::add`].
pub const NOTIFY_KEY: usize = usize::MAX;

/// Interest in, or readiness of, a registered source.
///
/// When passed to `add`/`modify` the flags are the *interest set*; when
/// returned from `wait` they are the *ready set*. Error and hangup
/// conditions are folded into both flags so a caller that only watches one
/// direction still observes the failure and lets the subsequent I/O call
/// report it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

impl Event {
    pub fn none(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
    pub fn readable(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }
    pub fn writable(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }
    pub fn all(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }
}

fn timeout_millis(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                // Round up so a 100µs timeout does not busy-spin at 0ms.
                let ms = (d.as_micros().saturating_add(999) / 1000).min(i32::MAX as u128);
                (ms as i32).max(1)
            }
        }
    }
}

/// The default poller for this platform.
#[cfg(any(target_os = "linux", target_os = "android"))]
pub type Poller = EpollPoller;
#[cfg(all(unix, not(any(target_os = "linux", target_os = "android"))))]
pub type Poller = PollPoller;

// ---------------------------------------------------------------------------
// epoll backend (Linux/Android)
// ---------------------------------------------------------------------------

#[cfg(any(target_os = "linux", target_os = "android"))]
mod epoll_sys {
    use core::ffi::{c_int, c_uint, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    // The kernel ABI packs epoll_event on x86/x86_64 (12 bytes); other
    // architectures use natural alignment (16 bytes).
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// epoll(7)-backed poller: the kernel tracks registrations, `notify` is an
/// eventfd registered under [`NOTIFY_KEY`] and drained inside `wait`.
#[cfg(any(target_os = "linux", target_os = "android"))]
pub struct EpollPoller {
    epfd: RawFd,
    event_fd: RawFd,
}

#[cfg(any(target_os = "linux", target_os = "android"))]
impl EpollPoller {
    pub fn new() -> io::Result<Self> {
        use epoll_sys as sys;
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let event_fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if event_fd < 0 {
            let err = io::Error::last_os_error();
            unsafe { sys::close(epfd) };
            return Err(err);
        }
        let poller = EpollPoller { epfd, event_fd };
        poller.ctl(
            sys::EPOLL_CTL_ADD,
            event_fd,
            Some(Event::readable(NOTIFY_KEY)),
        )?;
        Ok(poller)
    }

    fn interest_bits(ev: Event) -> u32 {
        use epoll_sys as sys;
        let mut bits = 0;
        if ev.readable {
            bits |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if ev.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    fn ctl(&self, op: core::ffi::c_int, fd: RawFd, ev: Option<Event>) -> io::Result<()> {
        use epoll_sys as sys;
        let mut raw = sys::EpollEvent {
            events: ev.map(Self::interest_bits).unwrap_or(0),
            data: ev.map(|e| e.key as u64).unwrap_or(0),
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut raw) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    /// Register a source under `ev.key` with `ev`'s interest set.
    pub fn add(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        if ev.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "NOTIFY_KEY is reserved",
            ));
        }
        self.ctl(epoll_sys::EPOLL_CTL_ADD, source.as_raw_fd(), Some(ev))
    }

    /// Replace the interest set of a registered source.
    pub fn modify(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        if ev.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "NOTIFY_KEY is reserved",
            ));
        }
        self.ctl(epoll_sys::EPOLL_CTL_MOD, source.as_raw_fd(), Some(ev))
    }

    /// Deregister a source. Must be called before the fd is closed.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(epoll_sys::EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Block until a source is ready, the timeout elapses, or `notify` is
    /// called. Ready events are appended to `events` (cleared first);
    /// returns the number delivered. A `notify` wakeup is consumed
    /// internally and can yield `Ok(0)`.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        use epoll_sys as sys;
        events.clear();
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = unsafe {
            sys::epoll_wait(
                self.epfd,
                raw.as_mut_ptr(),
                raw.len() as i32,
                timeout_millis(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in raw.iter().take(n as usize) {
            let key = { ev.data } as usize;
            if key == NOTIFY_KEY {
                let mut buf = [0u8; 8];
                unsafe { sys::read(self.event_fd, buf.as_mut_ptr() as *mut core::ffi::c_void, 8) };
                continue;
            }
            let bits = { ev.events };
            let fail = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            events.push(Event {
                key,
                readable: fail || bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                writable: fail || bits & sys::EPOLLOUT != 0,
            });
        }
        Ok(events.len())
    }

    /// Wake a concurrent `wait` from any thread. Coalesces: multiple
    /// notifies before the next `wait` produce one wakeup.
    pub fn notify(&self) -> io::Result<()> {
        use epoll_sys as sys;
        let one: u64 = 1;
        let rc = unsafe {
            sys::write(
                self.event_fd,
                (&one as *const u64) as *const core::ffi::c_void,
                8,
            )
        };
        // EAGAIN means the counter is already non-zero: the wakeup is
        // pending, which is all notify promises.
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        unsafe {
            epoll_sys::close(self.event_fd);
            epoll_sys::close(self.epfd);
        }
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
unsafe impl Send for EpollPoller {}
#[cfg(any(target_os = "linux", target_os = "android"))]
unsafe impl Sync for EpollPoller {}

// ---------------------------------------------------------------------------
// poll(2) backend (all Unix; the default off Linux, CI-covered on Linux)
// ---------------------------------------------------------------------------

mod poll_sys {
    use core::ffi::{c_int, c_short, c_ulong, c_void};

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;

    pub const F_SETFD: c_int = 2;
    pub const FD_CLOEXEC: c_int = 1;
    pub const F_SETFL: c_int = 4;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    pub const O_NONBLOCK: c_int = 0x0004;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// poll(2)-backed poller: registrations live in a userspace table that is
/// snapshotted into a `pollfd` array per `wait`; `notify` writes to a
/// nonblocking self-pipe included in every poll set.
pub struct PollPoller {
    fds: std::sync::Mutex<std::collections::HashMap<RawFd, Event>>,
    pipe_read: RawFd,
    pipe_write: RawFd,
}

impl PollPoller {
    pub fn new() -> io::Result<Self> {
        use poll_sys as sys;
        let mut fds = [0 as core::ffi::c_int; 2];
        if unsafe { sys::pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            unsafe {
                sys::fcntl(fd, sys::F_SETFL, sys::O_NONBLOCK);
                sys::fcntl(fd, sys::F_SETFD, sys::FD_CLOEXEC);
            }
        }
        Ok(PollPoller {
            fds: std::sync::Mutex::new(std::collections::HashMap::new()),
            pipe_read: fds[0],
            pipe_write: fds[1],
        })
    }

    /// Register a source under `ev.key` with `ev`'s interest set.
    pub fn add(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        if ev.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "NOTIFY_KEY is reserved",
            ));
        }
        let mut fds = self.fds.lock().unwrap();
        if fds.insert(source.as_raw_fd(), ev).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        Ok(())
    }

    /// Replace the interest set of a registered source.
    pub fn modify(&self, source: &impl AsRawFd, ev: Event) -> io::Result<()> {
        if ev.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "NOTIFY_KEY is reserved",
            ));
        }
        let mut fds = self.fds.lock().unwrap();
        match fds.get_mut(&source.as_raw_fd()) {
            Some(slot) => {
                *slot = ev;
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Deregister a source.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let mut fds = self.fds.lock().unwrap();
        match fds.remove(&source.as_raw_fd()) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    /// Block until a source is ready, the timeout elapses, or `notify` is
    /// called; semantics match [`EpollPoller::wait`].
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        use poll_sys as sys;
        events.clear();
        let mut set: Vec<(usize, sys::PollFd)> = vec![(
            NOTIFY_KEY,
            sys::PollFd {
                fd: self.pipe_read,
                events: sys::POLLIN,
                revents: 0,
            },
        )];
        {
            let fds = self.fds.lock().unwrap();
            for (&fd, &ev) in fds.iter() {
                let mut bits = 0;
                if ev.readable {
                    bits |= sys::POLLIN;
                }
                if ev.writable {
                    bits |= sys::POLLOUT;
                }
                set.push((
                    ev.key,
                    sys::PollFd {
                        fd,
                        events: bits,
                        revents: 0,
                    },
                ));
            }
        }
        let mut raw: Vec<sys::PollFd> = set.iter().map(|(_, p)| *p).collect();
        let n = unsafe {
            sys::poll(
                raw.as_mut_ptr(),
                raw.len() as core::ffi::c_ulong,
                timeout_millis(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ((key, _), ready) in set.iter().zip(raw.iter()) {
            if ready.revents == 0 {
                continue;
            }
            if *key == NOTIFY_KEY {
                let mut buf = [0u8; 64];
                loop {
                    let rc = unsafe {
                        sys::read(
                            self.pipe_read,
                            buf.as_mut_ptr() as *mut core::ffi::c_void,
                            buf.len(),
                        )
                    };
                    if rc < buf.len() as isize {
                        break;
                    }
                }
                continue;
            }
            let fail = ready.revents & (sys::POLLERR | sys::POLLHUP) != 0;
            events.push(Event {
                key: *key,
                readable: fail || ready.revents & sys::POLLIN != 0,
                writable: fail || ready.revents & sys::POLLOUT != 0,
            });
        }
        Ok(events.len())
    }

    /// Wake a concurrent `wait` from any thread; coalesces like
    /// [`EpollPoller::notify`].
    pub fn notify(&self) -> io::Result<()> {
        use poll_sys as sys;
        let one = 1u8;
        let rc = unsafe {
            sys::write(
                self.pipe_write,
                (&one as *const u8) as *const core::ffi::c_void,
                1,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            // A full pipe already guarantees a pending wakeup.
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }
}

impl Drop for PollPoller {
    fn drop(&mut self) {
        unsafe {
            poll_sys::close(self.pipe_read);
            poll_sys::close(self.pipe_write);
        }
    }
}

unsafe impl Send for PollPoller {}
unsafe impl Sync for PollPoller {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    macro_rules! backend_tests {
        ($modname:ident, $poller:ty) => {
            mod $modname {
                use super::*;

                #[test]
                fn readable_event_fires_and_clears() {
                    let poller = <$poller>::new().unwrap();
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (mut server, _) = listener.accept().unwrap();
                    poller.add(&server, Event::readable(7)).unwrap();

                    let mut events = Vec::new();
                    // Nothing to read yet: times out with no events.
                    poller
                        .wait(&mut events, Some(Duration::from_millis(10)))
                        .unwrap();
                    assert!(events.is_empty());

                    client.write_all(b"ping").unwrap();
                    poller
                        .wait(&mut events, Some(Duration::from_secs(5)))
                        .unwrap();
                    assert_eq!(events, vec![Event::readable(7)]);

                    // Level-triggered: still readable until drained.
                    poller
                        .wait(&mut events, Some(Duration::from_secs(5)))
                        .unwrap();
                    assert_eq!(events.len(), 1);
                    let mut buf = [0u8; 16];
                    let n = server.read(&mut buf).unwrap();
                    assert_eq!(&buf[..n], b"ping");
                    poller
                        .wait(&mut events, Some(Duration::from_millis(10)))
                        .unwrap();
                    assert!(events.is_empty());
                    poller.delete(&server).unwrap();
                }

                #[test]
                fn modify_switches_interest() {
                    let poller = <$poller>::new().unwrap();
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (server, _) = listener.accept().unwrap();

                    // An idle connected socket is writable but not readable.
                    poller.add(&server, Event::all(3)).unwrap();
                    let mut events = Vec::new();
                    poller
                        .wait(&mut events, Some(Duration::from_secs(5)))
                        .unwrap();
                    assert_eq!(events, vec![Event::writable(3)]);

                    poller.modify(&server, Event::readable(3)).unwrap();
                    poller
                        .wait(&mut events, Some(Duration::from_millis(10)))
                        .unwrap();
                    assert!(events.is_empty());
                    poller.delete(&server).unwrap();
                }

                #[test]
                fn peer_close_wakes_reader() {
                    let poller = <$poller>::new().unwrap();
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                    let (server, _) = listener.accept().unwrap();
                    poller.add(&server, Event::readable(9)).unwrap();
                    drop(client);
                    let mut events = Vec::new();
                    poller
                        .wait(&mut events, Some(Duration::from_secs(5)))
                        .unwrap();
                    assert_eq!(events.len(), 1);
                    assert_eq!(events[0].key, 9);
                    assert!(events[0].readable);
                }

                #[test]
                fn notify_wakes_wait_without_events() {
                    let poller = std::sync::Arc::new(<$poller>::new().unwrap());
                    let waker = std::sync::Arc::clone(&poller);
                    let handle = std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(50));
                        waker.notify().unwrap();
                        waker.notify().unwrap(); // coalesces
                    });
                    let mut events = Vec::new();
                    let start = Instant::now();
                    poller
                        .wait(&mut events, Some(Duration::from_secs(30)))
                        .unwrap();
                    assert!(
                        start.elapsed() < Duration::from_secs(10),
                        "notify did not wake wait"
                    );
                    assert!(events.is_empty(), "notify must not surface as an event");
                    handle.join().unwrap();
                }

                #[test]
                fn notify_key_is_reserved() {
                    let poller = <$poller>::new().unwrap();
                    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                    assert!(poller.add(&listener, Event::readable(NOTIFY_KEY)).is_err());
                }
            }
        };
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    backend_tests!(epoll_backend, EpollPoller);
    backend_tests!(poll_backend, PollPoller);
}
