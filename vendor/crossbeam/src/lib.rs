//! Vendored API-subset stand-in for `crossbeam`.
//!
//! Implements the `deque` module surface the native executor uses
//! (`Injector`, `Worker`, `Stealer`, `Steal`) over mutex-protected
//! `VecDeque`s. Semantics match the lock-free originals (FIFO worker
//! queues, stealable from both the global injector and peers); only the
//! performance differs. Swap for the real crates-io `crossbeam` when
//! building with network access.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt, mirroring `crossbeam::deque::Steal`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Success(T),
        Empty,
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// Global FIFO injector queue, mirroring `crossbeam::deque::Injector`.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            self.queue.lock().unwrap().push_back(task);
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().unwrap().is_empty()
        }

        /// Pop one task for the caller and move a small batch into `dest`.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().unwrap();
            match q.pop_front() {
                None => Steal::Empty,
                Some(first) => {
                    // Move up to half the remainder (capped) into the local
                    // worker, as the real injector does.
                    let batch = (q.len() / 2).min(16);
                    let mut local = dest.inner.lock().unwrap();
                    for _ in 0..batch {
                        match q.pop_front() {
                            Some(t) => local.push_back(t),
                            None => break,
                        }
                    }
                    Steal::Success(first)
                }
            }
        }
    }

    /// Worker-local FIFO deque, mirroring `crossbeam::deque::Worker`.
    #[derive(Debug)]
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, task: T) {
            self.inner.lock().unwrap().push_back(task);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Handle for stealing from another worker's deque.
    #[derive(Debug)]
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().unwrap().is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn injector_batch_moves_work_to_local() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_fifo();
            assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
            assert!(!w.is_empty(), "batch steal should refill the local deque");
        }

        #[test]
        fn stealer_sees_worker_pushes() {
            let w = Worker::new_fifo();
            let s = w.stealer();
            w.push(7usize);
            assert_eq!(s.steal(), Steal::Success(7));
            assert_eq!(s.steal(), Steal::Empty);
        }
    }
}
