//! Vendored stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatible annotation — nothing serializes yet — so the derives
//! expand to nothing. Swap for the real crates-io `serde_derive` when
//! building with network access.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
