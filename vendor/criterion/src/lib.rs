//! Vendored API-subset stand-in for `criterion`.
//!
//! Implements the benchmarking surface this workspace's benches use:
//! `Criterion::{bench_function, benchmark_group}`, `BenchmarkGroup`
//! configuration, `Bencher::iter`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! timed loop (median-of-samples reporting, no statistics engine or HTML
//! reports). Sample counts are deliberately small so `cargo bench`
//! terminates quickly. Swap for the real crates-io `criterion` when
//! building with network access.

use std::time::{Duration, Instant};

/// Measured throughput annotation, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Re-export of the standard black box, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    last_ns: Vec<u128>,
}

impl Bencher {
    /// Run `f` repeatedly, recording one wall-clock sample per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.last_ns.clear();
        black_box(f()); // warm-up, untimed
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.last_ns.push(t0.elapsed().as_nanos());
        }
    }

    fn median_ns(&self) -> u128 {
        let mut v = self.last_ns.clone();
        if v.is_empty() {
            return 0;
        }
        v.sort_unstable();
        v[v.len() / 2]
    }
}

fn human_time(ns: u128) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.2} us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let ns = b.median_ns();
    let mut line = format!("{id:<40} time: {}", human_time(ns));
    if let (Some(tp), true) = (throughput, ns > 0) {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (n, "B/s"),
        };
        let rate = count as f64 / (ns as f64 / 1e9);
        line.push_str(&format!("  thrpt: {rate:.0} {unit}"));
    }
    println!("{line}");
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_samples: usize,
}

/// Extension over crates-io criterion: `JOSS_BENCH_SAMPLES` caps every
/// sample count globally — including explicit `sample_size()` calls — so CI
/// smoke jobs can set it to 1 and execute every bench target without paying
/// for stable timings.
fn env_sample_cap() -> Option<usize> {
    std::env::var("JOSS_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .map(|n: usize| n.max(1))
}

fn capped(n: usize) -> usize {
    match env_sample_cap() {
        Some(cap) => n.max(1).min(cap),
        None => n.max(1),
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: capped(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_samples = capped(n);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.default_samples,
            last_ns: Vec::new(),
        };
        f(&mut b);
        report(&id, &b, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.default_samples,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Named group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = capped(n);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            samples: self.samples,
            last_ns: Vec::new(),
        };
        f(&mut b);
        report(&id, &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: entry point running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
