//! Vendored API-subset stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and their derive
//! macros so the workspace's annotations compile offline. The traits are
//! markers only — no data format ships in this workspace yet. Swap for the
//! real crates-io `serde` when building with network access.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (derive expands to nothing).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (derive expands to nothing).
pub trait Deserialize<'de> {}
