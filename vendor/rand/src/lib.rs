//! Vendored API-subset stand-in for `rand` 0.8.
//!
//! Implements the slice of the `rand` API this workspace uses — seedable
//! `StdRng`, `Rng::gen_range` over integer/float ranges, and `Rng::gen` —
//! backed by the SplitMix64 generator. Deterministic given a seed, which is
//! all the simulation engine requires. Swap for the real crates-io `rand`
//! when building with network access.

use std::ops::{Range, RangeInclusive};

/// Types constructible from a `u64` seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range; mirrors `rand::Rng::gen_range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a value of a supported type; mirrors `rand::Rng::gen`.
    fn r#gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p`; mirrors `rand::Rng::gen_bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

/// Range types `gen_range` accepts for a value type `T`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Types `gen` can produce from uniform bits.
pub trait Standard: Sized {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // 128-bit span arithmetic: a full-width range would overflow
                // the native width (debug builds panic on overflow).
                let span = self.end as u128 - self.start as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = end as u128 - start as u128 + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = r.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_width_inclusive_range_does_not_overflow() {
        // Regression: the span computation must not overflow the native
        // width in debug builds for whole-domain ranges.
        let mut r = StdRng::seed_from_u64(2);
        let _: u64 = r.gen_range(0u64..=u64::MAX);
        let _: usize = r.gen_range(0usize..=usize::MAX);
        let _: u8 = r.gen_range(0u8..=u8::MAX);
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`: fast, seedable,
    /// deterministic — sufficient for simulation tie-breaking.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9e3779b97f4a7c15),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}
