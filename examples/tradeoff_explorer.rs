//! Exploring the energy/performance frontier of one workload (paper Fig. 2
//! and Fig. 9 in one place): sweep speedup targets and print the frontier.
//!
//! ```text
//! cargo run --release --example tradeoff_explorer
//! ```

use joss::experiments::{run_one, ExperimentContext, SchedulerKind};
use joss::workloads::{stencil, Scale};

fn main() {
    println!("characterizing platform...");
    let ctx = ExperimentContext::new(7);
    let graph = stencil::stencil(2048, 8, Scale::Divided(100));

    let joss = run_one(&ctx, SchedulerKind::Joss, &graph, 7);
    println!(
        "\n{:<12} {:>10} {:>10} {:>8} {:>8}",
        "target", "energy [J]", "time [s]", "E/E0", "T0/T"
    );
    println!(
        "{:<12} {:>10.3} {:>10.3} {:>8.2} {:>8.2}",
        "min-energy",
        joss.total_j(),
        joss.energy.makespan_s,
        1.0,
        1.0
    );
    for speedup in [1.1, 1.2, 1.4, 1.6, 1.8] {
        let r = run_one(&ctx, SchedulerKind::JossSpeedup(speedup), &graph, 7);
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>8.2} {:>8.2}",
            format!("{speedup}x"),
            r.total_j(),
            r.energy.makespan_s,
            r.total_j() / joss.total_j(),
            joss.energy.makespan_s / r.energy.makespan_s
        );
    }
    let maxp = run_one(&ctx, SchedulerKind::JossMaxPerf, &graph, 7);
    println!(
        "{:<12} {:>10.3} {:>10.3} {:>8.2} {:>8.2}",
        "MAXP",
        maxp.total_j(),
        maxp.energy.makespan_s,
        maxp.total_j() / joss.total_j(),
        joss.energy.makespan_s / maxp.energy.makespan_s
    );
    println!("\nperformance is ultimately bounded by platform capability (paper §7.2).");
}
