//! Domain scenario: energy-aware CNN inference at the edge.
//!
//! The paper's VG benchmark (Darknet VGG-16 as a fork-join DAG) is the
//! archetypal edge workload: latency matters, but so does the battery. This
//! example runs the inference pipeline under every scheduler and then uses
//! JOSS's performance-constraint mode to buy back latency at a controlled
//! energy cost (paper §5.2.2 / Fig. 9).
//!
//! ```text
//! cargo run --release --example energy_aware_inference
//! ```

use joss::experiments::ExperimentContext;
use joss::runtime::engine::{EngineConfig, SimEngine};
use joss::runtime::sched::{GrwsSched, ModelSched};
use joss::workloads::{vgg, Scale};

fn main() {
    println!("characterizing platform...");
    let ctx = ExperimentContext::new(7);
    let graph = vgg::vgg(Scale::Divided(2)); // 5 inference iterations

    let mut grws = GrwsSched::new();
    let base = SimEngine::run(&ctx.machine, &graph, &mut grws, EngineConfig::default());
    println!("\nbaseline (GRWS):      {}", base.summary());

    let mut joss = ModelSched::joss(ctx.models.clone());
    let opt = SimEngine::run(&ctx.machine, &graph, &mut joss, EngineConfig::default());
    println!("JOSS (min energy):    {}", opt.summary());

    for speedup in [1.2, 1.4, 1.8] {
        let mut sched = ModelSched::joss_with_speedup(ctx.models.clone(), speedup);
        let r = SimEngine::run(&ctx.machine, &graph, &mut sched, EngineConfig::default());
        println!(
            "JOSS+{speedup}X:           E = {:>7.3} J ({:+5.1}% vs JOSS), t = {:.3} s ({:.2}x)",
            r.total_j(),
            100.0 * (r.total_j() / opt.total_j() - 1.0),
            r.energy.makespan_s,
            opt.energy.makespan_s / r.energy.makespan_s
        );
    }

    println!("\nper-kernel configurations selected by JOSS:");
    for (k, cfg) in &opt.selected_configs {
        println!("  {k:<10} -> {}", ctx.space.label(*cfg));
    }
    println!(
        "\nconv layers are compute-bound (low fM pays off); fc layers stream\n\
         weights (fM matters) — JOSS picks per-kernel configurations instead\n\
         of one global operating point."
    );
}
