//! Building a custom platform: the framework is not tied to the TX2.
//!
//! This example describes a hypothetical octa-core part (4 big + 4 little,
//! a denser frequency ladder, faster DRAM), characterizes it, and shows JOSS
//! adapting its per-kernel choices to the new machine.
//!
//! ```text
//! cargo run --release --example custom_platform
//! ```

use joss::dag::{generators, KernelSpec};
use joss::models::{ModelSet, TrainingConfig};
use joss::platform::{ConfigSpace, MachineModel, NoiseModel, PlatformSpec, TaskShape};
use joss::runtime::engine::{EngineConfig, SimEngine};
use joss::runtime::sched::{GrwsSched, ModelSched};
use std::sync::Arc;

fn main() {
    // Start from the TX2 description and reshape it.
    let mut spec = PlatformSpec::tx2_like();
    spec.clusters[0].n_cores = 4;
    spec.clusters[1].n_cores = 4;
    spec.cpu_freqs_ghz = vec![0.4, 0.8, 1.2, 1.6, 2.0, 2.4];
    spec.mem_freqs_ghz = vec![0.8, 1.2, 1.6, 2.1];
    spec.mem_bw_gbs = 42.0;
    spec.validate().expect("valid custom platform");

    let machine = MachineModel {
        spec,
        noise: NoiseModel::calibrated(99),
        params: Default::default(),
    };
    let space = ConfigSpace::from_spec(&machine.spec);
    println!(
        "custom platform: {} cores, {} configurations",
        machine.spec.total_cores(),
        space.len()
    );

    println!("training models...");
    let mut tc = TrainingConfig::tx2_default(&space);
    tc.reps = 5;
    let models = Arc::new(ModelSet::train(&machine, tc));

    // A mixed workload: streaming tasks.
    let kernel = KernelSpec::new("stream", TaskShape::new(0.004, 0.134)).with_scalability(0.5);
    let graph = generators::chain_bundle("custom_stream", kernel, 600, 12);

    let mut grws = GrwsSched::new();
    let base = SimEngine::run(&machine, &graph, &mut grws, EngineConfig::default());
    let mut joss = ModelSched::joss(models);
    let opt = SimEngine::run(&machine, &graph, &mut joss, EngineConfig::default());

    println!("\n{}", base.summary());
    println!("{}", opt.summary());
    for (k, cfg) in &opt.selected_configs {
        println!("JOSS selected for '{k}': {}", space.label(*cfg));
    }
    println!(
        "\nJOSS saves {:.1}% on the custom machine without re-tuning any code —\n\
         only the platform description and its one-time characterization changed.",
        100.0 * (1.0 - opt.total_j() / base.total_j())
    );
}
