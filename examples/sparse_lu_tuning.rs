//! Domain scenario: the paper's §7.1 SparseLU walk-through.
//!
//! BMOD accounts for 91% of SparseLU's tasks. The paper explains how each
//! scheduler treats it differently: GRWS spreads it across clusters at max
//! frequency; ERASE consolidates on big cores; STEER throttles the CPU and
//! (blind to the memory rail) pays for it; JOSS lowers the memory frequency
//! too, because BMOD barely uses DRAM. This example reproduces the story.
//!
//! ```text
//! cargo run --release --example sparse_lu_tuning
//! ```

use joss::experiments::{run_one, ExperimentContext, SchedulerKind};
use joss::workloads::{sparselu, Scale};

fn main() {
    println!("characterizing platform...");
    let ctx = ExperimentContext::new(7);
    let graph = sparselu::sparselu(Scale::Divided(20));
    let counts = graph.tasks_per_kernel();
    let bmod_share = counts[3] as f64 / graph.n_tasks() as f64;
    println!(
        "SparseLU: {} tasks over {} kernels; bmod share {:.0}% (paper: 91%)\n",
        graph.n_tasks(),
        graph.n_kernels(),
        100.0 * bmod_share
    );

    let kinds = [
        SchedulerKind::Grws,
        SchedulerKind::Erase,
        SchedulerKind::Steer,
        SchedulerKind::JossNoMemDvfs,
        SchedulerKind::Joss,
    ];
    let mut base = None;
    for kind in kinds {
        let r = run_one(&ctx, kind, &graph, 7);
        let baseline = *base.get_or_insert(r.total_j());
        println!(
            "{:<16} E = {:>8.3} J ({:>5.1}% of GRWS)   t = {:>7.3} s   big/little = {}/{}",
            r.scheduler,
            r.total_j(),
            100.0 * r.total_j() / baseline,
            r.energy.makespan_s,
            r.tasks_per_type[0],
            r.tasks_per_type[1],
        );
        if let Some(cfg) = r.selected_configs.get("bmod") {
            println!("                 bmod -> {}", ctx.space.label(*cfg));
        }
    }
}
