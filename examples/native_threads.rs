//! The runtime's DAG machinery on real OS threads: execute a fork-join
//! pipeline with the work-stealing native executor and report per-worker
//! load and steal counts.
//!
//! ```text
//! cargo run --release --example native_threads
//! ```

use joss::dag::{generators, KernelSpec};
use joss::platform::TaskShape;
use joss::runtime::native::NativeExecutor;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let kernel = KernelSpec::new("hash", TaskShape::new(0.001, 0.0));
    let graph = generators::fork_join(
        "pipeline",
        std::slice::from_ref(&kernel),
        kernel.clone(),
        20,
        64,
    );
    println!(
        "DAG: {} tasks, {} edges, dop {:.1}",
        graph.n_tasks(),
        graph.n_edges(),
        graph.dop()
    );

    let checksum = AtomicU64::new(0);
    for workers in [1, 2, 4] {
        checksum.store(0, Ordering::Relaxed);
        let stats = NativeExecutor::new(workers).execute(&graph, |t| {
            // Real work: a small hash loop per task.
            let mut acc = t.0 as u64;
            for i in 0..50_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            checksum.fetch_xor(acc, Ordering::Relaxed);
        });
        println!(
            "{} worker(s): {:.3} s wall, per-worker tasks {:?}, steals {:?}, checksum {:x}",
            workers,
            stats.wall_s,
            stats.per_worker,
            stats.steals,
            checksum.load(Ordering::Relaxed)
        );
    }
}
