//! Quickstart: characterize a platform, run an application under JOSS, and
//! read the energy account.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use joss::dag::{generators, KernelSpec};
use joss::models::{ModelSet, TrainingConfig};
use joss::platform::{ConfigSpace, MachineModel, TaskShape};
use joss::runtime::engine::{EngineConfig, SimEngine};
use joss::runtime::sched::{GrwsSched, ModelSched};
use std::sync::Arc;

fn main() {
    // 1. A simulated Jetson-TX2-like platform: 2 big + 4 little cores,
    //    5 CPU frequencies, 3 memory frequencies, per-rail power.
    let machine = MachineModel::tx2(42);
    let space = ConfigSpace::from_spec(&machine.spec);
    println!(
        "platform: {} cores, {} CPU freqs, {} mem freqs ({} knob configs)",
        machine.spec.total_cores(),
        space.cpu_freqs_ghz.len(),
        space.mem_freqs_ghz.len(),
        space.len()
    );

    // 2. One-time characterization: profile 41 synthetic benchmarks at every
    //    configuration and fit the MPR performance/power models (paper §4).
    println!(
        "training models (41 synthetics x {} configs x 10 reps)...",
        space.len()
    );
    let models = Arc::new(ModelSet::train(
        &machine,
        TrainingConfig::tx2_default(&space),
    ));

    // 3. An application: 512 matrix-multiply tiles with moderate parallelism.
    let kernel = KernelSpec::new("mm_tile", TaskShape::new(0.0335, 0.0016));
    let graph = generators::chain_bundle("quickstart_mm", kernel, 512, 8);

    // 4. Run it under the GRWS baseline and under JOSS.
    let mut grws = GrwsSched::new();
    let base = SimEngine::run(&machine, &graph, &mut grws, EngineConfig::default());
    let mut joss = ModelSched::joss(models);
    let opt = SimEngine::run(&machine, &graph, &mut joss, EngineConfig::default());

    println!("\n{}", base.summary());
    println!("{}", opt.summary());
    for (k, cfg) in &opt.selected_configs {
        println!("JOSS selected for kernel '{k}': {}", space.label(*cfg));
    }
    println!(
        "\nJOSS saves {:.1}% total energy vs GRWS (at {:.2}x the makespan)",
        100.0 * (1.0 - opt.total_j() / base.total_j()),
        opt.energy.makespan_s / base.energy.makespan_s
    );
}
