//! Visualizing a schedule: record an execution trace under GRWS and JOSS,
//! print ASCII timelines, and export Chrome trace JSON for
//! `chrome://tracing` / Perfetto.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use joss::experiments::ExperimentContext;
use joss::runtime::engine::{EngineConfig, SimEngine};
use joss::runtime::sched::{GrwsSched, ModelSched};
use joss::workloads::{matmul, Scale};

fn main() {
    println!("characterizing platform...");
    let ctx = ExperimentContext::new(7);
    let graph = matmul::matmul(512, 4, Scale::Divided(200));

    let cfg = EngineConfig {
        record_trace: true,
        ..EngineConfig::default()
    };
    let mut grws = GrwsSched::new();
    let base = SimEngine::run(&ctx.machine, &graph, &mut grws, cfg.clone());
    let mut joss = ModelSched::joss(ctx.models.clone());
    let opt = SimEngine::run(&ctx.machine, &graph, &mut joss, cfg);

    for report in [&base, &opt] {
        let trace = report.trace.as_ref().expect("recorded");
        println!(
            "\n== {} — {:.3} s, {:.1}% core utilization (cores 0-1 big, 2-5 little; 's' = sampling)",
            report.scheduler,
            trace.makespan_s(),
            100.0 * trace.utilization(ctx.machine.spec.total_cores())
        );
        print!(
            "{}",
            trace.ascii_timeline(ctx.machine.spec.total_cores(), 100)
        );
        let path = format!("trace_{}.json", report.scheduler.to_lowercase());
        std::fs::write(&path, trace.to_chrome_json()).expect("write trace");
        println!("chrome trace written to {path}");
    }
    println!(
        "\nGRWS floods all six cores at max frequency; JOSS consolidates on the\n\
         configuration its models chose — visible as the narrower, longer timeline."
    );
}
