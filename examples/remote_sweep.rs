//! Remote sweep: run a campaign grid against a `joss-serve` daemon from a
//! programmatic client — the "ask the model a what-if question over a
//! wire" loop.
//!
//! ```text
//! cargo run --release --example remote_sweep
//! ```
//!
//! Boots the daemon in-process on an ephemeral port so the example is
//! self-contained; point `addr` at a long-running `joss_serve` instead to
//! query a shared deployment. Protocol details: `docs/SERVE.md`.

use joss::serve::{client, ServeConfig, Server};
use joss::sweep::{GridDesc, SchedulerKind};
use joss::workloads::Scale;
use std::time::Duration;

fn main() {
    // 1. A daemon (in-process here; usually a separate long-running
    //    `joss_serve`). Training happens once, on the first campaign, and
    //    is shared by every later request and connection.
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        reps: 1, // fast example training; deployments use more
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let handle = server.spawn().expect("spawn daemon");
    let addr = handle.addr().to_string();
    println!("daemon listening on {addr}");

    // 2. A what-if question, as pure data: which scheduler wins on these
    //    workloads, at this scale, under these seeds?
    let desc = GridDesc {
        workloads: vec!["DP".into(), "MM_256_dop4".into()],
        schedulers: vec![
            SchedulerKind::Grws,
            SchedulerKind::Joss,
            SchedulerKind::JossSpeedup(1.2),
        ],
        seeds: vec![42],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    };
    println!("submitting grid: {}", desc.to_canonical_json());

    // 3. POST it; the response streams one RunRecord JSON object per line,
    //    in spec order, as the campaign executes.
    let timeout = Duration::from_secs(120);
    let response = client::run_campaign(&addr, &desc, timeout).expect("campaign request");
    assert_eq!(response.status, 200, "{}", response.body_text());
    println!(
        "{} records (cache: {}, spec hash {}):",
        client::verify_body(&desc, &response.body).expect("well-formed stream"),
        response.header("x-joss-cache").unwrap_or("?"),
        response.header("x-joss-spec-hash").unwrap_or("?"),
    );
    for line in response.body_text().lines() {
        let record = joss::sweep::json::parse(line).expect("record JSON");
        let field = |k: &str| record.get(k).cloned();
        println!(
            "  {:<14} {:<10} total_j={:.4} makespan_s={:.4}",
            field("workload")
                .and_then(|v| v.as_str().map(str::to_string))
                .unwrap_or_default(),
            field("scheduler")
                .and_then(|v| v.as_str().map(str::to_string))
                .unwrap_or_default(),
            field("total_j")
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::NAN),
            field("makespan_s")
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::NAN),
        );
    }

    // 4. Ask again: the identical grid is answered from the daemon's
    //    results cache, no re-simulation.
    let again = client::run_campaign(&addr, &desc, timeout).expect("repeat request");
    assert_eq!(again.header("x-joss-cache"), Some("hit"));
    assert_eq!(again.body, response.body, "cached replay is byte-identical");
    println!("repeat request served from cache, byte-identical");

    handle.stop().expect("clean shutdown");
}
