//! CPU and memory power models — paper §4.3, Eqs. 4–5.
//!
//! Both models predict *dynamic* power (idle power is characterized
//! separately and attributed across concurrent tasks, §4.3.3):
//!
//! * CPU power depends on `MB` and `fC` (memory frequency has negligible
//!   effect on the CPU rail — paper Fig. 5a):
//!   `P_C = poly2(MB, fC)` (Eq. 4);
//! * memory power depends on all three of `MB`, `fC`, `fM` (Fig. 5b):
//!   `P_M = poly2(MB, fC, fM)` (Eq. 5).
//!
//! Voltage is not an explicit input: it is strongly correlated with
//! frequency on the platform, and leaving it out reduces collinearity
//! (paper §4.3.1).

use crate::features::PolyBasis;
use crate::linalg::least_squares;
use serde::{Deserialize, Serialize};

/// One training observation for a power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Estimated memory-boundness of the benchmark at this `<TC,NC>`.
    pub mb: f64,
    /// Core frequency, GHz.
    pub fc_ghz: f64,
    /// Memory frequency, GHz.
    pub fm_ghz: f64,
    /// Measured dynamic power, watts.
    pub watts: f64,
}

/// Fitted CPU dynamic power model for one `<TC, NC>` (Eq. 4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuPowerModel {
    basis: PolyBasis,
    beta: Vec<f64>,
}

impl CpuPowerModel {
    /// Fit over profiling samples; memory frequency in the samples is
    /// ignored (the CPU rail is insensitive to it).
    pub fn fit(samples: &[PowerSample]) -> Option<Self> {
        let basis = PolyBasis::new(2);
        if samples.len() < basis.n_features() {
            return None;
        }
        let mut x = Vec::with_capacity(samples.len() * basis.n_features());
        let mut y = Vec::with_capacity(samples.len());
        for s in samples {
            basis.expand_into(&[s.mb, s.fc_ghz], &mut x);
            y.push(s.watts);
        }
        let beta = least_squares(&x, &y, samples.len(), basis.n_features())?;
        Some(CpuPowerModel { basis, beta })
    }

    /// Predicted CPU dynamic power, watts (floored at zero).
    pub fn predict_w(&self, mb: f64, fc_ghz: f64) -> f64 {
        self.basis.eval(&self.beta, &[mb, fc_ghz]).max(0.0)
    }

    /// Fitted coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }
}

/// Fitted memory dynamic power model for one `<TC, NC>` (Eq. 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemPowerModel {
    basis: PolyBasis,
    beta: Vec<f64>,
}

impl MemPowerModel {
    /// Fit over profiling samples.
    pub fn fit(samples: &[PowerSample]) -> Option<Self> {
        let basis = PolyBasis::new(3);
        if samples.len() < basis.n_features() {
            return None;
        }
        let mut x = Vec::with_capacity(samples.len() * basis.n_features());
        let mut y = Vec::with_capacity(samples.len());
        for s in samples {
            basis.expand_into(&[s.mb, s.fc_ghz, s.fm_ghz], &mut x);
            y.push(s.watts);
        }
        let beta = least_squares(&x, &y, samples.len(), basis.n_features())?;
        Some(MemPowerModel { basis, beta })
    }

    /// Predicted memory dynamic power, watts (floored at zero).
    pub fn predict_w(&self, mb: f64, fc_ghz: f64, fm_ghz: f64) -> f64 {
        self.basis.eval(&self.beta, &[mb, fc_ghz, fm_ghz]).max(0.0)
    }

    /// Fitted coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_truth(mb: f64, fc: f64) -> f64 {
        // Exactly representable in the degree-2 basis over (mb, fc):
        // intercept, linear, quadratic and mb*fc interaction terms.
        0.2 + 0.15 * fc + 0.25 * fc * fc - 0.3 * mb - 0.1 * mb * fc + 0.05 * mb * mb
    }

    fn cpu_samples() -> Vec<PowerSample> {
        let mut v = Vec::new();
        for mb10 in 0..=10 {
            let mb = mb10 as f64 / 10.0;
            for fc in [0.35, 0.65, 1.11, 1.57, 2.04] {
                for fm in [0.8, 1.33, 1.87] {
                    v.push(PowerSample {
                        mb,
                        fc_ghz: fc,
                        fm_ghz: fm,
                        watts: cpu_truth(mb, fc),
                    });
                }
            }
        }
        v
    }

    #[test]
    fn cpu_model_fits_quadratic_truth() {
        let m = CpuPowerModel::fit(&cpu_samples()).unwrap();
        for mb in [0.0, 0.4, 0.8] {
            for fc in [0.5, 1.0, 2.0] {
                let pred = m.predict_w(mb, fc);
                let real = cpu_truth(mb, fc);
                assert!(
                    (pred - real).abs() / real < 0.02,
                    "mb={mb} fc={fc}: {pred} vs {real}"
                );
            }
        }
    }

    #[test]
    fn cpu_power_grows_with_frequency() {
        let m = CpuPowerModel::fit(&cpu_samples()).unwrap();
        assert!(m.predict_w(0.2, 2.0) > m.predict_w(0.2, 0.5));
    }

    fn mem_truth(mb: f64, fc: f64, fm: f64) -> f64 {
        // In-basis part plus a small mb*fc*fm triple product the basis lacks,
        // emulating realistic structural mismatch.
        0.1 + 0.5 * mb + 0.2 * mb * fc + 0.15 * mb * fm + 0.05 * fc * fm + 0.02 * mb * fc * fm
    }

    fn mem_samples() -> Vec<PowerSample> {
        let mut v = Vec::new();
        for mb10 in 0..=10 {
            let mb = mb10 as f64 / 10.0;
            for fc in [0.35, 0.65, 1.11, 1.57, 2.04] {
                for fm in [0.8, 1.33, 1.87] {
                    v.push(PowerSample {
                        mb,
                        fc_ghz: fc,
                        fm_ghz: fm,
                        watts: mem_truth(mb, fc, fm),
                    });
                }
            }
        }
        v
    }

    #[test]
    fn mem_model_close_on_smooth_truth() {
        let m = MemPowerModel::fit(&mem_samples()).unwrap();
        let mut worst: f64 = 0.0;
        for s in mem_samples() {
            let pred = m.predict_w(s.mb, s.fc_ghz, s.fm_ghz);
            worst = worst.max((pred - s.watts).abs() / s.watts);
        }
        assert!(worst < 0.10, "worst rel err {worst}");
    }

    #[test]
    fn mem_power_grows_with_mb_and_fm() {
        let m = MemPowerModel::fit(&mem_samples()).unwrap();
        assert!(m.predict_w(0.8, 1.5, 1.87) > m.predict_w(0.1, 1.5, 1.87));
        assert!(m.predict_w(0.8, 1.5, 1.87) > m.predict_w(0.8, 1.5, 0.8));
    }

    #[test]
    fn predictions_never_negative() {
        let m = CpuPowerModel::fit(&cpu_samples()).unwrap();
        assert!(m.predict_w(5.0, -3.0) >= 0.0);
        let mm = MemPowerModel::fit(&mem_samples()).unwrap();
        assert!(mm.predict_w(5.0, -3.0, -2.0) >= 0.0);
    }

    #[test]
    fn insufficient_samples_rejected() {
        let s = cpu_samples();
        assert!(CpuPowerModel::fit(&s[..3]).is_none());
        assert!(MemPowerModel::fit(&s[..5]).is_none());
    }
}
