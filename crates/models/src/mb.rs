//! Memory-boundness (MB) estimation without performance counters.
//!
//! The paper's Eq. 3: sample a task's execution time at two core frequencies
//! `fC` (time `T`) and `fC'` (time `T'`) under a fixed memory frequency.
//! With `r = fC / fC'`:
//!
//! ```text
//! MB = (T'/T - r) / (1 - r)
//! ```
//!
//! Derivation: `T = T_comp + T_stall`; compute time scales as `r` while
//! stall time is (to first order) frequency-invariant, so
//! `T' = (1-MB) * T * r + MB * T`.
//!
//! Noise can push the raw estimate outside `[0, 1]`; it is clamped, matching
//! what any real deployment must do.

/// Estimate memory-boundness from two timed samples.
///
/// * `t_ref` — execution time at core frequency `fc_ref_ghz`;
/// * `t_alt` — execution time at core frequency `fc_alt_ghz`;
///
/// The two frequencies must differ. Result is clamped to `[0, 1]`.
pub fn estimate_mb(t_ref: f64, fc_ref_ghz: f64, t_alt: f64, fc_alt_ghz: f64) -> f64 {
    assert!(t_ref > 0.0 && t_alt > 0.0, "sample times must be positive");
    assert!(
        (fc_ref_ghz - fc_alt_ghz).abs() > 1e-12,
        "MB estimation needs two distinct core frequencies"
    );
    let r = fc_ref_ghz / fc_alt_ghz;
    let raw = (t_alt / t_ref - r) / (1.0 - r);
    raw.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use joss_platform::{CoreType, ExecContext, MachineModel, TaskShape};

    #[test]
    fn pure_compute_gives_zero() {
        // T scales exactly with frequency: halve f -> double T.
        let mb = estimate_mb(1.0, 2.0, 2.0, 1.0);
        assert!(mb.abs() < 1e-9);
    }

    #[test]
    fn pure_memory_gives_one() {
        // T unchanged by frequency.
        let mb = estimate_mb(1.0, 2.0, 1.0, 1.0);
        assert!((mb - 1.0).abs() < 1e-9);
    }

    #[test]
    fn half_and_half() {
        // T = 1 at 2 GHz (0.5 comp + 0.5 stall); at 1 GHz comp doubles:
        // T' = 1.0 + 0.5 = 1.5.
        let mb = estimate_mb(1.0, 2.0, 1.5, 1.0);
        assert!((mb - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clamping() {
        // Noisy sample faster at lower frequency -> raw MB > 1, clamp to 1.
        assert_eq!(estimate_mb(1.0, 2.0, 0.9, 1.0), 1.0);
        // Noisy sample slower than pure-compute scaling -> raw < 0, clamp to 0.
        assert_eq!(estimate_mb(1.0, 2.0, 2.3, 1.0), 0.0);
    }

    #[test]
    fn stall_time_is_reference_invariant() {
        // MB is defined relative to the reference sample, so swapping which
        // frequency is the reference changes MB — but the implied *stall
        // time* (MB * T_ref) must be identical either way.
        let (t_hi, f_hi) = (1.0, 2.0);
        let (t_lo, f_lo) = (1.5, 1.0);
        let stall_a = estimate_mb(t_hi, f_hi, t_lo, f_lo) * t_hi;
        let stall_b = estimate_mb(t_lo, f_lo, t_hi, f_hi) * t_lo;
        assert!((stall_a - stall_b).abs() < 1e-9, "{stall_a} vs {stall_b}");
    }

    #[test]
    fn tracks_ground_truth_ordering_on_noiseless_machine() {
        // Eq. 3 assumes stall time is frequency-invariant; the ground-truth
        // machine couples issue rate to fC, so the estimate is biased for
        // very memory-bound tasks. What matters for the models (which are
        // trained on the *same* estimator) is that MB is monotone in the true
        // stall fraction and lands in the right region.
        let m = MachineModel::tx2_noiseless();
        let ctx = ExecContext::default();
        let fm = m.spec.fm_max_ghz();
        let fc_hi = m.spec.fc_max_ghz();
        let fc_lo = m.spec.cpu_freqs_ghz[2];
        let mut prev_est = -1.0;
        for (w, b) in [(0.1, 0.001), (0.05, 0.05), (0.002, 0.2)] {
            let shape = TaskShape::new(w, b);
            let t_hi = m.clean_time_s(&shape, CoreType::Little, 2, fc_hi, fm, &ctx);
            let t_lo = m.clean_time_s(&shape, CoreType::Little, 2, fc_lo, fm, &ctx);
            let est = estimate_mb(t_hi, fc_hi, t_lo, fc_lo);
            let truth = m
                .execute(&shape, CoreType::Little, 2, fc_hi, fm, &ctx, &[0])
                .true_mb;
            assert!(
                est > prev_est,
                "MB estimate must grow with true memory intensity"
            );
            assert!(
                (est - truth).abs() < 0.35,
                "shape ({w},{b}): est {est} vs truth {truth}"
            );
            prev_est = est;
        }
    }

    #[test]
    #[should_panic(expected = "distinct core frequencies")]
    fn equal_frequencies_rejected() {
        estimate_mb(1.0, 2.0, 1.0, 2.0);
    }
}
