//! Configuration selection: exhaustive search and the steepest-descent
//! pruning search (paper §5.2, Fig. 7).
//!
//! Both searches minimize an energy objective computed from a kernel's
//! lookup tables plus idle-power attribution:
//!
//! ```text
//! E(cfg) = (P_dyn(cfg) + P_idle(cfg) / concurrency) * T(cfg)
//! ```
//!
//! where `P_dyn` is CPU-only (STEER/ERASE-style objectives) or CPU+memory
//! (JOSS), and idle power is shared among concurrently running tasks
//! (§4.3.3). The steepest-descent variant prunes the `<TC,NC>` dimension via
//! a four-corner comparison, then walks the `<fC,fM>` grid downhill from the
//! best corner until a local minimum, cutting evaluations by ~70% (§7.4).

use crate::lookup::{IdleTables, KernelTables};
use joss_platform::{ConfigSpace, FreqIndex, KnobConfig};
use serde::{Deserialize, Serialize};

/// What the scheduler is minimizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// CPU energy only (ERASE, STEER, and the paper's motivation scenario 1).
    CpuEnergy,
    /// Total = CPU + memory energy (JOSS).
    TotalEnergy,
}

/// Evaluates the energy objective for one kernel at any configuration.
#[derive(Debug, Clone, Copy)]
pub struct EnergyEstimator<'a> {
    /// Configuration space.
    pub space: &'a ConfigSpace,
    /// The kernel's prediction tables.
    pub tables: &'a KernelTables,
    /// Idle power characterization.
    pub idle: &'a IdleTables,
    /// Minimized quantity.
    pub objective: Objective,
    /// Instantaneous task concurrency estimate (>= 1): how many tasks share
    /// the idle power.
    pub concurrency: f64,
    /// Maximum moldable width of the kernel: `<TC,NC>` pairs with more cores
    /// than this are excluded from every search.
    pub max_width: usize,
}

impl<'a> EnergyEstimator<'a> {
    /// `<TC,NC>` pairs admissible under the kernel's moldable width cap,
    /// iterated directly (a search runs per kernel per run, so candidate
    /// enumeration must not allocate).
    fn tc_nc_candidates(
        &self,
    ) -> impl Iterator<Item = (joss_platform::CoreType, joss_platform::NcIndex)> + '_ {
        self.space
            .iter_tc_nc()
            .filter(move |&(tc, nc)| self.space.nc_count(tc, nc) <= self.max_width)
    }
}

impl<'a> EnergyEstimator<'a> {
    /// Predicted execution time at `cfg`, seconds.
    pub fn time_s(&self, cfg: KnobConfig) -> f64 {
        self.tables.time_s(cfg)
    }

    /// Effective task concurrency at a configuration: the observed
    /// instantaneous concurrency, capped by how many `width`-core tasks the
    /// chosen cluster can actually host at once. Without the cap, the high
    /// concurrency observed during the all-core sampling phase would make
    /// idle power look almost free for configurations that serialize the
    /// application onto one or two cores.
    pub fn effective_concurrency(&self, cfg: KnobConfig) -> f64 {
        let cluster_cores = *self.space.nc_options[cfg.tc.index()]
            .last()
            .expect("non-empty nc options") as f64;
        let width = self.space.nc_count(cfg.tc, cfg.nc) as f64;
        (cluster_cores / width).min(self.concurrency).max(1.0)
    }

    /// Predicted energy at `cfg`, joules, under the configured objective.
    pub fn energy_j(&self, cfg: KnobConfig) -> f64 {
        let t = self.tables.time_s(cfg);
        let conc = self.effective_concurrency(cfg);
        let cpu_idle = self.idle.cluster_idle_w(cfg.tc, cfg.fc);
        match self.objective {
            Objective::CpuEnergy => (self.tables.cpu_w(cfg) + cpu_idle / conc) * t,
            Objective::TotalEnergy => {
                let mem_idle = self.idle.mem_idle_w(cfg.fm);
                (self.tables.cpu_w(cfg) + self.tables.mem_w(cfg) + (cpu_idle + mem_idle) / conc) * t
            }
        }
    }
}

/// Search cost counters (for the §7.4 overhead comparison).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of distinct configuration evaluations performed.
    pub evaluations: u64,
}

/// The result of a configuration search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Selected configuration.
    pub config: KnobConfig,
    /// Its predicted objective energy, joules.
    pub energy_j: f64,
    /// Cost counters.
    pub stats: SearchStats,
}

/// How the `fM` knob may be used by a search: the admissible index range
/// (the whole ladder, or the single pinned maximum). The candidates are
/// contiguous either way, so searches iterate the range directly instead of
/// collecting a vector per search.
fn fm_range(space: &ConfigSpace, allow_mem_dvfs: bool) -> std::ops::Range<usize> {
    if allow_mem_dvfs {
        0..space.mem_freqs_ghz.len()
    } else {
        space.fm_max().0..space.fm_max().0 + 1
    }
}

/// Exhaustive search: evaluate every configuration and take the minimum.
///
/// With `allow_mem_dvfs = false`, `fM` is pinned at maximum (the
/// JOSS_NoMemDVFS / STEER setting).
pub fn exhaustive_search(est: &EnergyEstimator<'_>, allow_mem_dvfs: bool) -> SearchOutcome {
    let mut stats = SearchStats::default();
    let fms = fm_range(est.space, allow_mem_dvfs);
    let mut best: Option<(KnobConfig, f64)> = None;
    for (tc, nc) in est.tc_nc_candidates() {
        for fc in 0..est.space.cpu_freqs_ghz.len() {
            for fm in fms.clone() {
                let cfg = KnobConfig::new(tc, nc, FreqIndex(fc), FreqIndex(fm));
                let e = est.energy_j(cfg);
                stats.evaluations += 1;
                if best.is_none_or(|(_, be)| e < be) {
                    best = Some((cfg, e));
                }
            }
        }
    }
    let (config, energy_j) = best.expect("non-empty configuration space");
    SearchOutcome {
        config,
        energy_j,
        stats,
    }
}

/// Steepest-descent search (Fig. 7).
///
/// 1. Evaluate the four `<fC,fM>` corner configurations for every `<TC,NC>`.
/// 2. For each corner position, find which `<TC,NC>` achieves the lowest
///    energy; pick the `<TC,NC>` with the most corner wins (ties broken by
///    total corner energy).
/// 3. From that table's best corner, repeatedly move to the lowest-energy
///    immediate `<fC,fM>` neighbour until no neighbour improves.
pub fn steepest_descent_search(est: &EnergyEstimator<'_>, allow_mem_dvfs: bool) -> SearchOutcome {
    let space = est.space;
    let mut stats = SearchStats::default();
    let corner_buf: [(FreqIndex, FreqIndex); 4] = if allow_mem_dvfs {
        space.freq_corners()
    } else {
        let pinned = [
            (FreqIndex(0), space.fm_max()),
            (space.fc_max(), space.fm_max()),
        ];
        [pinned[0], pinned[1], pinned[0], pinned[1]]
    };
    let corners: &[(FreqIndex, FreqIndex)] = &corner_buf[..if allow_mem_dvfs { 4 } else { 2 }];

    /// One `<TC,NC>` candidate with its corner-energy row — everything the
    /// win-count and descent steps need, held on the stack. Only the current
    /// candidate and the (≤ 4) per-corner leaders are ever live, so the
    /// search stores O(corners), not O(candidates × corners).
    #[derive(Clone, Copy)]
    struct Cand {
        ti: usize,
        tc: joss_platform::CoreType,
        nc: joss_platform::NcIndex,
        row: [f64; 4],
        row_sum: f64,
    }

    // Steps 1+2 fused and streamed: evaluate each candidate's corner row in
    // enumeration order (same evaluation order and count as materializing
    // the full table) and keep the per-corner leader. Strict `<` preserves
    // the original first-index-wins tie behavior.
    let mut leaders: [Option<Cand>; 4] = [None; 4];
    for (ti, (tc, nc)) in est.tc_nc_candidates().enumerate() {
        let mut row = [0.0f64; 4];
        for (ci, &(fc, fm)) in corners.iter().enumerate() {
            row[ci] = est.energy_j(KnobConfig::new(tc, nc, fc, fm));
            stats.evaluations += 1;
        }
        // Identical summation order to `corner_e[ti].iter().sum()`.
        let mut row_sum = 0.0;
        for &e in &row[..corners.len()] {
            row_sum += e;
        }
        let cand = Cand {
            ti,
            tc,
            nc,
            row,
            row_sum,
        };
        for (ci, leader) in leaders[..corners.len()].iter_mut().enumerate() {
            match leader {
                None => *leader = Some(cand),
                Some(l) if cand.row[ci] < l.row[ci] => *leader = Some(cand),
                _ => {}
            }
        }
    }

    // Count corner wins per distinct leader (at most one per corner).
    let mut winners: [Option<(Cand, usize)>; 4] = [None; 4];
    for leader in leaders[..corners.len()].iter() {
        let l = leader.expect("non-empty tcnc set");
        let slot = winners
            .iter_mut()
            .find(|w| w.is_none() || w.is_some_and(|(c, _)| c.ti == l.ti))
            .expect("≤ 4 distinct winners");
        match slot {
            Some((_, wins)) => *wins += 1,
            None => *slot = Some((l, 1)),
        }
    }
    // Pick the winner exactly as `max_by` over all candidates did: most
    // wins, then lower total corner energy, then the *later* candidate
    // index (max_by keeps the last maximal element). Non-winning candidates
    // (zero wins) can never beat a winner under that order.
    let mut chosen: Option<(Cand, usize)> = None;
    for &(cand, wins) in winners.iter().flatten() {
        let better = match chosen {
            None => true,
            Some((bc, bw)) => {
                wins > bw
                    || (wins == bw
                        && (cand.row_sum < bc.row_sum
                            || (cand.row_sum == bc.row_sum && cand.ti > bc.ti)))
            }
        };
        if better {
            chosen = Some((cand, wins));
        }
    }
    let (chosen, _) = chosen.expect("non-empty tcnc set");
    let (tc, nc) = (chosen.tc, chosen.nc);

    // Step 3: hill-descent from the best corner of the chosen table
    // (first-minimum tie behavior, as `min_by`).
    let mut best_corner = 0;
    for ci in 1..corners.len() {
        if chosen.row[ci] < chosen.row[best_corner] {
            best_corner = ci;
        }
    }
    let (fc0, fm0) = corners[best_corner];
    let mut cur = KnobConfig::new(tc, nc, fc0, fm0);
    let mut cur_e = chosen.row[best_corner];
    loop {
        let mut improved = false;
        let (neighbours, n_neigh) = space.freq_neighbours_array(cur);
        let mut best_n = cur;
        let mut best_ne = cur_e;
        for &n in &neighbours[..n_neigh] {
            if !allow_mem_dvfs && n.fm != space.fm_max() {
                continue;
            }
            let e = est.energy_j(n);
            stats.evaluations += 1;
            if e < best_ne {
                best_ne = e;
                best_n = n;
                improved = true;
            }
        }
        if !improved {
            break;
        }
        cur = best_n;
        cur_e = best_ne;
    }

    SearchOutcome {
        config: cur,
        energy_j: cur_e,
        stats,
    }
}

/// Constrained search (§5.2.2): starting from `base` (the unconstrained
/// minimum-energy configuration), index into *its* `<TC,NC>` performance
/// table and find the lowest-energy `<fC,fM>` whose predicted time meets
/// `speedup` relative to `base`. Keeping `<TC,NC>` fixed preserves the
/// task-level throughput of the energy-optimal mapping, so per-task speedups
/// translate into application speedups. Falls back to the fastest `<fC,fM>`
/// of that table when the constraint is unreachable (the paper observes this
/// for memory-intensity-bound benchmarks).
pub fn constrained_search(
    est: &EnergyEstimator<'_>,
    allow_mem_dvfs: bool,
    base: KnobConfig,
    speedup: f64,
) -> SearchOutcome {
    assert!(speedup > 0.0);
    let t_base = est.time_s(base);
    let t_target = t_base / speedup;
    let fms = fm_range(est.space, allow_mem_dvfs);
    let mut stats = SearchStats::default();
    let mut best: Option<(KnobConfig, f64)> = None;
    let mut fastest: Option<(KnobConfig, f64, f64)> = None; // (cfg, time, energy)
    for fc in 0..est.space.cpu_freqs_ghz.len() {
        for fm in fms.clone() {
            let cfg = KnobConfig::new(base.tc, base.nc, FreqIndex(fc), FreqIndex(fm));
            let t = est.time_s(cfg);
            let e = est.energy_j(cfg);
            stats.evaluations += 1;
            if t <= t_target && best.is_none_or(|(_, be)| e < be) {
                best = Some((cfg, e));
            }
            if fastest.is_none_or(|(_, bt, _)| t < bt) {
                fastest = Some((cfg, t, e));
            }
        }
    }
    let (config, energy_j) = best.unwrap_or_else(|| {
        let (cfg, _, e) = fastest.expect("non-empty table");
        (cfg, e)
    });
    SearchOutcome {
        config,
        energy_j,
        stats,
    }
}

/// The configuration with the minimum predicted time (the MAXP target).
pub fn fastest_config(est: &EnergyEstimator<'_>, allow_mem_dvfs: bool) -> SearchOutcome {
    let fms = fm_range(est.space, allow_mem_dvfs);
    let mut stats = SearchStats::default();
    let mut best: Option<(KnobConfig, f64)> = None;
    for (tc, nc) in est.tc_nc_candidates() {
        for fc in 0..est.space.cpu_freqs_ghz.len() {
            for fm in fms.clone() {
                let cfg = KnobConfig::new(tc, nc, FreqIndex(fc), FreqIndex(fm));
                let t = est.time_s(cfg);
                stats.evaluations += 1;
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((cfg, t));
                }
            }
        }
    }
    let (config, _) = best.expect("non-empty space");
    SearchOutcome {
        config,
        energy_j: est.energy_j(config),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::{IdleTables, KernelTables};
    use joss_platform::{ConfigSpace, MachineModel};

    /// Build tables with a synthetic, smooth energy landscape so the searches
    /// can be validated against a known optimum.
    fn fixture(peakiness: f64) -> (ConfigSpace, KernelTables, IdleTables) {
        let machine = MachineModel::tx2_noiseless();
        let space = ConfigSpace::from_spec(&machine.spec);
        let idle = IdleTables::measure(&machine, &space);
        let mut tables = KernelTables::empty(&space);
        for cfg in space.iter_all() {
            let fc = space.fc_ghz(cfg.fc);
            let fm = space.fm_ghz(cfg.fm);
            let nc = space.nc_count(cfg.tc, cfg.nc) as f64;
            // Convex bowl centered near (1.1 GHz, 1.3 GHz) on Little x2.
            let t = 0.01 * (1.0 + peakiness * ((fc - 1.1).powi(2) + (fm - 1.3).powi(2)));
            let cpu = 0.2 + 0.1 * fc * nc;
            let mem = 0.1 + 0.05 * fm;
            let bias = match (cfg.tc, cfg.nc.0) {
                (joss_platform::CoreType::Little, 1) => 1.0,
                _ => 1.3,
            };
            tables.set(cfg, t * bias, cpu, mem);
        }
        (space, tables, idle)
    }

    fn estimator<'a>(
        space: &'a ConfigSpace,
        tables: &'a KernelTables,
        idle: &'a IdleTables,
    ) -> EnergyEstimator<'a> {
        EnergyEstimator {
            space,
            tables,
            idle,
            objective: Objective::TotalEnergy,
            concurrency: 1.0,
            max_width: usize::MAX,
        }
    }

    #[test]
    fn exhaustive_finds_global_minimum() {
        let (space, tables, idle) = fixture(3.0);
        let est = estimator(&space, &tables, &idle);
        let out = exhaustive_search(&est, true);
        assert_eq!(out.stats.evaluations as usize, space.len());
        // Verify it is truly the global minimum.
        for cfg in space.iter_all() {
            assert!(est.energy_j(cfg) >= out.energy_j - 1e-12);
        }
    }

    #[test]
    fn steepest_descent_matches_exhaustive_on_convex_landscape() {
        let (space, tables, idle) = fixture(3.0);
        let est = estimator(&space, &tables, &idle);
        let ex = exhaustive_search(&est, true);
        let sd = steepest_descent_search(&est, true);
        assert!(
            sd.energy_j <= ex.energy_j * 1.05,
            "steepest descent {} vs exhaustive {}",
            sd.energy_j,
            ex.energy_j
        );
    }

    #[test]
    fn steepest_descent_uses_far_fewer_evaluations() {
        let (space, tables, idle) = fixture(3.0);
        let est = estimator(&space, &tables, &idle);
        let ex = exhaustive_search(&est, true);
        let sd = steepest_descent_search(&est, true);
        // §7.4: ~70% fewer comparisons on the TX2.
        assert!(
            (sd.stats.evaluations as f64) < 0.55 * ex.stats.evaluations as f64,
            "sd {} vs ex {}",
            sd.stats.evaluations,
            ex.stats.evaluations
        );
    }

    #[test]
    fn no_mem_dvfs_pins_fm_max() {
        let (space, tables, idle) = fixture(3.0);
        let est = estimator(&space, &tables, &idle);
        let ex = exhaustive_search(&est, false);
        assert_eq!(ex.config.fm, space.fm_max());
        let sd = steepest_descent_search(&est, false);
        assert_eq!(sd.config.fm, space.fm_max());
    }

    #[test]
    fn cpu_objective_ignores_memory_power() {
        let (space, mut tables, idle) = fixture(3.0);
        // Blow up memory power everywhere; the CPU objective must not care.
        for cfg in space.iter_all() {
            let t = tables.time_s(cfg);
            let c = tables.cpu_w(cfg);
            tables.set(cfg, t, c, 1000.0);
        }
        let mut est = estimator(&space, &tables, &idle);
        est.objective = Objective::CpuEnergy;
        let with_mem = {
            let mut e2 = est;
            e2.objective = Objective::TotalEnergy;
            exhaustive_search(&e2, true)
        };
        let cpu_only = exhaustive_search(&est, true);
        // Total objective is dominated by the constant memory power, so it
        // just picks the fastest config; CPU objective keeps the bowl optimum.
        assert!(est.energy_j(cpu_only.config) <= est.energy_j(with_mem.config));
    }

    /// A fixture where time falls steeply with fC (so speedup targets are
    /// reachable) while energy grows with fC (so the minimum-energy config is
    /// slow) — the paper's Fig. 2 trade-off shape.
    fn tradeoff_fixture() -> (ConfigSpace, KernelTables, IdleTables) {
        let machine = MachineModel::tx2_noiseless();
        let space = ConfigSpace::from_spec(&machine.spec);
        let idle = IdleTables::measure(&machine, &space);
        let mut tables = KernelTables::empty(&space);
        for cfg in space.iter_all() {
            let fc = space.fc_ghz(cfg.fc);
            let fm = space.fm_ghz(cfg.fm);
            let t = 0.05 / (fc * (0.7 + 0.3 * fm));
            // Dynamic CPU power must dominate idle power at high fC, or the
            // energy optimum degenerates to "run as fast as possible".
            let cpu = 0.1 + 1.2 * fc * fc;
            let mem = 0.05 + 0.1 * fm;
            tables.set(cfg, t, cpu, mem);
        }
        (space, tables, idle)
    }

    #[test]
    fn constrained_search_meets_target_or_picks_fastest() {
        let (space, tables, idle) = tradeoff_fixture();
        let est = estimator(&space, &tables, &idle);
        let base = exhaustive_search(&est, true).config;
        let t_base = est.time_s(base);
        let fastest = fastest_config(&est, true);
        assert!(
            t_base / est.time_s(fastest.config) > 1.5,
            "fixture must offer real speedup headroom"
        );

        let c12 = constrained_search(&est, true, base, 1.2);
        assert!(est.time_s(c12.config) <= t_base / 1.2 + 1e-12);
        // Achievable constraint should cost no less energy than unconstrained.
        assert!(c12.energy_j >= exhaustive_search(&est, true).energy_j - 1e-12);

        // Impossible speedup: falls back to the fastest <fC,fM> of the
        // base configuration's <TC,NC> table.
        let cmax = constrained_search(&est, true, base, 1e9);
        assert_eq!(cmax.config.tc, base.tc);
        assert_eq!(cmax.config.nc, base.nc);
        assert_eq!(cmax.config.fc, space.fc_max());
        let _ = fastest;
    }

    #[test]
    fn tighter_constraints_cost_monotonically_more_energy() {
        let (space, tables, idle) = tradeoff_fixture();
        let est = estimator(&space, &tables, &idle);
        let base = exhaustive_search(&est, true).config;
        let mut prev = 0.0;
        for speedup in [1.0, 1.2, 1.4, 1.8] {
            let out = constrained_search(&est, true, base, speedup);
            assert!(
                out.energy_j >= prev - 1e-12,
                "speedup {speedup}: energy {} below previous {prev}",
                out.energy_j
            );
            prev = out.energy_j;
        }
    }

    #[test]
    fn concurrency_scales_idle_attribution() {
        let (space, tables, idle) = fixture(3.0);
        let mut est = estimator(&space, &tables, &idle);
        let cfg = space.iter_all().next().unwrap();
        est.concurrency = 1.0;
        let e1 = est.energy_j(cfg);
        est.concurrency = 4.0;
        let e4 = est.energy_j(cfg);
        assert!(e4 < e1, "idle share must shrink with concurrency");
    }
}
