//! Configuration selection: exhaustive search and the steepest-descent
//! pruning search (paper §5.2, Fig. 7).
//!
//! Both searches minimize an energy objective computed from a kernel's
//! lookup tables plus idle-power attribution:
//!
//! ```text
//! E(cfg) = (P_dyn(cfg) + P_idle(cfg) / concurrency) * T(cfg)
//! ```
//!
//! where `P_dyn` is CPU-only (STEER/ERASE-style objectives) or CPU+memory
//! (JOSS), and idle power is shared among concurrently running tasks
//! (§4.3.3). The steepest-descent variant prunes the `<TC,NC>` dimension via
//! a four-corner comparison, then walks the `<fC,fM>` grid downhill from the
//! best corner until a local minimum, cutting evaluations by ~70% (§7.4).

use crate::lookup::{IdleTables, KernelTables};
use joss_platform::{ConfigSpace, FreqIndex, KnobConfig};
use serde::{Deserialize, Serialize};

/// What the scheduler is minimizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// CPU energy only (ERASE, STEER, and the paper's motivation scenario 1).
    CpuEnergy,
    /// Total = CPU + memory energy (JOSS).
    TotalEnergy,
}

/// Evaluates the energy objective for one kernel at any configuration.
#[derive(Debug, Clone, Copy)]
pub struct EnergyEstimator<'a> {
    /// Configuration space.
    pub space: &'a ConfigSpace,
    /// The kernel's prediction tables.
    pub tables: &'a KernelTables,
    /// Idle power characterization.
    pub idle: &'a IdleTables,
    /// Minimized quantity.
    pub objective: Objective,
    /// Instantaneous task concurrency estimate (>= 1): how many tasks share
    /// the idle power.
    pub concurrency: f64,
    /// Maximum moldable width of the kernel: `<TC,NC>` pairs with more cores
    /// than this are excluded from every search.
    pub max_width: usize,
}

impl<'a> EnergyEstimator<'a> {
    /// `<TC,NC>` pairs admissible under the kernel's moldable width cap.
    fn tc_nc_candidates(&self) -> Vec<(joss_platform::CoreType, joss_platform::NcIndex)> {
        self.space
            .iter_tc_nc()
            .filter(|&(tc, nc)| self.space.nc_count(tc, nc) <= self.max_width)
            .collect()
    }
}

impl<'a> EnergyEstimator<'a> {
    /// Predicted execution time at `cfg`, seconds.
    pub fn time_s(&self, cfg: KnobConfig) -> f64 {
        self.tables.time_s(cfg)
    }

    /// Effective task concurrency at a configuration: the observed
    /// instantaneous concurrency, capped by how many `width`-core tasks the
    /// chosen cluster can actually host at once. Without the cap, the high
    /// concurrency observed during the all-core sampling phase would make
    /// idle power look almost free for configurations that serialize the
    /// application onto one or two cores.
    pub fn effective_concurrency(&self, cfg: KnobConfig) -> f64 {
        let cluster_cores = *self.space.nc_options[cfg.tc.index()]
            .last()
            .expect("non-empty nc options") as f64;
        let width = self.space.nc_count(cfg.tc, cfg.nc) as f64;
        (cluster_cores / width).min(self.concurrency).max(1.0)
    }

    /// Predicted energy at `cfg`, joules, under the configured objective.
    pub fn energy_j(&self, cfg: KnobConfig) -> f64 {
        let t = self.tables.time_s(cfg);
        let conc = self.effective_concurrency(cfg);
        let cpu_idle = self.idle.cluster_idle_w(cfg.tc, cfg.fc);
        match self.objective {
            Objective::CpuEnergy => (self.tables.cpu_w(cfg) + cpu_idle / conc) * t,
            Objective::TotalEnergy => {
                let mem_idle = self.idle.mem_idle_w(cfg.fm);
                (self.tables.cpu_w(cfg) + self.tables.mem_w(cfg) + (cpu_idle + mem_idle) / conc) * t
            }
        }
    }
}

/// Search cost counters (for the §7.4 overhead comparison).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Number of distinct configuration evaluations performed.
    pub evaluations: u64,
}

/// The result of a configuration search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Selected configuration.
    pub config: KnobConfig,
    /// Its predicted objective energy, joules.
    pub energy_j: f64,
    /// Cost counters.
    pub stats: SearchStats,
}

/// How the `fM` knob may be used by a search.
fn fm_candidates(space: &ConfigSpace, allow_mem_dvfs: bool) -> Vec<FreqIndex> {
    if allow_mem_dvfs {
        (0..space.mem_freqs_ghz.len()).map(FreqIndex).collect()
    } else {
        vec![space.fm_max()]
    }
}

/// Exhaustive search: evaluate every configuration and take the minimum.
///
/// With `allow_mem_dvfs = false`, `fM` is pinned at maximum (the
/// JOSS_NoMemDVFS / STEER setting).
pub fn exhaustive_search(est: &EnergyEstimator<'_>, allow_mem_dvfs: bool) -> SearchOutcome {
    let mut stats = SearchStats::default();
    let fms = fm_candidates(est.space, allow_mem_dvfs);
    let mut best: Option<(KnobConfig, f64)> = None;
    for (tc, nc) in est.tc_nc_candidates() {
        for fc in 0..est.space.cpu_freqs_ghz.len() {
            for &fm in &fms {
                let cfg = KnobConfig::new(tc, nc, FreqIndex(fc), fm);
                let e = est.energy_j(cfg);
                stats.evaluations += 1;
                if best.is_none_or(|(_, be)| e < be) {
                    best = Some((cfg, e));
                }
            }
        }
    }
    let (config, energy_j) = best.expect("non-empty configuration space");
    SearchOutcome {
        config,
        energy_j,
        stats,
    }
}

/// Steepest-descent search (Fig. 7).
///
/// 1. Evaluate the four `<fC,fM>` corner configurations for every `<TC,NC>`.
/// 2. For each corner position, find which `<TC,NC>` achieves the lowest
///    energy; pick the `<TC,NC>` with the most corner wins (ties broken by
///    total corner energy).
/// 3. From that table's best corner, repeatedly move to the lowest-energy
///    immediate `<fC,fM>` neighbour until no neighbour improves.
pub fn steepest_descent_search(est: &EnergyEstimator<'_>, allow_mem_dvfs: bool) -> SearchOutcome {
    let space = est.space;
    let mut stats = SearchStats::default();
    let corners: Vec<(FreqIndex, FreqIndex)> = if allow_mem_dvfs {
        space.freq_corners().to_vec()
    } else {
        vec![
            (FreqIndex(0), space.fm_max()),
            (space.fc_max(), space.fm_max()),
        ]
    };

    // Step 1: corner energies per <TC,NC> (width-admissible pairs only).
    let tcnc: Vec<_> = est.tc_nc_candidates();
    let mut corner_e = vec![vec![0.0f64; corners.len()]; tcnc.len()];
    for (ti, &(tc, nc)) in tcnc.iter().enumerate() {
        for (ci, &(fc, fm)) in corners.iter().enumerate() {
            corner_e[ti][ci] = est.energy_j(KnobConfig::new(tc, nc, fc, fm));
            stats.evaluations += 1;
        }
    }

    // Step 2: corner wins — for each corner, which <TC,NC> is cheapest.
    let mut wins = vec![0usize; tcnc.len()];
    let mut best = vec![0usize; corners.len()];
    for (ti, row) in corner_e.iter().enumerate().skip(1) {
        for (ci, &e) in row.iter().enumerate() {
            if e < corner_e[best[ci]][ci] {
                best[ci] = ti;
            }
        }
    }
    for &ti in &best {
        wins[ti] += 1;
    }
    let chosen_ti = (0..tcnc.len())
        .max_by(|&a, &b| {
            wins[a].cmp(&wins[b]).then_with(|| {
                // Tie-break: lower total corner energy wins.
                let sa: f64 = corner_e[a].iter().sum();
                let sb: f64 = corner_e[b].iter().sum();
                sb.partial_cmp(&sa).expect("finite energies")
            })
        })
        .expect("non-empty tcnc set");
    let (tc, nc) = tcnc[chosen_ti];

    // Step 3: hill-descent from the best corner of the chosen table.
    let best_corner = (0..corners.len())
        .min_by(|&a, &b| {
            corner_e[chosen_ti][a]
                .partial_cmp(&corner_e[chosen_ti][b])
                .unwrap()
        })
        .expect("corners non-empty");
    let (fc0, fm0) = corners[best_corner];
    let mut cur = KnobConfig::new(tc, nc, fc0, fm0);
    let mut cur_e = corner_e[chosen_ti][best_corner];
    loop {
        let mut improved = false;
        let neighbours = space.freq_neighbours(cur);
        let mut best_n = cur;
        let mut best_ne = cur_e;
        for n in neighbours {
            if !allow_mem_dvfs && n.fm != space.fm_max() {
                continue;
            }
            let e = est.energy_j(n);
            stats.evaluations += 1;
            if e < best_ne {
                best_ne = e;
                best_n = n;
                improved = true;
            }
        }
        if !improved {
            break;
        }
        cur = best_n;
        cur_e = best_ne;
    }

    SearchOutcome {
        config: cur,
        energy_j: cur_e,
        stats,
    }
}

/// Constrained search (§5.2.2): starting from `base` (the unconstrained
/// minimum-energy configuration), index into *its* `<TC,NC>` performance
/// table and find the lowest-energy `<fC,fM>` whose predicted time meets
/// `speedup` relative to `base`. Keeping `<TC,NC>` fixed preserves the
/// task-level throughput of the energy-optimal mapping, so per-task speedups
/// translate into application speedups. Falls back to the fastest `<fC,fM>`
/// of that table when the constraint is unreachable (the paper observes this
/// for memory-intensity-bound benchmarks).
pub fn constrained_search(
    est: &EnergyEstimator<'_>,
    allow_mem_dvfs: bool,
    base: KnobConfig,
    speedup: f64,
) -> SearchOutcome {
    assert!(speedup > 0.0);
    let t_base = est.time_s(base);
    let t_target = t_base / speedup;
    let fms = fm_candidates(est.space, allow_mem_dvfs);
    let mut stats = SearchStats::default();
    let mut best: Option<(KnobConfig, f64)> = None;
    let mut fastest: Option<(KnobConfig, f64, f64)> = None; // (cfg, time, energy)
    for fc in 0..est.space.cpu_freqs_ghz.len() {
        for &fm in &fms {
            let cfg = KnobConfig::new(base.tc, base.nc, FreqIndex(fc), fm);
            let t = est.time_s(cfg);
            let e = est.energy_j(cfg);
            stats.evaluations += 1;
            if t <= t_target && best.is_none_or(|(_, be)| e < be) {
                best = Some((cfg, e));
            }
            if fastest.is_none_or(|(_, bt, _)| t < bt) {
                fastest = Some((cfg, t, e));
            }
        }
    }
    let (config, energy_j) = best.unwrap_or_else(|| {
        let (cfg, _, e) = fastest.expect("non-empty table");
        (cfg, e)
    });
    SearchOutcome {
        config,
        energy_j,
        stats,
    }
}

/// The configuration with the minimum predicted time (the MAXP target).
pub fn fastest_config(est: &EnergyEstimator<'_>, allow_mem_dvfs: bool) -> SearchOutcome {
    let fms = fm_candidates(est.space, allow_mem_dvfs);
    let mut stats = SearchStats::default();
    let mut best: Option<(KnobConfig, f64)> = None;
    for (tc, nc) in est.tc_nc_candidates() {
        for fc in 0..est.space.cpu_freqs_ghz.len() {
            for &fm in &fms {
                let cfg = KnobConfig::new(tc, nc, FreqIndex(fc), fm);
                let t = est.time_s(cfg);
                stats.evaluations += 1;
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((cfg, t));
                }
            }
        }
    }
    let (config, _) = best.expect("non-empty space");
    SearchOutcome {
        config,
        energy_j: est.energy_j(config),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lookup::{IdleTables, KernelTables};
    use joss_platform::{ConfigSpace, MachineModel};

    /// Build tables with a synthetic, smooth energy landscape so the searches
    /// can be validated against a known optimum.
    fn fixture(peakiness: f64) -> (ConfigSpace, KernelTables, IdleTables) {
        let machine = MachineModel::tx2_noiseless();
        let space = ConfigSpace::from_spec(&machine.spec);
        let idle = IdleTables::measure(&machine, &space);
        let mut tables = KernelTables::empty(&space);
        for cfg in space.iter_all() {
            let fc = space.fc_ghz(cfg.fc);
            let fm = space.fm_ghz(cfg.fm);
            let nc = space.nc_count(cfg.tc, cfg.nc) as f64;
            // Convex bowl centered near (1.1 GHz, 1.3 GHz) on Little x2.
            let t = 0.01 * (1.0 + peakiness * ((fc - 1.1).powi(2) + (fm - 1.3).powi(2)));
            let cpu = 0.2 + 0.1 * fc * nc;
            let mem = 0.1 + 0.05 * fm;
            let bias = match (cfg.tc, cfg.nc.0) {
                (joss_platform::CoreType::Little, 1) => 1.0,
                _ => 1.3,
            };
            tables.set(cfg, t * bias, cpu, mem);
        }
        (space, tables, idle)
    }

    fn estimator<'a>(
        space: &'a ConfigSpace,
        tables: &'a KernelTables,
        idle: &'a IdleTables,
    ) -> EnergyEstimator<'a> {
        EnergyEstimator {
            space,
            tables,
            idle,
            objective: Objective::TotalEnergy,
            concurrency: 1.0,
            max_width: usize::MAX,
        }
    }

    #[test]
    fn exhaustive_finds_global_minimum() {
        let (space, tables, idle) = fixture(3.0);
        let est = estimator(&space, &tables, &idle);
        let out = exhaustive_search(&est, true);
        assert_eq!(out.stats.evaluations as usize, space.len());
        // Verify it is truly the global minimum.
        for cfg in space.iter_all() {
            assert!(est.energy_j(cfg) >= out.energy_j - 1e-12);
        }
    }

    #[test]
    fn steepest_descent_matches_exhaustive_on_convex_landscape() {
        let (space, tables, idle) = fixture(3.0);
        let est = estimator(&space, &tables, &idle);
        let ex = exhaustive_search(&est, true);
        let sd = steepest_descent_search(&est, true);
        assert!(
            sd.energy_j <= ex.energy_j * 1.05,
            "steepest descent {} vs exhaustive {}",
            sd.energy_j,
            ex.energy_j
        );
    }

    #[test]
    fn steepest_descent_uses_far_fewer_evaluations() {
        let (space, tables, idle) = fixture(3.0);
        let est = estimator(&space, &tables, &idle);
        let ex = exhaustive_search(&est, true);
        let sd = steepest_descent_search(&est, true);
        // §7.4: ~70% fewer comparisons on the TX2.
        assert!(
            (sd.stats.evaluations as f64) < 0.55 * ex.stats.evaluations as f64,
            "sd {} vs ex {}",
            sd.stats.evaluations,
            ex.stats.evaluations
        );
    }

    #[test]
    fn no_mem_dvfs_pins_fm_max() {
        let (space, tables, idle) = fixture(3.0);
        let est = estimator(&space, &tables, &idle);
        let ex = exhaustive_search(&est, false);
        assert_eq!(ex.config.fm, space.fm_max());
        let sd = steepest_descent_search(&est, false);
        assert_eq!(sd.config.fm, space.fm_max());
    }

    #[test]
    fn cpu_objective_ignores_memory_power() {
        let (space, mut tables, idle) = fixture(3.0);
        // Blow up memory power everywhere; the CPU objective must not care.
        for cfg in space.iter_all() {
            let t = tables.time_s(cfg);
            let c = tables.cpu_w(cfg);
            tables.set(cfg, t, c, 1000.0);
        }
        let mut est = estimator(&space, &tables, &idle);
        est.objective = Objective::CpuEnergy;
        let with_mem = {
            let mut e2 = est;
            e2.objective = Objective::TotalEnergy;
            exhaustive_search(&e2, true)
        };
        let cpu_only = exhaustive_search(&est, true);
        // Total objective is dominated by the constant memory power, so it
        // just picks the fastest config; CPU objective keeps the bowl optimum.
        assert!(est.energy_j(cpu_only.config) <= est.energy_j(with_mem.config));
    }

    /// A fixture where time falls steeply with fC (so speedup targets are
    /// reachable) while energy grows with fC (so the minimum-energy config is
    /// slow) — the paper's Fig. 2 trade-off shape.
    fn tradeoff_fixture() -> (ConfigSpace, KernelTables, IdleTables) {
        let machine = MachineModel::tx2_noiseless();
        let space = ConfigSpace::from_spec(&machine.spec);
        let idle = IdleTables::measure(&machine, &space);
        let mut tables = KernelTables::empty(&space);
        for cfg in space.iter_all() {
            let fc = space.fc_ghz(cfg.fc);
            let fm = space.fm_ghz(cfg.fm);
            let t = 0.05 / (fc * (0.7 + 0.3 * fm));
            // Dynamic CPU power must dominate idle power at high fC, or the
            // energy optimum degenerates to "run as fast as possible".
            let cpu = 0.1 + 1.2 * fc * fc;
            let mem = 0.05 + 0.1 * fm;
            tables.set(cfg, t, cpu, mem);
        }
        (space, tables, idle)
    }

    #[test]
    fn constrained_search_meets_target_or_picks_fastest() {
        let (space, tables, idle) = tradeoff_fixture();
        let est = estimator(&space, &tables, &idle);
        let base = exhaustive_search(&est, true).config;
        let t_base = est.time_s(base);
        let fastest = fastest_config(&est, true);
        assert!(
            t_base / est.time_s(fastest.config) > 1.5,
            "fixture must offer real speedup headroom"
        );

        let c12 = constrained_search(&est, true, base, 1.2);
        assert!(est.time_s(c12.config) <= t_base / 1.2 + 1e-12);
        // Achievable constraint should cost no less energy than unconstrained.
        assert!(c12.energy_j >= exhaustive_search(&est, true).energy_j - 1e-12);

        // Impossible speedup: falls back to the fastest <fC,fM> of the
        // base configuration's <TC,NC> table.
        let cmax = constrained_search(&est, true, base, 1e9);
        assert_eq!(cmax.config.tc, base.tc);
        assert_eq!(cmax.config.nc, base.nc);
        assert_eq!(cmax.config.fc, space.fc_max());
        let _ = fastest;
    }

    #[test]
    fn tighter_constraints_cost_monotonically_more_energy() {
        let (space, tables, idle) = tradeoff_fixture();
        let est = estimator(&space, &tables, &idle);
        let base = exhaustive_search(&est, true).config;
        let mut prev = 0.0;
        for speedup in [1.0, 1.2, 1.4, 1.8] {
            let out = constrained_search(&est, true, base, speedup);
            assert!(
                out.energy_j >= prev - 1e-12,
                "speedup {speedup}: energy {} below previous {prev}",
                out.energy_j
            );
            prev = out.energy_j;
        }
    }

    #[test]
    fn concurrency_scales_idle_attribution() {
        let (space, tables, idle) = fixture(3.0);
        let mut est = estimator(&space, &tables, &idle);
        let cfg = space.iter_all().next().unwrap();
        est.concurrency = 1.0;
        let e1 = est.energy_j(cfg);
        est.concurrency = 4.0;
        let e4 = est.energy_j(cfg);
        assert!(e4 < e1, "idle share must shrink with concurrency");
    }
}
