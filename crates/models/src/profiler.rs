//! Platform characterization: execute the synthetic benchmarks at every
//! configuration and collect averaged time/power measurements (§4.1).
//!
//! This is the paper's install-time/boot-time profiling step (Fig. 4): it
//! runs once per platform and its cost does not affect application runs.

use crate::synthetic::{synthetic_shapes, SyntheticBench};
use joss_platform::{ConfigSpace, CoreType, ExecContext, FreqIndex, MachineModel, NcIndex};
use serde::{Deserialize, Serialize};

/// Salt mixed into noise keys so profiling measurements are decorrelated
/// from application-run measurements.
const PROFILE_SALT: u64 = 0x50524F46; // "PROF"

/// Averaged measurement of one synthetic benchmark at one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileRecord {
    /// Index of the synthetic benchmark (0..41).
    pub bench: usize,
    /// Core type.
    pub tc: CoreType,
    /// NC index.
    pub nc: NcIndex,
    /// CPU frequency index.
    pub fc: FreqIndex,
    /// Memory frequency index.
    pub fm: FreqIndex,
    /// Mean measured execution time, seconds.
    pub time_s: f64,
    /// Mean measured CPU dynamic power, watts.
    pub cpu_w: f64,
    /// Mean measured memory dynamic power, watts.
    pub mem_w: f64,
}

/// Runs the characterization campaign on a machine.
#[derive(Debug, Clone)]
pub struct Profiler<'m> {
    machine: &'m MachineModel,
    /// Measurement repetitions averaged per configuration (the paper uses 10).
    pub reps: u32,
}

impl<'m> Profiler<'m> {
    /// New profiler with the paper's 10 repetitions.
    pub fn new(machine: &'m MachineModel) -> Self {
        Profiler { machine, reps: 10 }
    }

    /// Reduce repetitions (for fast tests).
    pub fn with_reps(mut self, reps: u32) -> Self {
        assert!(reps >= 1);
        self.reps = reps;
        self
    }

    /// The synthetic suite for this machine.
    pub fn benches(&self) -> Vec<SyntheticBench> {
        synthetic_shapes(self.machine)
    }

    /// Measure one benchmark at one configuration (averaged over reps).
    pub fn measure(
        &self,
        bench_idx: usize,
        bench: &SyntheticBench,
        tc: CoreType,
        nc_count: usize,
        fc_ghz: f64,
        fm_ghz: f64,
    ) -> (f64, f64, f64) {
        let ctx = ExecContext::default();
        let mut t = 0.0;
        let mut pc = 0.0;
        let mut pm = 0.0;
        for rep in 0..self.reps {
            let keys = [
                PROFILE_SALT,
                bench_idx as u64,
                tc.index() as u64,
                nc_count as u64,
                (fc_ghz * 1e6) as u64,
                (fm_ghz * 1e6) as u64,
                rep as u64,
            ];
            let s = self
                .machine
                .execute(&bench.shape, tc, nc_count, fc_ghz, fm_ghz, &ctx, &keys);
            t += s.duration.as_secs_f64();
            pc += s.cpu_dyn_w;
            pm += s.mem_dyn_w;
        }
        let n = self.reps as f64;
        (t / n, pc / n, pm / n)
    }

    /// Full campaign: every synthetic benchmark at every configuration.
    pub fn profile_all(&self, space: &ConfigSpace) -> Vec<ProfileRecord> {
        let benches = self.benches();
        let mut out = Vec::with_capacity(benches.len() * space.len());
        for (bi, bench) in benches.iter().enumerate() {
            for cfg in space.iter_all() {
                let nc_count = space.nc_count(cfg.tc, cfg.nc);
                let fc_ghz = space.fc_ghz(cfg.fc);
                let fm_ghz = space.fm_ghz(cfg.fm);
                let (time_s, cpu_w, mem_w) =
                    self.measure(bi, bench, cfg.tc, nc_count, fc_ghz, fm_ghz);
                out.push(ProfileRecord {
                    bench: bi,
                    tc: cfg.tc,
                    nc: cfg.nc,
                    fc: cfg.fc,
                    fm: cfg.fm,
                    time_s,
                    cpu_w,
                    mem_w,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_covers_all_configs() {
        let m = MachineModel::tx2(1);
        let space = ConfigSpace::from_spec(&m.spec);
        let recs = Profiler::new(&m).with_reps(1).profile_all(&space);
        assert_eq!(recs.len(), 41 * space.len());
        assert!(recs
            .iter()
            .all(|r| r.time_s > 0.0 && r.cpu_w >= 0.0 && r.mem_w >= 0.0));
    }

    #[test]
    fn averaging_reduces_noise() {
        let m = MachineModel::tx2(7);
        let benches = synthetic_shapes(&m);
        let clean = MachineModel::tx2_noiseless();
        let truth = clean.clean_time_s(
            &benches[20].shape,
            CoreType::Big,
            1,
            m.spec.fc_max_ghz(),
            m.spec.fm_max_ghz(),
            &ExecContext::default(),
        );
        let one = Profiler::new(&m).with_reps(1).measure(
            20,
            &benches[20],
            CoreType::Big,
            1,
            m.spec.fc_max_ghz(),
            m.spec.fm_max_ghz(),
        );
        let many = Profiler::new(&m).with_reps(50).measure(
            20,
            &benches[20],
            CoreType::Big,
            1,
            m.spec.fc_max_ghz(),
            m.spec.fm_max_ghz(),
        );
        let err_many = (many.0 - truth).abs() / truth;
        assert!(
            err_many < 0.01,
            "50-rep mean should be close to truth: {err_many}"
        );
        // Single-shot error can be anything up to ~6%, but the repeated
        // measurement must be at least as close on average; just sanity-check
        // both are in range.
        assert!((one.0 - truth).abs() / truth < 0.10);
    }

    #[test]
    fn measurements_are_reproducible() {
        let m = MachineModel::tx2(3);
        let space = ConfigSpace::from_spec(&m.spec);
        let p = Profiler::new(&m).with_reps(2);
        let a = p.profile_all(&space);
        let b = p.profile_all(&space);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time_s, y.time_s);
            assert_eq!(x.cpu_w, y.cpu_w);
        }
    }
}
