//! Model accuracy evaluation (paper §7.3, Fig. 10).
//!
//! Accuracy of one prediction is `1 - |real - predicted| / real`, and the
//! paper reports the distribution of per-benchmark average accuracies for
//! each of the three models.

use serde::{Deserialize, Serialize};

/// Accuracy of a single prediction (clamped below at 0).
pub fn accuracy(real: f64, predicted: f64) -> f64 {
    debug_assert!(real > 0.0, "accuracy needs a positive reference");
    (1.0 - (real - predicted).abs() / real).max(0.0)
}

/// Summary statistics of an accuracy sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 25th percentile.
    pub p25: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample count.
    pub n: usize,
}

impl AccuracyStats {
    /// Compute from raw samples. Returns `None` on an empty set.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite accuracies"));
        let n = v.len();
        let q = |p: f64| -> f64 {
            let idx = p * (n - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            v[lo] * (1.0 - frac) + v[hi] * frac
        };
        Some(AccuracyStats {
            mean: v.iter().sum::<f64>() / n as f64,
            median: q(0.5),
            p25: q(0.25),
            p75: q(0.75),
            min: v[0],
            max: v[n - 1],
            n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_one() {
        assert_eq!(accuracy(2.0, 2.0), 1.0);
    }

    #[test]
    fn ten_percent_error_is_point_nine() {
        assert!((accuracy(10.0, 11.0) - 0.9).abs() < 1e-12);
        assert!((accuracy(10.0, 9.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn gross_error_clamps_at_zero() {
        assert_eq!(accuracy(1.0, 5.0), 0.0);
    }

    #[test]
    fn stats_on_known_set() {
        let s = AccuracyStats::from_samples(&[0.8, 0.9, 1.0, 0.7, 0.6]).unwrap();
        assert_eq!(s.n, 5);
        assert!((s.mean - 0.8).abs() < 1e-12);
        assert!((s.median - 0.8).abs() < 1e-12);
        assert_eq!(s.min, 0.6);
        assert_eq!(s.max, 1.0);
        assert!(s.p25 <= s.median && s.median <= s.p75);
    }

    #[test]
    fn empty_set_is_none() {
        assert!(AccuracyStats::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = AccuracyStats::from_samples(&[0.93]).unwrap();
        assert_eq!(s.mean, 0.93);
        assert_eq!(s.median, 0.93);
        assert_eq!(s.p25, 0.93);
    }
}
