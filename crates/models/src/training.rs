//! Model training: the paper's Fig. 4 flow.
//!
//! For every `<TC, NC>` pair, fit three models from the synthetic-benchmark
//! profiles:
//!
//! 1. a [`PerfModel`] (Eqs. 1–2) predicting time under joint DVFS,
//! 2. a [`CpuPowerModel`] (Eq. 4),
//! 3. a [`MemPowerModel`] (Eq. 5).
//!
//! The benchmark MB values used as regression inputs are obtained the same
//! way the runtime will obtain them — Eq. 3 over times sampled at two core
//! frequencies — keeping training and inference consistent. Profiling and
//! training run once per platform (install/boot time).

use crate::lookup::{IdleTables, KernelTables, TcNcIndexer};
use crate::mb::estimate_mb;
use crate::perf::{PerfModel, PerfSample};
use crate::power::{CpuPowerModel, MemPowerModel, PowerSample};
use crate::profiler::{ProfileRecord, Profiler};
use joss_platform::{ConfigSpace, CoreType, FreqIndex, MachineModel, NcIndex};
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Reference core frequency index (first sampling frequency, `fC`).
    pub fc_ref: FreqIndex,
    /// Alternate core frequency index (second sampling frequency, `fC'`).
    pub fc_alt: FreqIndex,
    /// Reference memory frequency index used while sampling.
    pub fm_ref: FreqIndex,
    /// Profiling repetitions per configuration.
    pub reps: u32,
}

impl TrainingConfig {
    /// Defaults for the TX2 ladder: sample at the highest frequency
    /// (2.04 GHz) and at 1.11 GHz, memory at maximum; 10 repetitions.
    pub fn tx2_default(space: &ConfigSpace) -> Self {
        TrainingConfig {
            fc_ref: space.fc_max(),
            fc_alt: FreqIndex(2),
            fm_ref: space.fm_max(),
            reps: 10,
        }
    }
}

/// The three fitted models for one `<TC, NC>` pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcNcModels {
    /// Execution-time model.
    pub perf: PerfModel,
    /// CPU dynamic power model.
    pub cpu: CpuPowerModel,
    /// Memory dynamic power model.
    pub mem: MemPowerModel,
}

/// The full trained model set for a platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelSet {
    /// Configuration space the models were trained over.
    pub space: ConfigSpace,
    /// Training configuration used.
    pub cfg: TrainingConfig,
    /// Per-`<TC,NC>` models, dense-indexed by [`TcNcIndexer`].
    per: Vec<TcNcModels>,
    indexer: TcNcIndexer,
    /// Idle power characterization.
    pub idle: IdleTables,
}

impl ModelSet {
    /// Profile the machine and fit all models (the one-time platform
    /// characterization).
    pub fn train(machine: &MachineModel, cfg: TrainingConfig) -> Self {
        let space = ConfigSpace::from_spec(&machine.spec);
        let records = Profiler::new(machine)
            .with_reps(cfg.reps)
            .profile_all(&space);
        Self::train_from_records(machine, &space, cfg, &records)
    }

    /// Fit from pre-collected profile records (lets tests reuse a campaign).
    pub fn train_from_records(
        machine: &MachineModel,
        space: &ConfigSpace,
        cfg: TrainingConfig,
        records: &[ProfileRecord],
    ) -> Self {
        let indexer = TcNcIndexer::new(space);
        let fc_ref_ghz = space.fc_ghz(cfg.fc_ref);
        let fc_alt_ghz = space.fc_ghz(cfg.fc_alt);
        let fm_ref_ghz = space.fm_ghz(cfg.fm_ref);
        let n_benches = records.iter().map(|r| r.bench + 1).max().unwrap_or(0);

        // Group records: [tcnc][bench] -> Vec over (fc, fm).
        let mut per = Vec::with_capacity(indexer.len());
        for (tc, nc) in indexer.iter() {
            // Per-bench MB from the two sampling points.
            let mut mb = vec![f64::NAN; n_benches];
            let t_at = |bench: usize, fc: FreqIndex, fm: FreqIndex| -> f64 {
                records
                    .iter()
                    .find(|r| {
                        r.tc == tc && r.nc == nc && r.bench == bench && r.fc == fc && r.fm == fm
                    })
                    .map(|r| r.time_s)
                    .expect("profiling campaign must cover all configurations")
            };
            for (bench, slot) in mb.iter_mut().enumerate() {
                let t_ref = t_at(bench, cfg.fc_ref, cfg.fm_ref);
                let t_alt = t_at(bench, cfg.fc_alt, cfg.fm_ref);
                *slot = estimate_mb(t_ref, fc_ref_ghz, t_alt, fc_alt_ghz);
            }

            // Assemble regression samples.
            let mut perf_samples = Vec::new();
            let mut cpu_samples = Vec::new();
            let mut mem_samples = Vec::new();
            for r in records.iter().filter(|r| r.tc == tc && r.nc == nc) {
                let t_ref = t_at(r.bench, cfg.fc_ref, cfg.fm_ref);
                perf_samples.push(PerfSample {
                    mb: mb[r.bench],
                    t_ref_s: t_ref,
                    fc_tgt_ghz: space.fc_ghz(r.fc),
                    fm_tgt_ghz: space.fm_ghz(r.fm),
                    t_tgt_s: r.time_s,
                });
                cpu_samples.push(PowerSample {
                    mb: mb[r.bench],
                    fc_ghz: space.fc_ghz(r.fc),
                    fm_ghz: space.fm_ghz(r.fm),
                    watts: r.cpu_w,
                });
                mem_samples.push(PowerSample {
                    mb: mb[r.bench],
                    fc_ghz: space.fc_ghz(r.fc),
                    fm_ghz: space.fm_ghz(r.fm),
                    watts: r.mem_w,
                });
            }
            per.push(TcNcModels {
                perf: PerfModel::fit(&perf_samples, fc_ref_ghz, fm_ref_ghz)
                    .expect("enough perf samples"),
                cpu: CpuPowerModel::fit(&cpu_samples).expect("enough cpu samples"),
                mem: MemPowerModel::fit(&mem_samples).expect("enough mem samples"),
            });
        }

        ModelSet {
            space: space.clone(),
            cfg,
            per,
            indexer,
            idle: IdleTables::measure(machine, space),
        }
    }

    /// Models for one `<TC, NC>` pair.
    pub fn models(&self, tc: CoreType, nc: NcIndex) -> &TcNcModels {
        &self.per[self.indexer.index(tc, nc)]
    }

    /// The `<TC,NC>` indexer.
    pub fn indexer(&self) -> &TcNcIndexer {
        &self.indexer
    }

    /// Reference core frequency in GHz (first sampling frequency).
    pub fn fc_ref_ghz(&self) -> f64 {
        self.space.fc_ghz(self.cfg.fc_ref)
    }

    /// Alternate core frequency in GHz (second sampling frequency).
    pub fn fc_alt_ghz(&self) -> f64 {
        self.space.fc_ghz(self.cfg.fc_alt)
    }

    /// Reference memory frequency in GHz used during sampling.
    pub fn fm_ref_ghz(&self) -> f64 {
        self.space.fm_ghz(self.cfg.fm_ref)
    }

    /// Populate a kernel's lookup tables from its online samples.
    ///
    /// `samples[i] = Some((t_ref_s, t_alt_s))` for the dense `<TC,NC>` index
    /// `i`: execution times of the kernel sampled at `fc_ref` and `fc_alt`
    /// (both at `fm_ref`). `None` marks `<TC,NC>` pairs the kernel cannot use
    /// (moldable width cap); their cells are filled with infinite time so no
    /// search can select them. This is the §5.1 "model prediction" step that
    /// fills the three per-kernel tables.
    pub fn build_kernel_tables(&self, samples: &[Option<(f64, f64)>]) -> KernelTables {
        assert_eq!(samples.len(), self.indexer.len());
        let mut tables = KernelTables::empty(&self.space);
        for (i, (tc, nc)) in self.indexer.iter().enumerate() {
            let Some((t_ref, t_alt)) = samples[i] else {
                for fc in 0..self.space.cpu_freqs_ghz.len() {
                    for fm in 0..self.space.mem_freqs_ghz.len() {
                        let cfg =
                            joss_platform::KnobConfig::new(tc, nc, FreqIndex(fc), FreqIndex(fm));
                        tables.set(cfg, f64::INFINITY, 0.0, 0.0);
                    }
                }
                continue;
            };
            let mb = estimate_mb(t_ref, self.fc_ref_ghz(), t_alt, self.fc_alt_ghz());
            tables.set_sample(tc, nc, mb, t_ref);
            let m = &self.per[i];
            for fc in 0..self.space.cpu_freqs_ghz.len() {
                for fm in 0..self.space.mem_freqs_ghz.len() {
                    let cfg = joss_platform::KnobConfig::new(tc, nc, FreqIndex(fc), FreqIndex(fm));
                    let fc_ghz = self.space.fc_ghz(cfg.fc);
                    let fm_ghz = self.space.fm_ghz(cfg.fm);
                    let time = m.perf.predict_s(mb, t_ref, fc_ghz, fm_ghz);
                    let cpu = m.cpu.predict_w(mb, fc_ghz);
                    let mem = m.mem.predict_w(mb, fc_ghz, fm_ghz);
                    tables.set(cfg, time, cpu, mem);
                }
            }
        }
        tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joss_platform::{ExecContext, TaskShape};

    fn quick_modelset(seed: u64) -> (MachineModel, ModelSet) {
        let machine = MachineModel::tx2(seed);
        let space = ConfigSpace::from_spec(&machine.spec);
        let mut cfg = TrainingConfig::tx2_default(&space);
        cfg.reps = 2; // keep the test fast
        let set = ModelSet::train(&machine, cfg);
        (machine, set)
    }

    #[test]
    fn trains_models_for_all_tcnc() {
        let (_, set) = quick_modelset(11);
        assert_eq!(set.indexer().len(), 5);
        for (tc, nc) in set.indexer().iter() {
            let m = set.models(tc, nc);
            assert!(m.perf.coefficients().iter().all(|c| c.is_finite()));
            assert!(m.cpu.coefficients().iter().all(|c| c.is_finite()));
            assert!(m.mem.coefficients().iter().all(|c| c.is_finite()));
        }
    }

    #[test]
    fn perf_predictions_track_ground_truth() {
        let (machine, set) = quick_modelset(12);
        let clean = MachineModel::tx2_noiseless();
        let ctx = ExecContext::default();
        // A mixed kernel, not one of the training synthetics.
        let shape = TaskShape::new(0.02, 0.04);
        let tc = CoreType::Little;
        let nc_ix = NcIndex(1);
        let nc = set.space.nc_count(tc, nc_ix);
        let fc_ref = set.fc_ref_ghz();
        let fc_alt = set.fc_alt_ghz();
        let fm_ref = set.fm_ref_ghz();
        let t_ref = clean.clean_time_s(&shape, tc, nc, fc_ref, fm_ref, &ctx);
        let t_alt = clean.clean_time_s(&shape, tc, nc, fc_alt, fm_ref, &ctx);
        let mb = estimate_mb(t_ref, fc_ref, t_alt, fc_alt);
        let m = set.models(tc, nc_ix);
        let mut worst: f64 = 0.0;
        for &fc in &set.space.cpu_freqs_ghz {
            for &fm in &set.space.mem_freqs_ghz {
                let pred = m.perf.predict_s(mb, t_ref, fc, fm);
                let real = clean.clean_time_s(&shape, tc, nc, fc, fm, &ctx);
                worst = worst.max((pred - real).abs() / real);
            }
        }
        assert!(
            worst < 0.15,
            "worst perf rel err {worst} (paper: ~3% mean on real hw)"
        );
        let _ = machine;
    }

    #[test]
    fn kernel_tables_cover_all_cells_positively() {
        let (machine, set) = quick_modelset(13);
        let clean = MachineModel::tx2_noiseless();
        let ctx = ExecContext::default();
        let shape = TaskShape::new(0.05, 0.01);
        let samples: Vec<Option<(f64, f64)>> = set
            .indexer()
            .iter()
            .map(|(tc, nc)| {
                let n = set.space.nc_count(tc, nc);
                Some((
                    clean.clean_time_s(&shape, tc, n, set.fc_ref_ghz(), set.fm_ref_ghz(), &ctx),
                    clean.clean_time_s(&shape, tc, n, set.fc_alt_ghz(), set.fm_ref_ghz(), &ctx),
                ))
            })
            .collect();
        let tables = set.build_kernel_tables(&samples);
        for cfg in set.space.iter_all() {
            assert!(tables.time_s(cfg) > 0.0, "time must be positive at {cfg:?}");
            assert!(tables.cpu_w(cfg) >= 0.0);
            assert!(tables.mem_w(cfg) >= 0.0);
        }
        for (tc, nc) in set.indexer().iter() {
            let mb = tables.mb_of(tc, nc);
            assert!((0.0..=1.0).contains(&mb));
        }
        let _ = machine;
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn build_tables_requires_full_samples() {
        let (_, set) = quick_modelset(14);
        let _ = set.build_kernel_tables(&[Some((1.0, 1.1))]);
    }
}
