//! Per-kernel prediction lookup tables and idle-power characterization.
//!
//! JOSS keeps three lookup tables per kernel — execution time, CPU power and
//! memory power — indexed by `<TC, NC, fC, fM>` (§5.1). They are populated
//! once, right after the kernel's online sampling completes, and then reused
//! by every configuration-selection query. §7.4 derives the storage cost:
//! `3 * M * log(N/M) * N_fC * N_fM` entries per kernel.

use joss_platform::{ConfigSpace, CoreType, FreqIndex, KnobConfig, NcIndex};
use serde::{Deserialize, Serialize};

/// Maps `<TC, NC>` pairs to a dense index (Big's NC options first).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcNcIndexer {
    n_nc_big: usize,
    n_nc_little: usize,
}

impl TcNcIndexer {
    /// Build from a configuration space.
    pub fn new(space: &ConfigSpace) -> Self {
        TcNcIndexer {
            n_nc_big: space.n_nc(CoreType::Big),
            n_nc_little: space.n_nc(CoreType::Little),
        }
    }

    /// Number of `<TC, NC>` pairs.
    pub fn len(&self) -> usize {
        self.n_nc_big + self.n_nc_little
    }

    /// True if there are no pairs (degenerate space).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dense index of a `<TC, NC>` pair.
    pub fn index(&self, tc: CoreType, nc: NcIndex) -> usize {
        match tc {
            CoreType::Big => {
                debug_assert!(nc.0 < self.n_nc_big);
                nc.0
            }
            CoreType::Little => {
                debug_assert!(nc.0 < self.n_nc_little);
                self.n_nc_big + nc.0
            }
        }
    }

    /// Inverse mapping: dense index to `<TC, NC>`.
    pub fn pair(&self, idx: usize) -> (CoreType, NcIndex) {
        if idx < self.n_nc_big {
            (CoreType::Big, NcIndex(idx))
        } else {
            debug_assert!(idx < self.len());
            (CoreType::Little, NcIndex(idx - self.n_nc_big))
        }
    }

    /// Iterate all pairs in dense order.
    pub fn iter(&self) -> impl Iterator<Item = (CoreType, NcIndex)> + '_ {
        (0..self.len()).map(|i| self.pair(i))
    }
}

/// Idle power characterization measured during benchmarking (§4.3.3):
/// per-cluster idle power at each CPU frequency and memory background power
/// at each memory frequency.
///
/// This is the platform's [`joss_platform::PowerTables`] under its
/// model-layer name: the engine's event loop and the configuration searches
/// look idle power up in the *same* table, built once per experiment
/// context (see `docs/ENGINE.md`).
pub use joss_platform::PowerTables as IdleTables;

/// The three per-kernel lookup tables of §5.1.
///
/// Values are *predictions* produced by the trained models from the kernel's
/// online samples, except at the sampled reference points where measured
/// values are stored directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTables {
    indexer: TcNcIndexer,
    n_fc: usize,
    n_fm: usize,
    /// Estimated memory-boundness per `<TC,NC>`.
    pub mb: Vec<f64>,
    /// Sampled reference execution time per `<TC,NC>`, seconds.
    pub t_ref_s: Vec<f64>,
    /// Predicted execution time, `[tcnc][fc][fm]`, seconds.
    time_s: Vec<f64>,
    /// Predicted CPU dynamic power, `[tcnc][fc][fm]`, watts.
    cpu_w: Vec<f64>,
    /// Predicted memory dynamic power, `[tcnc][fc][fm]`, watts.
    mem_w: Vec<f64>,
}

impl KernelTables {
    /// Allocate empty tables (all zeros) for a space.
    pub fn empty(space: &ConfigSpace) -> Self {
        let indexer = TcNcIndexer::new(space);
        let n_fc = space.cpu_freqs_ghz.len();
        let n_fm = space.mem_freqs_ghz.len();
        let cells = indexer.len() * n_fc * n_fm;
        KernelTables {
            mb: vec![0.0; indexer.len()],
            t_ref_s: vec![0.0; indexer.len()],
            time_s: vec![0.0; cells],
            cpu_w: vec![0.0; cells],
            mem_w: vec![0.0; cells],
            indexer,
            n_fc,
            n_fm,
        }
    }

    /// The `<TC,NC>` indexer.
    pub fn indexer(&self) -> &TcNcIndexer {
        &self.indexer
    }

    fn cell(&self, tcnc: usize, fc: FreqIndex, fm: FreqIndex) -> usize {
        debug_assert!(fc.0 < self.n_fc && fm.0 < self.n_fm);
        (tcnc * self.n_fc + fc.0) * self.n_fm + fm.0
    }

    /// Write one prediction cell.
    pub fn set(&mut self, cfg: KnobConfig, time_s: f64, cpu_w: f64, mem_w: f64) {
        let i = self.cell(self.indexer.index(cfg.tc, cfg.nc), cfg.fc, cfg.fm);
        self.time_s[i] = time_s;
        self.cpu_w[i] = cpu_w;
        self.mem_w[i] = mem_w;
    }

    /// Record the outcome of online sampling for a `<TC,NC>`.
    pub fn set_sample(&mut self, tc: CoreType, nc: NcIndex, mb: f64, t_ref_s: f64) {
        let i = self.indexer.index(tc, nc);
        self.mb[i] = mb;
        self.t_ref_s[i] = t_ref_s;
    }

    /// Predicted execution time at a configuration, seconds.
    pub fn time_s(&self, cfg: KnobConfig) -> f64 {
        self.time_s[self.cell(self.indexer.index(cfg.tc, cfg.nc), cfg.fc, cfg.fm)]
    }

    /// Predicted CPU dynamic power, watts.
    pub fn cpu_w(&self, cfg: KnobConfig) -> f64 {
        self.cpu_w[self.cell(self.indexer.index(cfg.tc, cfg.nc), cfg.fc, cfg.fm)]
    }

    /// Predicted memory dynamic power, watts.
    pub fn mem_w(&self, cfg: KnobConfig) -> f64 {
        self.mem_w[self.cell(self.indexer.index(cfg.tc, cfg.nc), cfg.fc, cfg.fm)]
    }

    /// Estimated MB for a `<TC,NC>`.
    pub fn mb_of(&self, tc: CoreType, nc: NcIndex) -> f64 {
        self.mb[self.indexer.index(tc, nc)]
    }

    /// Total stored entries across the three tables — the §7.4 storage
    /// overhead figure (`3 * M * log(N/M) * N_fC * N_fM` on a homogeneous
    /// platform; here the exact per-cluster NC counts are used).
    pub fn storage_entries(&self) -> usize {
        3 * self.indexer.len() * self.n_fc * self.n_fm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joss_platform::{MachineModel, PlatformSpec};

    fn space() -> ConfigSpace {
        ConfigSpace::from_spec(&PlatformSpec::tx2_like())
    }

    #[test]
    fn indexer_roundtrip() {
        let s = space();
        let ix = TcNcIndexer::new(&s);
        assert_eq!(ix.len(), 5);
        for i in 0..ix.len() {
            let (tc, nc) = ix.pair(i);
            assert_eq!(ix.index(tc, nc), i);
        }
        assert_eq!(ix.index(CoreType::Big, NcIndex(0)), 0);
        assert_eq!(ix.index(CoreType::Little, NcIndex(0)), 2);
    }

    #[test]
    fn tables_store_and_retrieve() {
        let s = space();
        let mut t = KernelTables::empty(&s);
        let cfg = KnobConfig::new(CoreType::Little, NcIndex(2), FreqIndex(3), FreqIndex(1));
        t.set(cfg, 0.5, 1.25, 0.75);
        assert_eq!(t.time_s(cfg), 0.5);
        assert_eq!(t.cpu_w(cfg), 1.25);
        assert_eq!(t.mem_w(cfg), 0.75);
        // A different cell is untouched.
        let other = KnobConfig::new(CoreType::Big, NcIndex(0), FreqIndex(0), FreqIndex(0));
        assert_eq!(t.time_s(other), 0.0);
    }

    #[test]
    fn sample_records() {
        let s = space();
        let mut t = KernelTables::empty(&s);
        t.set_sample(CoreType::Big, NcIndex(1), 0.42, 0.001);
        assert_eq!(t.mb_of(CoreType::Big, NcIndex(1)), 0.42);
        assert_eq!(
            t.t_ref_s[t.indexer().index(CoreType::Big, NcIndex(1))],
            0.001
        );
    }

    #[test]
    fn storage_matches_paper_formula() {
        let s = space();
        let t = KernelTables::empty(&s);
        // TX2: M=2 clusters; NC options 2 (big) + 3 (little) = 5; 5 fC; 3 fM.
        assert_eq!(t.storage_entries(), 3 * 5 * 5 * 3);
    }

    #[test]
    fn idle_tables_measure_sane_values() {
        let m = MachineModel::tx2_noiseless();
        let s = space();
        let idle = IdleTables::measure(&m, &s);
        // Idle power increases with frequency on every domain.
        for tc in CoreType::ALL {
            let lo = idle.cluster_idle_w(tc, FreqIndex(0));
            let hi = idle.cluster_idle_w(tc, FreqIndex(4));
            assert!(hi > lo && lo > 0.0);
        }
        assert!(idle.mem_idle_w(FreqIndex(2)) > idle.mem_idle_w(FreqIndex(0)));
    }
}
