//! The synthetic benchmark suite used for platform characterization (§4.1).
//!
//! Each synthetic benchmark mixes a computation loop and a memory-access
//! loop. Keeping total execution time constant at a nominal generation
//! configuration, the compute share starts at 50%/50% and moves in 2.5%
//! steps to produce **41 benchmarks** spanning 0%..100% compute — i.e. the
//! whole memory-boundness range the models must cover.

use joss_platform::{CoreType, ExecContext, MachineModel, TaskShape};
use serde::{Deserialize, Serialize};

/// Number of synthetic benchmarks (0..=100% compute in 2.5% steps).
pub const N_SYNTHETIC: usize = 41;

/// Nominal total execution time of each synthetic benchmark at the
/// generation configuration, seconds.
pub const NOMINAL_TIME_S: f64 = 0.020;

/// One synthetic benchmark: a target compute fraction and the task shape
/// realizing it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticBench {
    /// Fraction of execution time spent computing at the generation
    /// configuration (0.0 = pure memory, 1.0 = pure compute).
    pub compute_frac: f64,
    /// The shape the platform executes.
    pub shape: TaskShape,
}

/// Generate the 41 synthetic benchmarks for a machine.
///
/// Shapes are constructed so that at the generation configuration (one
/// little core, all frequencies at maximum) the compute/memory time split
/// matches `compute_frac` and the total time is [`NOMINAL_TIME_S`].
pub fn synthetic_shapes(machine: &MachineModel) -> Vec<SyntheticBench> {
    let tc = CoreType::Little;
    let nc = 1;
    let fc = machine.spec.fc_max_ghz();
    let fm = machine.spec.fm_max_ghz();
    let ctx = ExecContext::default();

    // Calibrate conversion rates at the generation configuration:
    // seconds of compute per Gop, seconds of stall per GB.
    let probe = TaskShape::new(1.0, 1.0);
    let s_per_gop = machine.compute_time_s(&probe, tc, nc, fc);
    let s_per_gb = machine.stall_time_s(&probe, tc, nc, fc, fm, &ctx);

    (0..N_SYNTHETIC)
        .map(|i| {
            let compute_frac = i as f64 * 0.025;
            let t_comp = NOMINAL_TIME_S * compute_frac;
            let t_mem = NOMINAL_TIME_S - t_comp;
            SyntheticBench {
                compute_frac,
                shape: TaskShape {
                    work_gops: t_comp / s_per_gop,
                    bytes_gb: t_mem / s_per_gb,
                    scal_alpha: 0.95,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_41_benchmarks() {
        let m = MachineModel::tx2_noiseless();
        let benches = synthetic_shapes(&m);
        assert_eq!(benches.len(), N_SYNTHETIC);
        assert!((benches[0].compute_frac - 0.0).abs() < 1e-12);
        assert!((benches[20].compute_frac - 0.5).abs() < 1e-12);
        assert!((benches[40].compute_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shapes_hit_nominal_time_at_generation_config() {
        let m = MachineModel::tx2_noiseless();
        let ctx = ExecContext::default();
        let fc = m.spec.fc_max_ghz();
        let fm = m.spec.fm_max_ghz();
        for b in synthetic_shapes(&m) {
            let t = m.clean_time_s(&b.shape, CoreType::Little, 1, fc, fm, &ctx);
            let rel = (t - NOMINAL_TIME_S).abs() / NOMINAL_TIME_S;
            assert!(rel < 0.01, "frac {}: time {t}", b.compute_frac);
        }
    }

    #[test]
    fn compute_fraction_matches_ground_truth_mb() {
        let m = MachineModel::tx2_noiseless();
        let ctx = ExecContext::default();
        let fc = m.spec.fc_max_ghz();
        let fm = m.spec.fm_max_ghz();
        for b in synthetic_shapes(&m) {
            let sample = m.execute(&b.shape, CoreType::Little, 1, fc, fm, &ctx, &[0]);
            let expected_mb = 1.0 - b.compute_frac;
            assert!(
                (sample.true_mb - expected_mb).abs() < 0.02,
                "frac {}: mb {} vs expected {}",
                b.compute_frac,
                sample.true_mb,
                expected_mb
            );
        }
    }

    #[test]
    fn extremes_are_pure() {
        let m = MachineModel::tx2_noiseless();
        let benches = synthetic_shapes(&m);
        assert!(
            benches[0].shape.work_gops.abs() < 1e-12,
            "0% compute has no work"
        );
        assert!(
            benches[40].shape.bytes_gb.abs() < 1e-12,
            "100% compute has no traffic"
        );
        for b in &benches {
            assert!(
                b.shape.is_valid(),
                "shape must be valid at frac {}",
                b.compute_frac
            );
        }
    }
}
