//! The performance (execution-time) model — paper §4.2, Eqs. 1–2.
//!
//! For one `<TC, NC>` pair, the model predicts a task's execution time at any
//! `<fC', fM'>` from (a) the task's memory-boundness `MB` and (b) one sampled
//! execution time `T` at the reference frequencies `<fC, fM>`:
//!
//! ```text
//! T'_comp  = T * (1 - MB) * fC / fC'                                   (Eq. 1)
//! T'_stall = T * poly2(MB, fC/fC', fM/fM')                             (Eq. 2)
//! T'       = T'_comp + T'_stall
//! ```
//!
//! The stall polynomial has linear, quadratic and interaction terms over the
//! three variables and is fitted per `<TC,NC>` from synthetic-benchmark
//! profiles.

use crate::features::PolyBasis;
use crate::linalg::least_squares;
use serde::{Deserialize, Serialize};

/// One training observation for the performance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfSample {
    /// Estimated memory-boundness of the benchmark at this `<TC,NC>`.
    pub mb: f64,
    /// Measured time at the reference `<fC, fM>`, seconds.
    pub t_ref_s: f64,
    /// Target core frequency, GHz.
    pub fc_tgt_ghz: f64,
    /// Target memory frequency, GHz.
    pub fm_tgt_ghz: f64,
    /// Measured time at the target `<fC', fM'>`, seconds.
    pub t_tgt_s: f64,
}

/// Fitted execution-time model for one `<TC, NC>`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfModel {
    basis: PolyBasis,
    beta: Vec<f64>,
    /// Reference core frequency the sampled time was measured at, GHz.
    pub fc_ref_ghz: f64,
    /// Reference memory frequency the sampled time was measured at, GHz.
    pub fm_ref_ghz: f64,
}

impl PerfModel {
    /// Fit the stall polynomial by least squares over profiling samples.
    ///
    /// Returns `None` when the design is degenerate (too few samples).
    pub fn fit(samples: &[PerfSample], fc_ref_ghz: f64, fm_ref_ghz: f64) -> Option<Self> {
        let basis = PolyBasis::new(3);
        if samples.len() < basis.n_features() {
            return None;
        }
        let mut x = Vec::with_capacity(samples.len() * basis.n_features());
        let mut y = Vec::with_capacity(samples.len());
        for s in samples {
            debug_assert!(s.t_ref_s > 0.0 && s.t_tgt_s > 0.0);
            let rc = fc_ref_ghz / s.fc_tgt_ghz;
            let rm = fm_ref_ghz / s.fm_tgt_ghz;
            basis.expand_into(&[s.mb, rc, rm], &mut x);
            // Response: normalized stall time at the target, after removing
            // the analytically-scaled compute portion (Eq. 1).
            let stall_norm = s.t_tgt_s / s.t_ref_s - (1.0 - s.mb) * rc;
            y.push(stall_norm);
        }
        let beta = least_squares(&x, &y, samples.len(), basis.n_features())?;
        Some(PerfModel {
            basis,
            beta,
            fc_ref_ghz,
            fm_ref_ghz,
        })
    }

    /// Predict execution time (seconds) at `<fC', fM'>` given the task's MB
    /// and its sampled time `t_ref_s` at the reference frequencies.
    pub fn predict_s(&self, mb: f64, t_ref_s: f64, fc_tgt_ghz: f64, fm_tgt_ghz: f64) -> f64 {
        let rc = self.fc_ref_ghz / fc_tgt_ghz;
        let rm = self.fm_ref_ghz / fm_tgt_ghz;
        let comp = (1.0 - mb) * rc;
        let stall = self.basis.eval(&self.beta, &[mb, rc, rm]);
        // Time can never be negative; floor the stall contribution at zero.
        let total = comp + stall.max(0.0);
        (t_ref_s * total).max(1e-12)
    }

    /// The fitted coefficients (for inspection/reporting).
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generate synthetic training data from an idealized additive machine:
    /// `T(fc, fm) = comp * (fc_ref/fc) + stall * (fm_ref/fm)`.
    fn ideal_samples() -> Vec<PerfSample> {
        let fc_ref = 2.0;
        let fm_ref = 1.8;
        let mut out = Vec::new();
        for mb10 in 0..=10 {
            let mb = mb10 as f64 / 10.0;
            let t_ref = 1.0;
            let comp = (1.0 - mb) * t_ref;
            let stall = mb * t_ref;
            for fc in [0.5, 1.0, 1.5, 2.0] {
                for fm in [0.9, 1.35, 1.8] {
                    let t = comp * (fc_ref / fc) + stall * (fm_ref / fm);
                    out.push(PerfSample {
                        mb,
                        t_ref_s: t_ref,
                        fc_tgt_ghz: fc,
                        fm_tgt_ghz: fm,
                        t_tgt_s: t,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn fits_ideal_machine_exactly() {
        let samples = ideal_samples();
        let m = PerfModel::fit(&samples, 2.0, 1.8).unwrap();
        for s in &samples {
            let pred = m.predict_s(s.mb, s.t_ref_s, s.fc_tgt_ghz, s.fm_tgt_ghz);
            let rel = (pred - s.t_tgt_s).abs() / s.t_tgt_s;
            assert!(rel < 1e-6, "rel err {rel} at {s:?}");
        }
    }

    #[test]
    fn reference_point_is_identity() {
        let m = PerfModel::fit(&ideal_samples(), 2.0, 1.8).unwrap();
        for mb in [0.0, 0.3, 0.9] {
            let pred = m.predict_s(mb, 2.5, 2.0, 1.8);
            assert!((pred - 2.5).abs() / 2.5 < 1e-6, "mb={mb}: {pred}");
        }
    }

    #[test]
    fn compute_bound_scales_with_fc_only() {
        let m = PerfModel::fit(&ideal_samples(), 2.0, 1.8).unwrap();
        let t_full = m.predict_s(0.0, 1.0, 2.0, 1.8);
        let t_half = m.predict_s(0.0, 1.0, 1.0, 1.8);
        assert!((t_half / t_full - 2.0).abs() < 0.01);
        let t_mem_lo = m.predict_s(0.0, 1.0, 2.0, 0.9);
        assert!(
            (t_mem_lo / t_full - 1.0).abs() < 0.01,
            "fm must not matter at MB=0"
        );
    }

    #[test]
    fn memory_bound_scales_with_fm_only() {
        let m = PerfModel::fit(&ideal_samples(), 2.0, 1.8).unwrap();
        let t_full = m.predict_s(1.0, 1.0, 2.0, 1.8);
        let t_mem_lo = m.predict_s(1.0, 1.0, 2.0, 0.9);
        assert!((t_mem_lo / t_full - 2.0).abs() < 0.02);
        let t_fc_lo = m.predict_s(1.0, 1.0, 1.0, 1.8);
        assert!(
            (t_fc_lo / t_full - 1.0).abs() < 0.02,
            "fc must not matter at MB=1"
        );
    }

    #[test]
    fn too_few_samples_rejected() {
        let s = ideal_samples();
        assert!(PerfModel::fit(&s[..5], 2.0, 1.8).is_none());
    }

    #[test]
    fn predictions_always_positive() {
        let m = PerfModel::fit(&ideal_samples(), 2.0, 1.8).unwrap();
        for mb in [0.0, 0.5, 1.0] {
            for fc in [0.1, 1.0, 4.0] {
                for fm in [0.1, 1.0, 4.0] {
                    assert!(m.predict_s(mb, 1e-6, fc, fm) > 0.0);
                }
            }
        }
    }
}
