//! # joss-models — prediction models and configuration search
//!
//! Implements the model stack of the JOSS paper (§4):
//!
//! * [`linalg`] — dense least-squares solver (no external BLAS);
//! * [`features`] — multivariate polynomial feature expansion (linear +
//!   quadratic + pairwise interaction terms, the paper's MPR form);
//! * [`mb`] — PMC-free memory-boundness estimation from execution times
//!   sampled at two core frequencies (Eq. 3);
//! * [`perf`] — execution-time model under joint CPU/memory DVFS
//!   (Eqs. 1 and 2);
//! * [`power`] — CPU power model (Eq. 4) and memory power model (Eq. 5);
//! * [`synthetic`] — the 41 synthetic compute/memory-mix benchmarks (§4.1);
//! * [`profiler`] — platform characterization: run the synthetics at every
//!   configuration and collect time/power statistics;
//! * [`training`] — fit the per-`<TC,NC>` model coefficients (Fig. 4 flow);
//! * [`lookup`] — per-kernel prediction lookup tables (§5.1, §7.4);
//! * [`search`] — exhaustive and steepest-descent configuration selection
//!   (§5.2, Fig. 7);
//! * [`accuracy`] — model accuracy evaluation (Fig. 10).

pub mod accuracy;
pub mod features;
pub mod linalg;
pub mod lookup;
pub mod mb;
pub mod perf;
pub mod power;
pub mod profiler;
pub mod search;
pub mod synthetic;
pub mod training;

pub use accuracy::{accuracy, AccuracyStats};
pub use features::PolyBasis;
pub use lookup::{IdleTables, KernelTables, TcNcIndexer};
pub use mb::estimate_mb;
pub use perf::PerfModel;
pub use power::{CpuPowerModel, MemPowerModel};
pub use profiler::{ProfileRecord, Profiler};
pub use search::{
    constrained_search, exhaustive_search, fastest_config, steepest_descent_search,
    EnergyEstimator, Objective, SearchOutcome, SearchStats,
};
pub use synthetic::{synthetic_shapes, SyntheticBench};
pub use training::{ModelSet, TcNcModels, TrainingConfig};
