//! Minimal dense linear algebra for model fitting.
//!
//! The MPR models have at most ~10 coefficients, fitted over a few hundred
//! profiling samples, so ordinary least squares via the normal equations
//! with partial-pivot Gaussian elimination (plus a tiny ridge term for
//! numerical safety) is entirely sufficient — no external BLAS needed.

/// Solve the linear system `A x = b` in place via Gaussian elimination with
/// partial pivoting. `a` is row-major `n x n`. Returns `None` if singular.
pub fn solve_inplace(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n);
    for col in 0..n {
        // Pivot: largest magnitude in this column at or below the diagonal.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-14 {
            return None;
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            a[row * n + col] = 0.0;
            for k in (col + 1)..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back-substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

/// Ordinary least squares: find `beta` minimizing `||X beta - y||^2`.
///
/// `x` is row-major with `rows` rows of `cols` features each. A small ridge
/// term (relative to the Gram matrix trace) keeps near-collinear designs
/// solvable; the paper notes it deliberately avoids higher-degree terms for
/// the same conditioning reason.
pub fn least_squares(x: &[f64], y: &[f64], rows: usize, cols: usize) -> Option<Vec<f64>> {
    assert_eq!(x.len(), rows * cols);
    assert_eq!(y.len(), rows);
    if rows < cols {
        return None;
    }
    // Gram matrix G = X^T X and moment vector m = X^T y.
    let mut g = vec![0.0; cols * cols];
    let mut m = vec![0.0; cols];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        for i in 0..cols {
            m[i] += row[i] * y[r];
            for j in i..cols {
                g[i * cols + j] += row[i] * row[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..cols {
        for j in 0..i {
            g[i * cols + j] = g[j * cols + i];
        }
    }
    // Ridge: scaled to the average diagonal magnitude.
    let trace: f64 = (0..cols).map(|i| g[i * cols + i]).sum();
    let ridge = 1e-10 * (trace / cols as f64).max(1e-30);
    for i in 0..cols {
        g[i * cols + i] += ridge;
    }
    solve_inplace(&mut g, &mut m, cols)
}

/// Coefficient of determination R^2 of predictions vs observations.
pub fn r_squared(pred: &[f64], obs: &[f64]) -> f64 {
    assert_eq!(pred.len(), obs.len());
    let n = obs.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mean = obs.iter().sum::<f64>() / n;
    let ss_tot: f64 = obs.iter().map(|o| (o - mean) * (o - mean)).sum();
    let ss_res: f64 = pred.iter().zip(obs).map(|(p, o)| (p - o) * (p - o)).sum();
    if ss_tot <= 0.0 {
        return if ss_res <= 1e-30 { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = vec![1.0, 0.0, 0.0, 1.0];
        let mut b = vec![3.0, 4.0];
        let x = solve_inplace(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![5.0, 10.0];
        let x = solve_inplace(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        let x = solve_inplace(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(solve_inplace(&mut a, &mut b, 2).is_none());
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 2 + 3t sampled exactly.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let t = i as f64;
            x.extend_from_slice(&[1.0, t]);
            y.push(2.0 + 3.0 * t);
        }
        let beta = least_squares(&x, &y, 10, 2).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-8);
        assert!((beta[1] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn least_squares_recovers_quadratic_with_noise() {
        // y = 1 - 2t + 0.5t^2 + small deterministic "noise".
        let mut x = Vec::new();
        let mut y = Vec::new();
        let rows = 50;
        for i in 0..rows {
            let t = i as f64 / 10.0;
            x.extend_from_slice(&[1.0, t, t * t]);
            let noise = 1e-3 * ((i * 2654435761_usize) as f64 / usize::MAX as f64 - 0.5);
            y.push(1.0 - 2.0 * t + 0.5 * t * t + noise);
        }
        let beta = least_squares(&x, &y, rows, 3).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-2);
        assert!((beta[1] + 2.0).abs() < 1e-2);
        assert!((beta[2] - 0.5).abs() < 1e-2);
    }

    #[test]
    fn least_squares_underdetermined_rejected() {
        assert!(least_squares(&[1.0, 2.0], &[1.0], 1, 2).is_none());
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let obs = [1.0, 2.0, 3.0];
        assert!((r_squared(&obs, &obs) - 1.0).abs() < 1e-12);
        let mean_pred = [2.0, 2.0, 2.0];
        assert!(r_squared(&mean_pred, &obs).abs() < 1e-12);
    }
}
