//! Polynomial feature expansion for the MPR models.
//!
//! All three JOSS models share one regression form (paper Eqs. 2, 4, 5):
//! an intercept, linear terms, pure quadratic terms, and pairwise
//! interaction terms over the model's input variables:
//!
//! ```text
//! y = eps + sum_i beta_i x_i + sum_i beta_ii x_i^2 + sum_{i<k} beta_ik x_i x_k
//! ```
//!
//! The paper evaluated higher-degree expansions and found they overfit
//! (§4.3.3, "Modeling..."); we keep exactly this degree-2 basis.

use serde::{Deserialize, Serialize};

/// A degree-2 polynomial basis over `n_vars` variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolyBasis {
    /// Number of input variables.
    pub n_vars: usize,
}

impl PolyBasis {
    /// Basis over `n_vars` variables.
    pub fn new(n_vars: usize) -> Self {
        assert!(n_vars >= 1);
        PolyBasis { n_vars }
    }

    /// Number of expanded features: `1 + n + n + C(n,2)`.
    pub fn n_features(&self) -> usize {
        let n = self.n_vars;
        1 + 2 * n + n * (n - 1) / 2
    }

    /// Expand `vars` into the feature row, appending to `out`.
    pub fn expand_into(&self, vars: &[f64], out: &mut Vec<f64>) {
        assert_eq!(vars.len(), self.n_vars);
        out.push(1.0);
        out.extend_from_slice(vars);
        for &v in vars {
            out.push(v * v);
        }
        for i in 0..self.n_vars {
            for k in (i + 1)..self.n_vars {
                out.push(vars[i] * vars[k]);
            }
        }
    }

    /// Expand `vars` into a fresh feature row.
    pub fn expand(&self, vars: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_features());
        self.expand_into(vars, &mut out);
        out
    }

    /// Evaluate the polynomial with coefficient vector `beta` at `vars`
    /// without allocating.
    pub fn eval(&self, beta: &[f64], vars: &[f64]) -> f64 {
        debug_assert_eq!(beta.len(), self.n_features());
        debug_assert_eq!(vars.len(), self.n_vars);
        let n = self.n_vars;
        let mut acc = beta[0];
        for i in 0..n {
            acc += beta[1 + i] * vars[i];
        }
        for i in 0..n {
            acc += beta[1 + n + i] * vars[i] * vars[i];
        }
        let mut idx = 1 + 2 * n;
        for i in 0..n {
            for k in (i + 1)..n {
                acc += beta[idx] * vars[i] * vars[k];
                idx += 1;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_counts() {
        assert_eq!(PolyBasis::new(1).n_features(), 3); // 1, x, x^2
        assert_eq!(PolyBasis::new(2).n_features(), 6); // +interaction
        assert_eq!(PolyBasis::new(3).n_features(), 10);
    }

    #[test]
    fn expansion_order_two_vars() {
        let b = PolyBasis::new(2);
        let f = b.expand(&[2.0, 3.0]);
        assert_eq!(f, vec![1.0, 2.0, 3.0, 4.0, 9.0, 6.0]);
    }

    #[test]
    fn expansion_order_three_vars() {
        let b = PolyBasis::new(3);
        let f = b.expand(&[1.0, 2.0, 3.0]);
        assert_eq!(
            f,
            vec![1.0, 1.0, 2.0, 3.0, 1.0, 4.0, 9.0, 2.0, 3.0, 6.0],
            "intercept, linear, squares, interactions (12, 13, 23)"
        );
    }

    #[test]
    fn eval_matches_expand_dot() {
        let b = PolyBasis::new(3);
        let vars = [0.3, 1.7, 0.9];
        let beta: Vec<f64> = (0..b.n_features())
            .map(|i| (i as f64) * 0.1 - 0.4)
            .collect();
        let feats = b.expand(&vars);
        let dot: f64 = feats.iter().zip(&beta).map(|(f, c)| f * c).sum();
        assert!((b.eval(&beta, &vars) - dot).abs() < 1e-12);
    }
}
