//! SLU — Sparse LU factorization over a blocked matrix (Table 1).
//!
//! Four kernels on an N x N grid of 512 x 512 blocks: `lu0` (diagonal
//! factorization), `fwd` (forward solve along the pivot row), `bdiv`
//! (column solve), and `bmod` (trailing-submatrix update). At the paper's
//! configuration (N = 32) the DAG has 11 440 tasks, 91% of them `bmod` —
//! matching the §7.1 analysis.

use crate::Scale;
use joss_dag::{KernelSpec, TaskGraph, TaskGraphBuilder, TaskId};
use joss_platform::TaskShape;

/// Full-scale block-grid dimension (Table 1: "64 blocks" refers to the
/// per-dimension tiling of the sparse matrix; N = 32 reproduces both the
/// task count and the 91% bmod share).
const N_FULL: usize = 32;
/// Block size (512 x 512 doubles).
const BS: usize = 512;

fn grid_for(scale: Scale) -> usize {
    match scale {
        Scale::Full => N_FULL,
        Scale::Divided(d) => {
            // Task count scales ~ N^3/3: shrink N by the cube root.
            let n = (N_FULL as f64 / (d as f64).cbrt()).round() as usize;
            n.clamp(8, N_FULL)
        }
    }
}

/// Tasks generated for a grid dimension `n` (dense lower-right updates).
pub fn task_count(n: usize) -> usize {
    (0..n)
        .map(|k| 1 + 2 * (n - 1 - k) + (n - 1 - k) * (n - 1 - k))
        .sum()
}

/// Build the sparse-LU DAG.
pub fn sparselu(scale: Scale) -> TaskGraph {
    let n = grid_for(scale);
    let flop = (BS * BS * BS) as f64;
    let blk_bytes = (BS * BS * 8) as f64;
    let mut b = TaskGraphBuilder::new();
    let lu0 = b.add_kernel(
        KernelSpec::new(
            "lu0",
            TaskShape::new(2.0 / 3.0 * flop / 1e9, blk_bytes / 1e9),
        )
        .with_scalability(0.7),
    );
    let fwd = b.add_kernel(
        KernelSpec::new("fwd", TaskShape::new(flop / 1e9, 2.0 * blk_bytes / 1e9))
            .with_scalability(0.85),
    );
    let bdiv = b.add_kernel(
        KernelSpec::new("bdiv", TaskShape::new(flop / 1e9, 2.0 * blk_bytes / 1e9))
            .with_scalability(0.85),
    );
    let bmod = b.add_kernel(
        KernelSpec::new(
            "bmod",
            TaskShape::new(2.0 * flop / 1e9, 3.0 * blk_bytes / 1e9),
        )
        .with_scalability(0.95),
    );

    // Last writer of each block, for dependence tracking.
    let mut writer: Vec<Vec<Option<TaskId>>> = vec![vec![None; n]; n];
    for k in 0..n {
        let deps: Vec<TaskId> = writer[k][k].into_iter().collect();
        let lu = b.add_task(lu0, &deps).expect("valid");
        writer[k][k] = Some(lu);
        for slot in writer[k].iter_mut().skip(k + 1) {
            let mut deps = vec![lu];
            deps.extend(*slot);
            let t = b.add_task(fwd, &deps).expect("valid");
            *slot = Some(t);
        }
        for row in writer.iter_mut().skip(k + 1) {
            let mut deps = vec![lu];
            deps.extend(row[k]);
            let t = b.add_task(bdiv, &deps).expect("valid");
            row[k] = Some(t);
        }
        for i in (k + 1)..n {
            for j in (k + 1)..n {
                let mut deps = Vec::with_capacity(3);
                deps.extend(writer[i][k]); // bdiv result
                deps.extend(writer[k][j]); // fwd result
                deps.extend(writer[i][j]); // previous update of this block
                let t = b.add_task(bmod, &deps).expect("valid");
                writer[i][j] = Some(t);
            }
        }
    }
    b.build("SLU").expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        let g = sparselu(Scale::Full);
        assert_eq!(g.n_tasks(), task_count(N_FULL));
        // Table 1 reports 11 472; the dense-update grid gives 11 440 (0.3%).
        assert!((g.n_tasks() as i64 - 11_472).abs() < 50);
    }

    #[test]
    fn bmod_dominates_like_the_paper() {
        let g = sparselu(Scale::Full);
        let counts = g.tasks_per_kernel();
        let bmod_share = counts[3] as f64 / g.n_tasks() as f64;
        assert!(
            (bmod_share - 0.91).abs() < 0.01,
            "bmod share {bmod_share} vs paper's 91%"
        );
    }

    #[test]
    fn dag_is_valid_at_small_scale() {
        let g = sparselu(Scale::Divided(100));
        g.check_invariants().unwrap();
        assert_eq!(g.n_kernels(), 4);
        assert!(g.dop() > 1.5, "LU exposes wavefront parallelism");
    }

    #[test]
    fn bmod_is_compute_heavy() {
        let g = sparselu(Scale::Divided(100));
        let bmod = &g.kernels()[3];
        assert!(bmod.shape.ops_per_byte() > 10.0);
    }
}
