//! MM — Tiled matrix multiplication (Table 1, synthetic).
//!
//! Each task computes C = A x B on one N x N tile; the DAG is a bundle of
//! independent chains with configurable parallelism (`dop`). The paper's
//! canonical compute-bound workload.

use crate::Scale;
use joss_dag::{generators, KernelSpec, TaskGraph};
use joss_platform::TaskShape;

/// Full-scale task counts per tile size.
fn full_tasks(n: usize) -> usize {
    match n {
        256 => 10_000,
        512 => 2_000,
        _ => 4_000,
    }
}

/// Build the matrix-multiplication DAG for tile size `n` and parallelism
/// `dop`.
pub fn matmul(n: usize, dop: usize, scale: Scale) -> TaskGraph {
    assert!(n >= 16, "tile size too small");
    let work = 2.0 * (n * n * n) as f64 / 1e9;
    let bytes = 3.0 * (n * n * 8) as f64 / 1e9;
    let kernel = KernelSpec::new("mm_tile", TaskShape::new(work, bytes)).with_scalability(0.9);
    let tasks = scale.apply(full_tasks(n), 240).div_ceil(dop) * dop;
    let name = format!("MM_{n}_dop{dop}");
    generators::chain_bundle(&name, kernel, tasks, dop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        assert_eq!(matmul(256, 4, Scale::Full).n_tasks(), 10_000);
        assert_eq!(matmul(512, 16, Scale::Full).n_tasks(), 2_000);
    }

    #[test]
    fn dop_is_respected() {
        for dop in [1, 4, 16] {
            let g = matmul(256, dop, Scale::Divided(50));
            g.check_invariants().unwrap();
            assert!((g.dop() - dop as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn kernel_is_compute_bound() {
        let g = matmul(256, 4, Scale::Divided(50));
        assert!(g.kernels()[0].shape.ops_per_byte() > 20.0);
    }
}
