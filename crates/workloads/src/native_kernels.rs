//! Real numerical kernels for native (OS-thread) execution.
//!
//! The simulated platform executes task *shapes*; these are the matching
//! real implementations, used with the `joss-core` native executor to
//! validate the runtime's DAG machinery under genuine computation and
//! memory traffic. Each kernel mirrors one Table-1 benchmark's inner loop.

/// Tiled matrix multiply: `c += a * b` for `n x n` row-major tiles (the MM
/// kernel). Classic ikj loop order for cache-friendly streaming of `b`.
pub fn mm_tile(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            let brow = &b[k * n..(k + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// Streaming copy (the MC kernel): returns a checksum so the traffic cannot
/// be optimized away.
pub fn mc_copy(src: &[f64], dst: &mut [f64]) -> f64 {
    assert_eq!(src.len(), dst.len());
    let mut acc = 0.0;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s;
        acc += s;
    }
    acc
}

/// One 5-point Jacobi sweep over an `rows x cols` interior block with halo
/// rows (the HD jacobi kernel / ST update): reads `src`, writes `dst`.
pub fn jacobi_sweep(src: &[f64], dst: &mut [f64], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    for i in 1..rows.saturating_sub(1) {
        for j in 1..cols.saturating_sub(1) {
            dst[i * cols + j] = 0.25
                * (src[(i - 1) * cols + j]
                    + src[(i + 1) * cols + j]
                    + src[i * cols + j - 1]
                    + src[i * cols + j + 1]);
        }
    }
}

/// Blocked dot product (the DP kernel).
pub fn dot_block(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Sequential Fibonacci below the grain size (the FB leaf kernel).
pub fn fib_leaf(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_leaf(n - 1) + fib_leaf(n - 2)
    }
}

/// CSR sparse matrix-vector product (the AL spmv kernel).
///
/// `row_ptr` has `rows + 1` entries; `col_idx`/`values` hold the nonzeros.
pub fn spmv_csr(row_ptr: &[usize], col_idx: &[usize], values: &[f64], x: &[f64], y: &mut [f64]) {
    assert_eq!(row_ptr.len(), y.len() + 1);
    assert_eq!(col_idx.len(), values.len());
    for (i, out) in y.iter_mut().enumerate() {
        let mut acc = 0.0;
        for k in row_ptr[i]..row_ptr[i + 1] {
            acc += values[k] * x[col_idx[k]];
        }
        *out = acc;
    }
}

/// In-place LU factorization of a dense `n x n` block without pivoting (the
/// SLU lu0 kernel). Assumes a diagonally dominant block, as SparseLU
/// generators produce.
pub fn lu0(a: &mut [f64], n: usize) {
    assert_eq!(a.len(), n * n);
    for k in 0..n {
        let pivot = a[k * n + k];
        debug_assert!(pivot.abs() > 1e-12, "lu0 needs non-singular blocks");
        for i in (k + 1)..n {
            let factor = a[i * n + k] / pivot;
            a[i * n + k] = factor;
            for j in (k + 1)..n {
                a[i * n + j] -= factor * a[k * n + j];
            }
        }
    }
}

/// Trailing-submatrix update `c -= a * b` (the SLU bmod kernel).
pub fn bmod(a: &[f64], b: &[f64], c: &mut [f64], n: usize) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            let brow = &b[k * n..(k + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] -= aik * brow[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_tile_matches_naive() {
        let n = 8;
        let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i * 3) % 5) as f64).collect();
        let mut c = vec![0.0; n * n];
        mm_tile(&a, &b, &mut c, n);
        for i in 0..n {
            for j in 0..n {
                let expect: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                assert!((c[i * n + j] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn copy_checksums() {
        let src: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut dst = vec![0.0; 100];
        let sum = mc_copy(&src, &mut dst);
        assert_eq!(dst, src);
        assert!((sum - 4950.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_averages_neighbours() {
        let (rows, cols) = (4, 4);
        let src: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let mut dst = vec![0.0; 16];
        jacobi_sweep(&src, &mut dst, rows, cols);
        // Interior point (1,1): avg of (0,1)=1, (2,1)=9, (1,0)=4, (1,2)=6.
        assert!((dst[5] - 5.0).abs() < 1e-12);
        // Borders untouched.
        assert_eq!(dst[0], 0.0);
    }

    #[test]
    fn dot_block_is_exact() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![4.0, 5.0, 6.0];
        assert!((dot_block(&x, &y) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn fib_leaf_values() {
        assert_eq!(fib_leaf(0), 0);
        assert_eq!(fib_leaf(10), 55);
        assert_eq!(fib_leaf(20), 6765);
    }

    #[test]
    fn spmv_identity() {
        // 3x3 identity in CSR.
        let row_ptr = vec![0, 1, 2, 3];
        let col_idx = vec![0, 1, 2];
        let values = vec![1.0, 1.0, 1.0];
        let x = vec![7.0, -2.0, 0.5];
        let mut y = vec![0.0; 3];
        spmv_csr(&row_ptr, &col_idx, &values, &x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn lu0_reconstructs_matrix() {
        let n = 4;
        // Diagonally dominant block.
        let orig: Vec<f64> = (0..n * n)
            .map(|i| {
                let (r, c) = (i / n, i % n);
                if r == c {
                    10.0 + r as f64
                } else {
                    ((r * 3 + c) % 4) as f64 * 0.5
                }
            })
            .collect();
        let mut a = orig.clone();
        lu0(&mut a, n);
        // Rebuild A = L*U and compare.
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { a[i * n + k] };
                    let u = a[k * n + j];
                    if k < i && k > j {
                        continue;
                    }
                    acc += if k == i && k <= j {
                        u
                    } else if k < i && k <= j {
                        l * u
                    } else {
                        0.0
                    };
                }
                assert!(
                    (acc - orig[i * n + j]).abs() < 1e-9,
                    "A[{i}][{j}]: {acc} vs {}",
                    orig[i * n + j]
                );
            }
        }
    }

    #[test]
    fn bmod_subtracts_product() {
        let n = 4;
        let a: Vec<f64> = (0..n * n).map(|i| (i % 3) as f64).collect();
        let b: Vec<f64> = (0..n * n).map(|i| ((i + 1) % 4) as f64).collect();
        let mut c = vec![100.0; n * n];
        bmod(&a, &b, &mut c, n);
        for i in 0..n {
            for j in 0..n {
                let prod: f64 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                assert!((c[i * n + j] - (100.0 - prod)).abs() < 1e-9);
            }
        }
    }
}
