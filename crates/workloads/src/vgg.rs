//! VG — Darknet VGG-16 inference as a fork-join DAG (Table 1).
//!
//! A 16-layer network (13 convolutional + 3 fully-connected) on a 768 x 576
//! RGB image with block size 64, executed for 10 iterations. Each layer
//! fans out into tile tasks and joins before the next layer — the paper's
//! fork-join structure with 5 090 tasks.

use crate::Scale;
use joss_dag::{KernelSpec, TaskGraph, TaskGraphBuilder, TaskId};
use joss_platform::TaskShape;

/// Tile-task widths of the 13 convolutional layers (768/64 x 576/64 tiles,
/// halving with pooling).
const CONV_WIDTHS: [usize; 13] = [108, 108, 54, 54, 27, 27, 27, 14, 14, 14, 7, 7, 7];
/// Widths of the 3 fully-connected layers.
const FC_WIDTHS: [usize; 3] = [10, 10, 5];
/// Full-scale iterations.
const ITERS: usize = 10;

/// Build the VGG-16 inference DAG.
pub fn vgg(scale: Scale) -> TaskGraph {
    let iters = scale.apply(ITERS, 1);
    let mut b = TaskGraphBuilder::new();
    // Conv tile: 3x3 kernel over a 64x64 tile with ~64 channels:
    // ~2*64*64*9*64 = 4.7 Mflop; activations stream through.
    let conv =
        b.add_kernel(KernelSpec::new("conv", TaskShape::new(0.047, 0.0021)).with_scalability(0.9));
    // FC slice: matrix-vector product, weight-streaming (memory heavy).
    let fc =
        b.add_kernel(KernelSpec::new("fc", TaskShape::new(0.008, 0.016)).with_scalability(0.6));
    // Layer join/barrier.
    let join = b.add_kernel(KernelSpec::new("vgg_join", TaskShape::new(1e-5, 1e-6)).rigid());

    let mut barrier: Option<TaskId> = None;
    for _ in 0..iters {
        for (li, &w) in CONV_WIDTHS.iter().chain(FC_WIDTHS.iter()).enumerate() {
            let kernel = if li < CONV_WIDTHS.len() { conv } else { fc };
            let deps: Vec<TaskId> = barrier.into_iter().collect();
            let tiles: Vec<TaskId> = (0..w)
                .map(|_| b.add_task(kernel, &deps).expect("valid"))
                .collect();
            barrier = Some(b.add_task(join, &tiles).expect("valid"));
        }
    }
    b.build("VG").expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        let g = vgg(Scale::Full);
        // (493 tiles + 16 joins) x 10 iterations = 5 090.
        assert_eq!(g.n_tasks(), 5_090);
        assert_eq!(g.n_kernels(), 3);
    }

    #[test]
    fn layers_serialize() {
        let g = vgg(Scale::Divided(10));
        g.check_invariants().unwrap();
        // One iteration: 16 layers x 2 (tiles + join) on the critical path.
        assert_eq!(g.longest_path(), 32);
    }

    #[test]
    fn conv_is_compute_fc_is_memory() {
        let g = vgg(Scale::Divided(10));
        let conv = &g.kernels()[0];
        let fc = &g.kernels()[1];
        assert!(conv.shape.ops_per_byte() > 10.0);
        assert!(fc.shape.ops_per_byte() < 1.0);
    }
}
