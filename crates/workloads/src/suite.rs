//! The evaluation suites: the 21 benchmark instances of Fig. 8/9 and the
//! Table-1 inventory.

use crate::heat::HeatSize;
use crate::{alya, biomarker, dot, fib, heat, matcopy, matmul, sparselu, stencil, vgg, Scale};
use joss_dag::TaskGraph;

/// One benchmark instance of the evaluation.
#[derive(Debug, Clone)]
pub struct BenchInstance {
    /// Paper label (x-axis of Figs. 8 and 9).
    pub label: String,
    /// The task graph.
    pub graph: TaskGraph,
}

impl BenchInstance {
    fn new(graph: TaskGraph) -> Self {
        BenchInstance {
            label: graph.name().to_string(),
            graph,
        }
    }
}

/// The suite's per-instance constructors, in the paper's x-axis order.
/// Single source of truth for [`fig8_suite`] and [`fig8_bench`].
#[allow(clippy::type_complexity)]
fn fig8_builders() -> Vec<Box<dyn Fn(Scale) -> TaskGraph>> {
    let mut v: Vec<Box<dyn Fn(Scale) -> TaskGraph>> = vec![
        Box::new(|s| heat::heat(HeatSize::Small, s)),
        Box::new(|s| heat::heat(HeatSize::Big, s)),
        Box::new(|s| heat::heat(HeatSize::Huge, s)),
        Box::new(dot::dot),
        Box::new(fib::fib),
        Box::new(vgg::vgg),
        Box::new(biomarker::biomarker),
        Box::new(alya::alya),
        Box::new(sparselu::sparselu),
    ];
    for (n, dop) in [(256, 4), (256, 16), (512, 4), (512, 16)] {
        v.push(Box::new(move |s| matmul::matmul(n, dop, s)));
    }
    for (n, dop) in [(4096, 4), (4096, 16), (8192, 4), (8192, 16)] {
        v.push(Box::new(move |s| matcopy::matcopy(n, dop, s)));
    }
    for (n, dop) in [(512, 4), (512, 16), (2048, 4), (2048, 16)] {
        v.push(Box::new(move |s| stencil::stencil(n, dop, s)));
    }
    v
}

/// Minimum-size probe: every generator floors its task count, so this is
/// the cheapest scale a graph can be built at. Labels are scale-invariant,
/// which is what lets the probe stand in for label lookups.
const PROBE: Scale = Scale::Divided(u32::MAX);

/// The 21 benchmark instances of Fig. 8, in the paper's x-axis order.
pub fn fig8_suite(scale: Scale) -> Vec<BenchInstance> {
    fig8_builders()
        .iter()
        .map(|build| BenchInstance::new(build(scale)))
        .collect()
}

/// The 21 Fig. 8 labels in x-axis order, without building the suite at
/// any real scale (probe-size graphs only).
pub fn fig8_labels() -> Vec<String> {
    fig8_builders()
        .iter()
        .map(|build| build(PROBE).name().to_string())
        .collect()
}

/// Build only the instance with this label, without constructing the rest
/// of the suite at the requested scale — the serving hot path resolves
/// grids through this (a full-scale suite build is ~21 large graphs; a
/// grid usually wants a handful).
pub fn fig8_bench(label: &str, scale: Scale) -> Option<BenchInstance> {
    fig8_builders()
        .into_iter()
        .find_map(|build| (build(PROBE).name() == label).then(|| BenchInstance::new(build(scale))))
}

/// The Fig. 9 suite (same instances as Fig. 8).
pub fn fig9_suite(scale: Scale) -> Vec<BenchInstance> {
    fig8_suite(scale)
}

/// One row of the Table-1 inventory.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Abbreviation.
    pub abbr: &'static str,
    /// Description.
    pub description: &'static str,
    /// Input size string.
    pub input: &'static str,
    /// Full-scale task counts (as generated).
    pub tasks: Vec<usize>,
}

/// Number of Table-1 inventory rows.
pub const TABLE1_LEN: usize = 10;

/// The Table-1 inventory with generated full-scale task counts.
pub fn table1() -> Vec<Table1Row> {
    (0..TABLE1_LEN).map(table1_row).collect()
}

/// Build one Table-1 row (rows are independent, so callers may generate
/// them in parallel; full-scale DAG generation is the expensive part).
/// Panics if `i >= TABLE1_LEN`.
pub fn table1_row(i: usize) -> Table1Row {
    match i {
        0 => Table1Row {
            abbr: "HD",
            description: "Heat diffusion, iterative Jacobi (copy + jacobi kernels)",
            input: "2048 (small), 8192 (big), 16384 (huge)",
            tasks: vec![
                heat::heat(HeatSize::Small, Scale::Full).n_tasks(),
                heat::heat(HeatSize::Big, Scale::Full).n_tasks(),
                heat::heat(HeatSize::Huge, Scale::Full).n_tasks(),
            ],
        },
        1 => Table1Row {
            abbr: "DP",
            description: "Dot product over blocked vectors, 100 iterations",
            input: "VectorSize 6400000, BlockSize 32000",
            tasks: vec![dot::dot(Scale::Full).n_tasks()],
        },
        2 => Table1Row {
            abbr: "FB",
            description: "Fibonacci by recursion",
            input: "Term 55, GrainSize 34",
            tasks: vec![fib::fib(Scale::Full).n_tasks()],
        },
        3 => Table1Row {
            abbr: "VG",
            description: "Darknet VGG-16 CNN as fork-join DAG, 10 iterations",
            input: "768x576 RGB image, blocksize 64",
            tasks: vec![vgg::vgg(Scale::Full).n_tasks()],
        },
        4 => Table1Row {
            abbr: "BI",
            description: "Biomarker combinations for hip-infection prediction",
            input: "Sample Size 2",
            tasks: vec![biomarker::biomarker(Scale::Full).n_tasks()],
        },
        5 => Table1Row {
            abbr: "AL",
            description: "Alya computational mechanics (mesh partitioning)",
            input: "200K CSR non-zeros",
            tasks: vec![alya::alya(Scale::Full).n_tasks()],
        },
        6 => Table1Row {
            abbr: "SLU",
            description: "Sparse LU factorization (LU0, FWD, BDIV, BMOD)",
            input: "64 blocks, BlockSize 512",
            tasks: vec![sparselu::sparselu(Scale::Full).n_tasks()],
        },
        7 => Table1Row {
            abbr: "MM",
            description: "Tiled matrix multiplication (dop configurable)",
            input: "256x256, 512x512",
            tasks: vec![
                matmul::matmul(256, 4, Scale::Full).n_tasks(),
                matmul::matmul(512, 4, Scale::Full).n_tasks(),
            ],
        },
        8 => Table1Row {
            abbr: "MC",
            description: "Matrix copy, streaming main memory (dop configurable)",
            input: "4096x4096, 8192x8192",
            tasks: vec![
                matcopy::matcopy(4096, 4, Scale::Full).n_tasks(),
                matcopy::matcopy(8192, 4, Scale::Full).n_tasks(),
            ],
        },
        9 => Table1Row {
            abbr: "ST",
            description: "Stencil updates on a multi-dimensional grid (dop configurable)",
            input: "512x512, 2048x2048",
            tasks: vec![
                stencil::stencil(512, 4, Scale::Full).n_tasks(),
                stencil::stencil(2048, 4, Scale::Full).n_tasks(),
            ],
        },
        _ => panic!("table1_row index {i} out of range (len {TABLE1_LEN})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_21_instances_in_paper_order() {
        let suite = fig8_suite(Scale::Divided(200));
        assert_eq!(suite.len(), 21);
        assert_eq!(suite[0].label, "HT_Small");
        assert_eq!(suite[8].label, "SLU");
        assert_eq!(suite[20].label, "ST_2048_dop16");
        for b in &suite {
            b.graph.check_invariants().unwrap();
        }
    }

    #[test]
    fn table1_covers_all_ten_benchmarks() {
        let rows = table1();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| !r.tasks.is_empty()));
    }

    #[test]
    fn labels_are_scale_invariant_and_probe_enumerable() {
        let labels = fig8_labels();
        let suite: Vec<String> = fig8_suite(Scale::Divided(200))
            .into_iter()
            .map(|b| b.label)
            .collect();
        assert_eq!(labels, suite, "probe labels must match real-scale labels");
    }

    #[test]
    fn fig8_bench_builds_the_same_instance_as_the_suite() {
        let scale = Scale::Divided(200);
        let from_suite = fig8_suite(scale)
            .into_iter()
            .find(|b| b.label == "MM_256_dop4")
            .unwrap();
        let single = fig8_bench("MM_256_dop4", scale).expect("known label");
        assert_eq!(single.label, from_suite.label);
        assert_eq!(single.graph.n_tasks(), from_suite.graph.n_tasks());
        assert!(fig8_bench("NOPE", scale).is_none());
    }
}
