//! BI — Biomarker infection screening (Table 1).
//!
//! A medical use case (LEGaTO project): evaluate biomarker combinations to
//! differentiate periprosthetic hip infection from aseptic loosening. Each
//! combination's statistical evaluation is one independent task: a wide bag
//! of 6 217 identical mixed compute/memory tasks.

use crate::Scale;
use joss_dag::{generators, KernelSpec, TaskGraph};
use joss_platform::TaskShape;

/// Full-scale combination count.
const COMBOS: usize = 6_217;

/// Build the biomarker DAG.
pub fn biomarker(scale: Scale) -> TaskGraph {
    let n = scale.apply(COMBOS, 128);
    // Scoring one combination: moderate compute over a patient-sample table.
    let kernel = KernelSpec::new("combo", TaskShape::new(0.006, 0.0009)).with_scalability(0.7);
    generators::independent("BI", kernel, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        assert_eq!(biomarker(Scale::Full).n_tasks(), COMBOS);
    }

    #[test]
    fn all_tasks_independent() {
        let g = biomarker(Scale::Divided(100));
        g.check_invariants().unwrap();
        assert_eq!(g.longest_path(), 1);
        assert_eq!(g.roots().count(), g.n_tasks());
    }
}
