//! HD — Heat diffusion on a 2D grid (iterative Jacobi stencil, Table 1).
//!
//! Two kernels per iteration: `jacobi` (5-point update into a scratch grid)
//! and `copy` (scratch back to the main grid). The grid is row-partitioned
//! into 16 task blocks; a jacobi task depends on its own and neighbouring
//! copy tasks of the previous iteration (halo exchange).

use crate::Scale;
use joss_dag::{KernelSpec, TaskGraph, TaskGraphBuilder, TaskId};
use joss_platform::TaskShape;

/// Row-blocks per iteration (tasks per kernel per sweep).
const BLOCKS: usize = 16;

/// Problem sizes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeatSize {
    /// 2048 x 2048 grid, 320 032 tasks.
    Small,
    /// 8192 x 8192 grid, 32 032 tasks.
    Big,
    /// 16384 x 16384 grid, 16 032 tasks.
    Huge,
}

impl HeatSize {
    /// Grid dimension.
    pub fn n(self) -> usize {
        match self {
            HeatSize::Small => 2048,
            HeatSize::Big => 8192,
            HeatSize::Huge => 16384,
        }
    }

    /// Table-1 task count.
    pub fn full_tasks(self) -> usize {
        match self {
            HeatSize::Small => 320_032,
            HeatSize::Big => 32_032,
            HeatSize::Huge => 16_032,
        }
    }

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            HeatSize::Small => "HT_Small",
            HeatSize::Big => "HT_Big",
            HeatSize::Huge => "HT_Huge",
        }
    }
}

/// Build the heat-diffusion DAG.
pub fn heat(size: HeatSize, scale: Scale) -> TaskGraph {
    let n = size.n();
    let rows = n / BLOCKS;
    // Jacobi: 6 flops/point over an n x rows block; streams the block plus
    // halo in, scratch out.
    let jacobi_work = 6.0 * (n * rows) as f64 / 1e9;
    let jacobi_bytes = 2.0 * (n * rows * 8) as f64 / 1e9;
    // Copy: pure data movement.
    let copy_work = (n * rows) as f64 / 1e9;
    let copy_bytes = 2.0 * (n * rows * 8) as f64 / 1e9;

    let iters = scale.apply(size.full_tasks() / (2 * BLOCKS), 12);
    let mut b = TaskGraphBuilder::new();
    let jacobi = b.add_kernel(
        KernelSpec::new("jacobi", TaskShape::new(jacobi_work, jacobi_bytes)).with_scalability(0.85),
    );
    let copy = b.add_kernel(
        KernelSpec::new("copy", TaskShape::new(copy_work, copy_bytes)).with_scalability(0.5),
    );

    let mut prev_copy: Vec<Option<TaskId>> = vec![None; BLOCKS];
    for _ in 0..iters {
        let mut jac = Vec::with_capacity(BLOCKS);
        for blk in 0..BLOCKS {
            // Halo dependencies: own block plus neighbours from the previous
            // iteration's copies.
            let mut deps = Vec::new();
            for d in [-1isize, 0, 1] {
                let idx = blk as isize + d;
                if idx >= 0 && (idx as usize) < BLOCKS {
                    if let Some(t) = prev_copy[idx as usize] {
                        deps.push(t);
                    }
                }
            }
            jac.push(b.add_task(jacobi, &deps).expect("valid"));
        }
        for blk in 0..BLOCKS {
            let t = b.add_task(copy, &[jac[blk]]).expect("valid");
            prev_copy[blk] = Some(t);
        }
    }
    b.build(size.label()).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        // Iterations are rounded to whole sweeps; counts match Table 1 to
        // within one sweep (32 tasks).
        let g = heat(HeatSize::Big, Scale::Full);
        let diff = (g.n_tasks() as i64 - 32_032).abs();
        assert!(diff <= 32, "HT_Big task count {} vs 32032", g.n_tasks());
        assert_eq!(g.n_kernels(), 2);
    }

    #[test]
    fn structure_is_valid_and_iterative() {
        let g = heat(HeatSize::Small, Scale::Divided(1000));
        g.check_invariants().unwrap();
        // dop is bounded by the 16-block width (x2 kernels in flight).
        assert!(g.dop() <= 32.0 + 1e-9);
        assert!(g.dop() > 4.0, "halo structure should expose parallelism");
    }

    #[test]
    fn jacobi_is_more_compute_intense_than_copy() {
        let g = heat(HeatSize::Small, Scale::Divided(1000));
        let j = &g.kernels()[0];
        let c = &g.kernels()[1];
        assert!(j.shape.ops_per_byte() > c.shape.ops_per_byte());
    }
}
