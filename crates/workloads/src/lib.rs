//! # joss-workloads — the paper's benchmark suite (Table 1)
//!
//! Ten task-based benchmarks from the Edge and HPC domains, reproduced as
//! DAG generators with per-kernel computational shapes:
//!
//! | abbr | benchmark            | kernels                    | module |
//! |------|----------------------|----------------------------|--------|
//! | HD   | Heat diffusion       | copy, jacobi               | [`heat`] |
//! | DP   | Dot product          | dot_block, dot_reduce      | [`dot`] |
//! | FB   | Fibonacci            | fib                        | [`fib`] |
//! | VG   | Darknet VGG-16 CNN   | conv, pool, fc, join       | [`vgg`] |
//! | BI   | Biomarker infection  | combo                      | [`biomarker`] |
//! | AL   | Alya (PDE solver)    | spmv                       | [`alya`] |
//! | SLU  | Sparse LU            | lu0, fwd, bdiv, bmod       | [`sparselu`] |
//! | MM   | Matrix multiply      | mm_tile                    | [`matmul`] |
//! | MC   | Matrix copy          | mc_copy                    | [`matcopy`] |
//! | ST   | Stencil              | st_update                  | [`stencil`] |
//!
//! Task counts at [`Scale::Full`] match Table 1; [`Scale::Divided`] shrinks
//! iteration counts (not task shapes) for fast CI runs. Kernel shapes are
//! derived from the documented input sizes (operation counts and memory
//! traffic of the real numerical kernels), so compute/memory intensities —
//! the axis that drives every scheduling decision — match the real codes.

pub mod alya;
pub mod biomarker;
pub mod dot;
pub mod fib;
pub mod heat;
pub mod matcopy;
pub mod matmul;
pub mod native_kernels;
pub mod sparselu;
pub mod stencil;
pub mod suite;
pub mod vgg;

pub use suite::{fig8_bench, fig8_labels, fig8_suite, fig9_suite, BenchInstance};

use serde::{Deserialize, Serialize};

/// Workload scaling: full Table-1 task counts, or divided for fast runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Table-1 task counts.
    Full,
    /// Task counts divided by the factor (iterations shrink; kernel shapes
    /// and DAG structure are unchanged).
    Divided(u32),
}

impl Scale {
    /// Default test scale used by CI and Criterion benches.
    pub const TEST: Scale = Scale::Divided(100);

    /// Apply to a full-scale count, keeping at least `min`.
    pub fn apply(self, full: usize, min: usize) -> usize {
        match self {
            Scale::Full => full.max(min),
            Scale::Divided(d) => (full / d as usize).max(min),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_applies_with_floor() {
        assert_eq!(Scale::Full.apply(1000, 10), 1000);
        assert_eq!(Scale::Divided(100).apply(1000, 10), 10);
        assert_eq!(Scale::Divided(100).apply(50000, 10), 500);
        assert_eq!(Scale::Divided(7).apply(5, 3), 3);
    }
}
