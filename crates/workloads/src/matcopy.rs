//! MC — Matrix copy (Table 1, synthetic).
//!
//! Each task reads and writes a large matrix, streaming main memory
//! continuously: the paper's canonical memory-bound workload, again as a
//! chain bundle with configurable `dop`.

use crate::Scale;
use joss_dag::{generators, KernelSpec, TaskGraph};
use joss_platform::TaskShape;

/// Full-scale task counts per matrix size.
fn full_tasks(n: usize) -> usize {
    match n {
        4096 => 20_000,
        8192 => 10_000,
        _ => 10_000,
    }
}

/// Build the matrix-copy DAG for matrix dimension `n` and parallelism `dop`.
pub fn matcopy(n: usize, dop: usize, scale: Scale) -> TaskGraph {
    let bytes = 2.0 * (n * n * 8) as f64 / 1e9; // read + write
    let work = (n * n) as f64 / 1e9; // index arithmetic
    let kernel = KernelSpec::new("mc_copy", TaskShape::new(work, bytes)).with_scalability(0.5);
    let tasks = scale.apply(full_tasks(n), 240).div_ceil(dop) * dop;
    let name = format!("MC_{n}_dop{dop}");
    generators::chain_bundle(&name, kernel, tasks, dop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        assert_eq!(matcopy(4096, 4, Scale::Full).n_tasks(), 20_000);
        assert_eq!(matcopy(8192, 16, Scale::Full).n_tasks(), 10_000);
    }

    #[test]
    fn kernel_is_memory_bound() {
        let g = matcopy(4096, 4, Scale::Divided(50));
        g.check_invariants().unwrap();
        assert!(g.kernels()[0].shape.ops_per_byte() < 0.1);
    }
}
