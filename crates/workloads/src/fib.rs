//! FB — Fibonacci by recursive task spawning (BOTS-style, Table 1).
//!
//! Term 55 with grain size 34: recursion below the grain runs sequentially
//! inside a leaf task; interior tasks only join their two children. This
//! yields the paper's 57 314 tasks and a deep, irregular join tree with
//! dop far above the core count.

use crate::Scale;
use joss_dag::{KernelId, KernelSpec, TaskGraph, TaskGraphBuilder, TaskId};
use joss_platform::TaskShape;

/// Full-scale term.
const TERM: usize = 55;
/// Sequential grain: subtrees below this size are one leaf task.
const GRAIN: usize = 34;

/// Number of tasks the recursion generates for a term.
pub fn task_count(term: usize) -> usize {
    if term <= GRAIN {
        1
    } else {
        1 + task_count(term - 1) + task_count(term - 2)
    }
}

/// Pick the largest term whose task count fits the scale budget.
fn term_for(scale: Scale) -> usize {
    let budget = scale.apply(task_count(TERM), 400);
    let mut term = TERM;
    while term > GRAIN + 1 && task_count(term) > budget {
        term -= 1;
    }
    term
}

fn build_rec(b: &mut TaskGraphBuilder, kernel: KernelId, term: usize) -> TaskId {
    if term <= GRAIN {
        // Leaf: sequential fib(term) — full-weight task.
        b.add_task_scaled(kernel, 1.0, &[]).expect("valid")
    } else {
        let left = build_rec(b, kernel, term - 1);
        let right = build_rec(b, kernel, term - 2);
        // Interior: a join that just adds two numbers.
        b.add_task_scaled(kernel, 0.01, &[left, right])
            .expect("valid")
    }
}

/// Build the Fibonacci DAG.
pub fn fib(scale: Scale) -> TaskGraph {
    let mut b = TaskGraphBuilder::new();
    // A leaf computes fib(GRAIN-1) recursively: ~11M calls of a few ops.
    let kernel = b.add_kernel(KernelSpec::new("fib", TaskShape::new(0.012, 2e-5)).rigid());
    build_rec(&mut b, kernel, term_for(scale));
    b.build("FB").expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        // 2*fib(23) - 1 = 57 313; the paper reports 57 314.
        assert_eq!(task_count(TERM), 57_313);
    }

    #[test]
    fn dag_is_a_join_tree() {
        let g = fib(Scale::Divided(100));
        g.check_invariants().unwrap();
        // Every interior task has exactly two dependencies.
        let interior = g.indegrees().iter().filter(|&&d| d == 2).count();
        let leaves = g.indegrees().iter().filter(|&&d| d == 0).count();
        assert_eq!(interior + leaves, g.n_tasks());
        assert_eq!(leaves, interior + 1, "binary join tree property");
    }

    #[test]
    fn kernel_is_compute_bound_and_rigid() {
        let g = fib(Scale::Divided(100));
        let k = &g.kernels()[0];
        assert!(k.shape.ops_per_byte() > 100.0);
        assert_eq!(k.max_width, 1);
    }

    #[test]
    fn scaling_shrinks_term() {
        assert!(fib(Scale::Divided(100)).n_tasks() < fib(Scale::Divided(10)).n_tasks());
    }
}
