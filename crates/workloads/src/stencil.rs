//! ST — Multi-dimensional stencil updates (Table 1, synthetic).
//!
//! Each task repeatedly updates grid points from their neighbours: a mixed
//! compute/memory profile between MM and MC, as a chain bundle with
//! configurable `dop`.

use crate::Scale;
use joss_dag::{generators, KernelSpec, TaskGraph};
use joss_platform::TaskShape;

/// Full-scale task count (both paper sizes use 50 000 tasks).
const FULL_TASKS: usize = 50_000;
/// Update sweeps per task.
const SWEEPS: usize = 4;

/// Build the stencil DAG for grid dimension `n` and parallelism `dop`.
pub fn stencil(n: usize, dop: usize, scale: Scale) -> TaskGraph {
    let points = (n * n) as f64;
    let work = SWEEPS as f64 * 5.0 * points / 1e9; // 5-point updates
    let bytes = SWEEPS as f64 * 2.0 * points * 8.0 / 1e9;
    let kernel = KernelSpec::new("st_update", TaskShape::new(work, bytes)).with_scalability(0.8);
    let tasks = scale.apply(FULL_TASKS, 240).div_ceil(dop) * dop;
    let name = format!("ST_{n}_dop{dop}");
    generators::chain_bundle(&name, kernel, tasks, dop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        assert_eq!(stencil(512, 4, Scale::Full).n_tasks(), FULL_TASKS);
        assert_eq!(stencil(2048, 16, Scale::Full).n_tasks(), FULL_TASKS);
    }

    #[test]
    fn intensity_sits_between_mm_and_mc() {
        let st = stencil(512, 4, Scale::Divided(100));
        st.check_invariants().unwrap();
        let opb = st.kernels()[0].shape.ops_per_byte();
        assert!(opb > 0.1 && opb < 20.0, "stencil ops/byte {opb}");
    }
}
