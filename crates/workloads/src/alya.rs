//! AL — Alya computational-mechanics solver (Table 1).
//!
//! Alya solves complex PDEs with a mesh-partitioning parallelization: each
//! task assembles and relaxes one mesh partition (CSR sparse matrix-vector
//! work, 200 K nonzeros total) and iterations couple neighbouring
//! partitions. Fine-grained tasks — the workload that exercises JOSS's
//! task-coarsening path (§5.3).

use crate::Scale;
use joss_dag::{KernelSpec, TaskGraph, TaskGraphBuilder, TaskId};
use joss_platform::TaskShape;

/// Mesh partitions (tasks per iteration).
const PARTITIONS: usize = 32;
/// Full-scale iterations: 32 x 1495 = 47 840 tasks.
const ITERS: usize = 1_495;
/// CSR nonzeros per partition (200 K total / 32).
const NNZ: usize = 200_000 / PARTITIONS;

/// Build the Alya DAG.
pub fn alya(scale: Scale) -> TaskGraph {
    let iters = scale.apply(ITERS, 12);
    // SpMV + assembly per partition: ~4 flops/nnz, 12 bytes/nnz streamed.
    let work = 4.0 * NNZ as f64 / 1e9;
    let bytes = 12.0 * NNZ as f64 / 1e9;
    let mut b = TaskGraphBuilder::new();
    let spmv =
        b.add_kernel(KernelSpec::new("spmv", TaskShape::new(work, bytes)).with_scalability(0.6));

    let mut prev: Vec<Option<TaskId>> = vec![None; PARTITIONS];
    for _ in 0..iters {
        let mut cur = Vec::with_capacity(PARTITIONS);
        for p in 0..PARTITIONS {
            // Neighbour coupling across the partition ring.
            let mut deps = Vec::new();
            for d in [PARTITIONS - 1, 0, 1] {
                let idx = (p + d) % PARTITIONS;
                if let Some(t) = prev[idx] {
                    deps.push(t);
                }
            }
            cur.push(b.add_task(spmv, &deps).expect("valid"));
        }
        for (p, t) in cur.into_iter().enumerate() {
            prev[p] = Some(t);
        }
    }
    b.build("AY").expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        assert_eq!(alya(Scale::Full).n_tasks(), 47_840);
    }

    #[test]
    fn ring_coupling_is_valid() {
        let g = alya(Scale::Divided(100));
        g.check_invariants().unwrap();
        assert!(
            (g.dop() - PARTITIONS as f64).abs() < 2.0,
            "dop {} ~ partitions",
            g.dop()
        );
    }

    #[test]
    fn tasks_are_fine_grained() {
        let g = alya(Scale::Divided(100));
        let k = &g.kernels()[0];
        // Tiny tasks: tens of microseconds on the simulated platform.
        assert!(k.shape.work_gops < 0.001);
    }
}
