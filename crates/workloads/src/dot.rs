//! DP — Dot product of two partitioned vectors (Table 1).
//!
//! Vectors of 6 400 000 doubles are split into 32 000-element blocks; each
//! block's partial product is one task, followed by a tiny per-iteration
//! reduction. 100 iterations; the next iteration's blocks depend on the
//! previous reduction. Streaming and strongly memory-bound.

use crate::Scale;
use joss_dag::{KernelSpec, TaskGraph, TaskGraphBuilder, TaskId};
use joss_platform::TaskShape;

/// Blocks per iteration (6 400 000 / 32 000 = 200, plus one reduce ~= the
/// paper's 20 200 tasks over 100 iterations).
const BLOCKS: usize = 201;
/// Elements per block.
const BLOCK_ELEMS: usize = 32_000;
/// Full-scale iterations.
const ITERS: usize = 100;

/// Build the dot-product DAG.
pub fn dot(scale: Scale) -> TaskGraph {
    let work = 2.0 * BLOCK_ELEMS as f64 / 1e9;
    let bytes = 2.0 * (BLOCK_ELEMS * 8) as f64 / 1e9;
    let iters = scale.apply(ITERS, 3);

    let mut b = TaskGraphBuilder::new();
    let block = b.add_kernel(
        KernelSpec::new("dot_block", TaskShape::new(work, bytes)).with_scalability(0.4),
    );
    let reduce = b.add_kernel(
        KernelSpec::new("dot_reduce", TaskShape::new(BLOCKS as f64 / 1e9, 1e-6)).rigid(),
    );

    let mut prev_reduce: Option<TaskId> = None;
    for _ in 0..iters {
        let deps: Vec<TaskId> = prev_reduce.into_iter().collect();
        let blocks: Vec<TaskId> = (0..BLOCKS)
            .map(|_| b.add_task(block, &deps).expect("valid"))
            .collect();
        prev_reduce = Some(b.add_task(reduce, &blocks).expect("valid"));
    }
    b.build("DP").expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        let g = dot(Scale::Full);
        // 100 x (201 + 1) = 20 200.
        assert_eq!(g.n_tasks(), 20_200);
    }

    #[test]
    fn block_kernel_is_memory_bound() {
        let g = dot(Scale::Divided(50));
        g.check_invariants().unwrap();
        let blk = &g.kernels()[0];
        assert!(blk.shape.ops_per_byte() < 1.0, "dot product streams memory");
    }

    #[test]
    fn iterations_serialize_on_reduce() {
        let g = dot(Scale::Divided(50));
        let iters = g.n_tasks() / (BLOCKS + 1);
        assert_eq!(g.longest_path(), 2 * iters, "block -> reduce per iteration");
    }
}
