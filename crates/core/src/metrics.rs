//! Run reports: the measurement record of one application execution.

use crate::trace::ExecTrace;
use joss_platform::{EnergyAccount, KnobConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything measured about one run of a task graph under one scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Scheduler name.
    pub scheduler: String,
    /// Benchmark (graph) name.
    pub benchmark: String,
    /// Energy/makespan account (exact and sensor-sampled).
    pub energy: EnergyAccount,
    /// Number of completed tasks.
    pub tasks: usize,
    /// Tasks executed per core type: `[big, little]`.
    pub tasks_per_type: [usize; 2],
    /// Number of successful steals.
    pub steals: u64,
    /// Moldable tasks that ran out of gathering patience and launched with a
    /// degraded width (the §5.3 mold-timeout path).
    pub mold_timeouts: u64,
    /// DVFS transitions performed across all domains.
    pub dvfs_transitions: u64,
    /// DVFS requests that serialized behind an in-flight transition.
    pub dvfs_serialized: u64,
    /// Total task-execution seconds spent in sampling runs.
    pub sampling_time_s: f64,
    /// Sum of all task execution durations (for sampling-fraction math).
    pub total_task_time_s: f64,
    /// Configuration-search evaluations performed by the scheduler.
    pub search_evaluations: u64,
    /// Per-kernel configuration finally selected by the scheduler (empty for
    /// model-free schedulers). Keyed by kernel name.
    pub selected_configs: BTreeMap<String, KnobConfig>,
    /// Full execution trace, when recording was enabled in [`crate::engine::EngineConfig`].
    pub trace: Option<ExecTrace>,
}

impl RunReport {
    /// Total energy (CPU + memory), joules.
    pub fn total_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// Fraction of task execution time spent sampling (paper §5.1 reports
    /// 0.8% on average).
    pub fn sampling_fraction(&self) -> f64 {
        if self.total_task_time_s <= 0.0 {
            0.0
        } else {
            self.sampling_time_s / self.total_task_time_s
        }
    }

    /// One-line summary for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "{:<16} {:<14} E={:>9.3} J (cpu {:>8.3} + mem {:>8.3})  t={:>8.4} s  steals={} dvfs={} sampling={:.2}%",
            self.scheduler,
            self.benchmark,
            self.total_j(),
            self.energy.cpu_j,
            self.energy.mem_j,
            self.energy.makespan_s,
            self.steals,
            self.dvfs_transitions,
            100.0 * self.sampling_fraction()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            scheduler: "test".into(),
            benchmark: "bench".into(),
            energy: EnergyAccount {
                cpu_j: 10.0,
                mem_j: 5.0,
                cpu_sampled_j: 10.1,
                mem_sampled_j: 4.9,
                makespan_s: 2.0,
            },
            tasks: 100,
            tasks_per_type: [40, 60],
            steals: 7,
            mold_timeouts: 0,
            dvfs_transitions: 3,
            dvfs_serialized: 1,
            sampling_time_s: 0.01,
            total_task_time_s: 2.0,
            search_evaluations: 42,
            selected_configs: BTreeMap::new(),
            trace: None,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let r = report();
        assert!((r.total_j() - 15.0).abs() < 1e-12);
        assert!((r.sampling_fraction() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn zero_task_time_fraction_is_zero() {
        let mut r = report();
        r.total_task_time_s = 0.0;
        assert_eq!(r.sampling_fraction(), 0.0);
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = report().summary();
        assert!(s.contains("test"));
        assert!(s.contains("bench"));
        assert!(s.contains("15.000"));
    }
}
