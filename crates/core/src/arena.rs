//! The engine's struct-of-arrays task arena: every piece of per-run mutable
//! state the hot path touches, laid out as parallel arrays indexed by dense
//! ids, owned by one allocation-stable object that `Campaign` workers reuse
//! across runs (one arena per worker thread, not per spec).
//!
//! Three id spaces live here:
//!
//! * **queued-task slots** — a ready-but-not-running task is three small
//!   fields (`task`, `placement`, `pin_waits`) plus an intrusive `next`
//!   link; the per-core FIFO work queues are singly-linked index lists over
//!   these slots (`q_head`/`q_tail` per core), so enqueue, dispatch, and
//!   the steal scan move `u32` indices, never structs. Freed slots go on an
//!   internal free list and are recycled LIFO.
//! * **running slots** — the state of an in-flight task, split into
//!   parallel arrays (`run_*`) so the event loop's summations (rail dynamic
//!   power, DRAM-demand context) stream over dense `f64` arrays instead of
//!   striding through 150-byte structs. Slot ids are allocated LIFO from
//!   `free_slots`, growing only when no freed slot exists — the exact
//!   discipline of the previous `Vec<Option<Running>>`, which matters
//!   because float summations iterate *in slot order* and must reproduce
//!   the same rounding. [`EngineArena::reset`] truncates (rather than
//!   free-lists across runs) for the same reason: a reused arena assigns
//!   slot ids in exactly the order a fresh engine would.
//! * **cores** — the scheduler-visible mirrors (`queue_lens`, `core_busy`,
//!   `core_tc`) plus dispatch state (`core_running`, `core_reserved`),
//!   maintained by the queue/slot helpers so they can never drift from the
//!   linked structure itself. [`EngineArena::debug_validate`] re-derives
//!   and cross-checks all of it in debug builds.
//!
//! The event queue ([`CalendarQueue`](crate::equeue::CalendarQueue)) and
//! the scratch buffers PR 3 introduced (steal victims, member-core vectors,
//! timer commands, indegrees) live here too, so `SimEngine::run_with_arena`
//! performs no per-run allocation in steady state.

use crate::equeue::CalendarQueue;
use crate::placement::{FreqCommand, Placement};
use joss_dag::TaskId;
use joss_platform::{CoreType, FreqIndex, MachineModel, SimTime, TaskShape};

use crate::engine::Ev;

/// Null link / "no slot" sentinel for the `u32` index spaces.
pub(crate) const NIL: u32 = u32::MAX;

/// A ready task as handed around the dispatch path, materialized from the
/// queued-task SoA on dequeue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedTask {
    pub task: TaskId,
    pub placement: Placement,
    /// Times this item was held back waiting for a pinned-frequency
    /// transition (bounded to avoid ping-pong between conflicting pins).
    pub pin_waits: u8,
}

/// A moldable task gathering cores: the leader reserves itself and waits up
/// to the configured patience for same-type cores to join (XiTAO-style core
/// reservation); on timeout it starts with whatever width it has.
#[derive(Debug)]
pub(crate) struct WaitingMold {
    pub q: QueuedTask,
    pub tc: CoreType,
    pub need: usize,
    pub members: Vec<usize>,
    pub stolen: bool,
}

/// Reusable engine state: see the module docs. Opaque outside the crate —
/// create one with [`EngineArena::new`] (or `Default`) and hand it to
/// `SimEngine::run_with_arena`; the engine resets it at the start of every
/// run, so one arena may serve any sequence of runs.
#[derive(Debug, Default)]
pub struct EngineArena {
    // Queued-task SoA + intrusive links.
    q_task: Vec<TaskId>,
    q_place: Vec<Placement>,
    q_pin_waits: Vec<u8>,
    /// Next link: within a core's FIFO list, or within the free list.
    q_next: Vec<u32>,
    q_free_head: u32,
    q_free_len: usize,
    /// Per-core FIFO list heads/tails over the queued-task slots.
    q_head: Vec<u32>,
    q_tail: Vec<u32>,

    // Core state + scheduler-visible mirrors.
    pub(crate) core_tc: Vec<CoreType>,
    pub(crate) core_running: Vec<u32>,
    pub(crate) core_reserved: Vec<bool>,
    pub(crate) queue_lens: Vec<usize>,
    pub(crate) core_busy: Vec<bool>,
    /// Core indices per core type (ascending engine order), precomputed so
    /// typed placement never filters the core list.
    pub(crate) cores_of: [Vec<usize>; 2],

    // Running-slot SoA.
    pub(crate) run_live: Vec<bool>,
    pub(crate) run_task: Vec<TaskId>,
    pub(crate) run_shape: Vec<TaskShape>,
    pub(crate) run_tc: Vec<CoreType>,
    pub(crate) run_width: Vec<usize>,
    pub(crate) run_cores: Vec<Vec<usize>>,
    pub(crate) run_started: Vec<SimTime>,
    pub(crate) run_finish: Vec<SimTime>,
    /// Unique completion-event key; regenerated on install and every rescale.
    pub(crate) run_token: Vec<u64>,
    /// Number of mid-run DVFS rescales (perturbation marker).
    pub(crate) run_rescales: Vec<u32>,
    pub(crate) run_fc_start: Vec<FreqIndex>,
    pub(crate) run_fm_start: Vec<FreqIndex>,
    pub(crate) run_fc_cur: Vec<FreqIndex>,
    pub(crate) run_fm_cur: Vec<FreqIndex>,
    pub(crate) run_cpu_dyn_w: Vec<f64>,
    pub(crate) run_mem_dyn_w: Vec<f64>,
    /// DRAM bandwidth the slot's task consumes while running, GB/s.
    pub(crate) run_mem_demand: Vec<f64>,
    /// The `ExecContext::other_demand_gbs` the task launched under.
    pub(crate) run_other_demand: Vec<f64>,
    pub(crate) run_sampling: Vec<bool>,
    pub(crate) run_stolen: Vec<bool>,
    /// Freed running slots, recycled LIFO (matches the previous engine).
    pub(crate) free_slots: Vec<usize>,

    // Moldable tasks gathering cores (cold path; index-stable options).
    pub(crate) molds: Vec<Option<WaitingMold>>,

    /// The calendar event queue (see [`crate::equeue`]).
    pub(crate) events: CalendarQueue<Ev>,

    // Scratch reused across events and runs.
    pub(crate) steal_scratch: Vec<usize>,
    pub(crate) core_vec_pool: Vec<Vec<usize>>,
    pub(crate) timer_cmds: Vec<FreqCommand>,
    pub(crate) indegree: Vec<u32>,
    pub(crate) roots: Vec<TaskId>,
}

impl EngineArena {
    /// Empty arena; buffers grow on first use and persist across runs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewind to the state of a freshly built arena for `machine`, keeping
    /// every allocation. Truncates both id spaces to zero (see the module
    /// docs for why the free lists must not survive across runs).
    pub(crate) fn reset(&mut self, machine: &MachineModel) {
        self.q_task.clear();
        self.q_place.clear();
        self.q_pin_waits.clear();
        self.q_next.clear();
        self.q_free_head = NIL;
        self.q_free_len = 0;

        let n_big = machine.spec.cluster(CoreType::Big).n_cores;
        let n_little = machine.spec.cluster(CoreType::Little).n_cores;
        let n_cores = n_big + n_little;
        self.core_tc.clear();
        self.core_tc.resize(n_big, CoreType::Big);
        self.core_tc.resize(n_big + n_little, CoreType::Little);
        self.q_head.clear();
        self.q_head.resize(n_cores, NIL);
        self.q_tail.clear();
        self.q_tail.resize(n_cores, NIL);
        self.core_running.clear();
        self.core_running.resize(n_cores, NIL);
        self.core_reserved.clear();
        self.core_reserved.resize(n_cores, false);
        self.queue_lens.clear();
        self.queue_lens.resize(n_cores, 0);
        self.core_busy.clear();
        self.core_busy.resize(n_cores, false);
        self.cores_of[0].clear();
        self.cores_of[1].clear();
        for (i, &tc) in self.core_tc.iter().enumerate() {
            self.cores_of[tc.index()].push(i);
        }

        self.run_live.clear();
        self.run_task.clear();
        self.run_shape.clear();
        self.run_tc.clear();
        self.run_width.clear();
        for mut v in self.run_cores.drain(..) {
            // Salvage member-vector capacity into the pool; slots whose
            // vector was already recycled hold a capacity-less `Vec::new()`
            // not worth pooling.
            if v.capacity() > 0 {
                v.clear();
                self.core_vec_pool.push(v);
            }
        }
        self.run_started.clear();
        self.run_finish.clear();
        self.run_token.clear();
        self.run_rescales.clear();
        self.run_fc_start.clear();
        self.run_fm_start.clear();
        self.run_fc_cur.clear();
        self.run_fm_cur.clear();
        self.run_cpu_dyn_w.clear();
        self.run_mem_dyn_w.clear();
        self.run_mem_demand.clear();
        self.run_other_demand.clear();
        self.run_sampling.clear();
        self.run_stolen.clear();
        self.free_slots.clear();

        self.molds.clear();
        self.events.reset();
        self.steal_scratch.clear();
        self.timer_cmds.clear();
        self.indegree.clear();
        self.roots.clear();
    }

    // --- queued-task slots + per-core intrusive FIFO lists -------------

    fn qslot_alloc(&mut self, q: QueuedTask) -> u32 {
        if self.q_free_head != NIL {
            let id = self.q_free_head;
            let i = id as usize;
            self.q_free_head = self.q_next[i];
            self.q_free_len -= 1;
            self.q_task[i] = q.task;
            self.q_place[i] = q.placement;
            self.q_pin_waits[i] = q.pin_waits;
            self.q_next[i] = NIL;
            id
        } else {
            let id = self.q_task.len() as u32;
            self.q_task.push(q.task);
            self.q_place.push(q.placement);
            self.q_pin_waits.push(q.pin_waits);
            self.q_next.push(NIL);
            id
        }
    }

    /// Unlinked slot -> free list, returning its materialized contents.
    fn qslot_release(&mut self, id: u32) -> QueuedTask {
        let i = id as usize;
        let q = QueuedTask {
            task: self.q_task[i],
            placement: self.q_place[i],
            pin_waits: self.q_pin_waits[i],
        };
        self.q_next[i] = self.q_free_head;
        self.q_free_head = id;
        self.q_free_len += 1;
        q
    }

    // Every queue mutation goes through these helpers so the published
    // `queue_lens` mirror and the links can never drift apart.

    pub(crate) fn enqueue_back(&mut self, core: usize, q: QueuedTask) {
        let id = self.qslot_alloc(q);
        let tail = self.q_tail[core];
        if tail == NIL {
            self.q_head[core] = id;
        } else {
            self.q_next[tail as usize] = id;
        }
        self.q_tail[core] = id;
        self.queue_lens[core] += 1;
    }

    pub(crate) fn enqueue_front(&mut self, core: usize, q: QueuedTask) {
        let id = self.qslot_alloc(q);
        self.q_next[id as usize] = self.q_head[core];
        self.q_head[core] = id;
        if self.q_tail[core] == NIL {
            self.q_tail[core] = id;
        }
        self.queue_lens[core] += 1;
    }

    pub(crate) fn dequeue_front(&mut self, core: usize) -> Option<QueuedTask> {
        let id = self.q_head[core];
        if id == NIL {
            return None;
        }
        let next = self.q_next[id as usize];
        self.q_head[core] = next;
        if next == NIL {
            self.q_tail[core] = NIL;
        }
        self.queue_lens[core] -= 1;
        Some(self.qslot_release(id))
    }

    /// Steal scan over one victim's queue: unlink and return the **oldest**
    /// (FIFO order) item whose placement satisfies `pred` — the same item
    /// `queue.iter().position(pred)` + `remove(pos)` selected in the
    /// `VecDeque` engine, with the survivors' relative order preserved.
    pub(crate) fn dequeue_first_matching(
        &mut self,
        core: usize,
        mut pred: impl FnMut(&Placement) -> bool,
    ) -> Option<QueuedTask> {
        let mut prev = NIL;
        let mut cur = self.q_head[core];
        while cur != NIL {
            if pred(&self.q_place[cur as usize]) {
                let next = self.q_next[cur as usize];
                if prev == NIL {
                    self.q_head[core] = next;
                } else {
                    self.q_next[prev as usize] = next;
                }
                if next == NIL {
                    self.q_tail[core] = prev;
                }
                self.queue_lens[core] -= 1;
                return Some(self.qslot_release(cur));
            }
            prev = cur;
            cur = self.q_next[cur as usize];
        }
        None
    }

    // --- running slots --------------------------------------------------

    /// Claim a running slot: recycle LIFO, grow only when none are free —
    /// bit-for-bit the allocation discipline of the previous engine.
    pub(crate) fn alloc_run_slot(&mut self) -> usize {
        if let Some(slot) = self.free_slots.pop() {
            return slot;
        }
        let slot = self.run_live.len();
        self.run_live.push(false);
        self.run_task.push(TaskId(0));
        self.run_shape.push(TaskShape::new(0.0, 0.0));
        self.run_tc.push(CoreType::Big);
        self.run_width.push(0);
        self.run_cores.push(Vec::new());
        self.run_started.push(SimTime::ZERO);
        self.run_finish.push(SimTime::ZERO);
        self.run_token.push(0);
        self.run_rescales.push(0);
        self.run_fc_start.push(FreqIndex(0));
        self.run_fm_start.push(FreqIndex(0));
        self.run_fc_cur.push(FreqIndex(0));
        self.run_fm_cur.push(FreqIndex(0));
        self.run_cpu_dyn_w.push(0.0);
        self.run_mem_dyn_w.push(0.0);
        self.run_mem_demand.push(0.0);
        self.run_other_demand.push(0.0);
        self.run_sampling.push(false);
        self.run_stolen.push(false);
        slot
    }

    /// Take a member-core vector from the recycle pool (or allocate on a
    /// cold start). Returned vectors are empty.
    pub(crate) fn take_core_vec(&mut self) -> Vec<usize> {
        self.core_vec_pool.pop().unwrap_or_default()
    }

    /// Return a member-core vector to the pool once its task completed.
    pub(crate) fn recycle_core_vec(&mut self, mut v: Vec<usize>) {
        v.clear();
        self.core_vec_pool.push(v);
    }

    // --- invariant audit -------------------------------------------------

    /// Re-derive the arena's redundant state and assert it consistent:
    /// per-core link lists vs `queue_lens`/`q_tail`, the queued-slot free
    /// list vs the allocation count, core mirrors vs running slots, and the
    /// running-slot free list vs liveness. Called from the engine's event
    /// loop under `debug_assertions` (and from the behavior tests'
    /// auditor); release builds never pay for it.
    pub fn debug_validate(&self) {
        let n_slots = self.q_task.len();
        let mut linked = 0usize;
        for core in 0..self.core_tc.len() {
            let mut count = 0usize;
            let mut prev = NIL;
            let mut cur = self.q_head[core];
            while cur != NIL {
                assert!((cur as usize) < n_slots, "queue link out of bounds");
                count += 1;
                assert!(count <= n_slots, "queue link cycle on core {core}");
                prev = cur;
                cur = self.q_next[cur as usize];
            }
            assert_eq!(
                self.q_tail[core], prev,
                "tail link of core {core} out of sync"
            );
            assert_eq!(
                count, self.queue_lens[core],
                "queue_lens mirror of core {core} out of sync"
            );
            linked += count;
        }
        let mut free = 0usize;
        let mut cur = self.q_free_head;
        while cur != NIL {
            assert!((cur as usize) < n_slots, "free link out of bounds");
            free += 1;
            assert!(free <= n_slots, "free-list cycle");
            cur = self.q_next[cur as usize];
        }
        assert_eq!(free, self.q_free_len, "free-list length out of sync");
        assert_eq!(
            linked + free,
            n_slots,
            "every queued-task slot must be linked or free"
        );

        for c in 0..self.core_tc.len() {
            let running = self.core_running[c];
            assert_eq!(
                self.core_busy[c],
                running != NIL,
                "core_busy mirror of core {c} out of sync"
            );
            if running != NIL {
                let slot = running as usize;
                assert!(self.run_live[slot], "core {c} points at a dead slot");
                assert!(
                    self.run_cores[slot].contains(&c),
                    "slot {slot} does not list its core {c}"
                );
            }
        }
        for &slot in &self.free_slots {
            assert!(!self.run_live[slot], "live slot {slot} on the free list");
        }
        let live = self.run_live.iter().filter(|&&l| l).count();
        assert_eq!(
            live + self.free_slots.len(),
            self.run_live.len(),
            "running slots must be exactly live + free"
        );
    }
}
