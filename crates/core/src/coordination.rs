//! Frequency coordination for shared resources (paper §5.3).
//!
//! Cluster and memory frequencies are shared: concurrent tasks with
//! different frequency preferences would thrash the DVFS controllers
//! (serialization) and hurt each other. When concurrency is detected, JOSS
//! blends the incoming request with the resource's current setting. The
//! paper evaluated several blending heuristics and found the arithmetic mean
//! best; the alternatives are kept for the ablation benchmark.

use joss_platform::FreqIndex;
use serde::{Deserialize, Serialize};

/// How to blend a task's requested frequency with the current setting when
/// other tasks share the resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Coordination {
    /// Arithmetic mean of requested and current frequency (the paper's
    /// choice).
    Average,
    /// Keep the lower of the two.
    Min,
    /// Keep the higher of the two.
    Max,
    /// Weighted mean biased toward the current setting (weight = existing
    /// task count / (existing + 1)).
    Weighted,
    /// Ignore concurrency: always apply the request (no coordination).
    None,
}

impl Coordination {
    /// Blend `requested` with `current` given `others` concurrent tasks on
    /// the shared resource; returns the frequency index to program.
    ///
    /// `table` is the frequency ladder in GHz; blending happens in GHz and
    /// the result snaps to the nearest ladder entry.
    pub fn blend(
        self,
        requested: FreqIndex,
        current: FreqIndex,
        others: usize,
        table: &[f64],
    ) -> FreqIndex {
        if others == 0 || self == Coordination::None || requested == current {
            return requested;
        }
        let fr = table[requested.0];
        let fc = table[current.0];
        let target_ghz = match self {
            Coordination::Average => 0.5 * (fr + fc),
            Coordination::Min => fr.min(fc),
            Coordination::Max => fr.max(fc),
            Coordination::Weighted => {
                let w = others as f64 / (others as f64 + 1.0);
                w * fc + (1.0 - w) * fr
            }
            Coordination::None => unreachable!("handled above"),
        };
        nearest_index(target_ghz, table)
    }
}

/// Index of the ladder entry closest to `ghz` (ties resolve to the lower
/// frequency, favouring energy).
pub fn nearest_index(ghz: f64, table: &[f64]) -> FreqIndex {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &f) in table.iter().enumerate() {
        let d = (f - ghz).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    FreqIndex(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: [f64; 5] = [0.345, 0.652, 1.113, 1.574, 2.035];

    #[test]
    fn no_concurrency_applies_request() {
        for h in [Coordination::Average, Coordination::Min, Coordination::Max] {
            assert_eq!(h.blend(FreqIndex(0), FreqIndex(4), 0, &TABLE), FreqIndex(0));
        }
    }

    #[test]
    fn average_lands_between() {
        // avg(0.345, 2.035) = 1.19 -> nearest is 1.113 (index 2).
        let r = Coordination::Average.blend(FreqIndex(0), FreqIndex(4), 2, &TABLE);
        assert_eq!(r, FreqIndex(2));
    }

    #[test]
    fn min_and_max() {
        assert_eq!(
            Coordination::Min.blend(FreqIndex(1), FreqIndex(3), 1, &TABLE),
            FreqIndex(1)
        );
        assert_eq!(
            Coordination::Max.blend(FreqIndex(1), FreqIndex(3), 1, &TABLE),
            FreqIndex(3)
        );
    }

    #[test]
    fn weighted_leans_to_current_with_many_tasks() {
        // 9 others: target = 0.9*2.035 + 0.1*0.345 = 1.866 -> nearest 2.035.
        let r = Coordination::Weighted.blend(FreqIndex(0), FreqIndex(4), 9, &TABLE);
        assert_eq!(r, FreqIndex(4));
        // 1 other: target = mid -> index 2.
        let r1 = Coordination::Weighted.blend(FreqIndex(0), FreqIndex(4), 1, &TABLE);
        assert_eq!(r1, FreqIndex(2));
    }

    #[test]
    fn none_always_applies() {
        assert_eq!(
            Coordination::None.blend(FreqIndex(0), FreqIndex(4), 5, &TABLE),
            FreqIndex(0)
        );
    }

    #[test]
    fn same_request_is_identity() {
        assert_eq!(
            Coordination::Average.blend(FreqIndex(3), FreqIndex(3), 7, &TABLE),
            FreqIndex(3)
        );
    }

    #[test]
    fn nearest_index_snaps() {
        assert_eq!(nearest_index(0.0, &TABLE), FreqIndex(0));
        assert_eq!(nearest_index(1.2, &TABLE), FreqIndex(2));
        assert_eq!(nearest_index(5.0, &TABLE), FreqIndex(4));
    }
}
