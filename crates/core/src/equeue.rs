//! The engine's calendar event queue: a two-level bucket structure that
//! reproduces the pop order of a `BinaryHeap<Reverse<(SimTime, seq)>>`
//! exactly, while making the dominant event class — events scheduled *at
//! the current simulation time* — O(1) ring-buffer operations.
//!
//! # Ordering contract
//!
//! Events pop in ascending `(SimTime, push order)`: earliest timestamp
//! first, and **FIFO within an identical `SimTime`** — the event pushed
//! first pops first, regardless of its kind. This is precisely the order
//! the engine's previous `BinaryHeap<Reverse<Event>>` produced, where a
//! global push counter (`seq`) was the tie-break key; the golden-fixture
//! equivalence suite and a proptest (`tests/equeue_order.rs`) hold the two
//! implementations to byte-identical pop sequences, including bursts of
//! events sharing one timestamp.
//!
//! # Why a calendar beats a heap here
//!
//! A discrete-event simulator pops the earliest event and lets its handler
//! push follow-ups. In this engine most follow-ups are `Wake`s scheduled
//! at the *current* time (task became ready, core freed), so they land in
//! the bucket that is about to drain anyway. The queue therefore keeps:
//!
//! * a **current bucket**: a FIFO ring of events whose timestamp equals
//!   the watermark (the timestamp of the last pop). Push and pop are O(1)
//!   with no comparisons;
//! * a **future heap**: a conventional binary min-heap, keyed by
//!   `(SimTime, seq)`, holding everything scheduled strictly later.
//!
//! Correctness of the merged order rests on one invariant: a future-heap
//! entry with timestamp `T` was necessarily pushed while the watermark was
//! still `< T` (pushes at the watermark go to the current bucket), hence
//! *before* — in global push order — every current-bucket entry once the
//! watermark reaches `T`. So on pop: future entries at the watermark
//! drain first, then the current bucket in ring order, then the heap
//! advances the watermark.
//!
//! # Precondition
//!
//! Pushes must be **monotone**: `at` must not precede the watermark. Every
//! discrete-event engine satisfies this (handlers schedule at or after
//! "now"); it is `debug_assert`ed.

use joss_platform::SimTime;
use std::collections::VecDeque;

#[derive(Debug, Clone)]
struct FutureEntry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

/// Two-level calendar queue over [`SimTime`] with FIFO tie-break. See the
/// module docs for the ordering contract.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// Timestamp of the last pop (all queued events are `>=` this).
    watermark: SimTime,
    /// Global push counter for future entries (FIFO tie-break in the heap).
    seq: u64,
    /// Events with `at == watermark`, in push order.
    current: VecDeque<T>,
    /// Binary min-heap on `(at, seq)` of events with `at > watermark`.
    future: Vec<FutureEntry<T>>,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Empty queue with the watermark at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            watermark: SimTime::ZERO,
            seq: 0,
            current: VecDeque::new(),
            future: Vec::new(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.current.len() + self.future.len()
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty() && self.future.is_empty()
    }

    /// Timestamp of the last pop (time zero before any pop).
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// Drop all events and rewind the watermark to time zero, keeping the
    /// allocated capacity (the arena-reuse path).
    pub fn reset(&mut self) {
        self.watermark = SimTime::ZERO;
        self.seq = 0;
        self.current.clear();
        self.future.clear();
    }

    /// Schedule `item` at `at`. `at` must not precede the watermark.
    #[inline]
    pub fn push(&mut self, at: SimTime, item: T) {
        debug_assert!(
            at >= self.watermark,
            "calendar queue requires monotone pushes"
        );
        if at == self.watermark {
            self.current.push_back(item);
        } else {
            self.seq += 1;
            let entry = FutureEntry {
                at,
                seq: self.seq,
                item,
            };
            self.future.push(entry);
            self.sift_up(self.future.len() - 1);
        }
    }

    /// Pop the earliest event (FIFO among equals); advances the watermark.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        // Future entries already at the watermark pre-date (in push order)
        // everything in the current bucket — see the module docs.
        if let Some(top) = self.future.first() {
            if top.at == self.watermark {
                let e = self.heap_pop();
                return Some((e.at, e.item));
            }
        }
        if let Some(item) = self.current.pop_front() {
            return Some((self.watermark, item));
        }
        if self.future.is_empty() {
            return None;
        }
        let e = self.heap_pop();
        self.watermark = e.at;
        Some((e.at, e.item))
    }

    fn heap_pop(&mut self) -> FutureEntry<T> {
        let last = self.future.len() - 1;
        self.future.swap(0, last);
        let e = self.future.pop().expect("checked non-empty");
        if !self.future.is_empty() {
            self.sift_down(0);
        }
        e
    }

    #[inline]
    fn key(&self, i: usize) -> (SimTime, u64) {
        let e = &self.future[i];
        (e.at, e.seq)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.key(i) < self.key(parent) {
                self.future.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.future.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut best = i;
            if l < n && self.key(l) < self.key(best) {
                best = l;
            }
            if r < n && self.key(r) < self.key(best) {
                best = r;
            }
            if best == i {
                return;
            }
            self.future.swap(i, best);
            i = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(0), "a");
        q.push(SimTime(5), "d");
        q.push(SimTime(0), "b");
        q.push(SimTime(2), "c");
        q.push(SimTime(5), "e");
        let mut out = Vec::new();
        while let Some((at, x)) = q.pop() {
            out.push((at.0, x));
        }
        assert_eq!(out, vec![(0, "a"), (0, "b"), (2, "c"), (5, "d"), (5, "e")]);
    }

    #[test]
    fn future_entries_at_watermark_precede_current_bucket() {
        let mut q = CalendarQueue::new();
        // Two future events at t=3, then advance to t=3 by popping one and
        // push a same-time follow-up: the older future entry must win.
        q.push(SimTime(3), "first");
        q.push(SimTime(3), "second");
        assert_eq!(q.pop(), Some((SimTime(3), "first")));
        q.push(SimTime(3), "follow-up");
        assert_eq!(q.pop(), Some((SimTime(3), "second")));
        assert_eq!(q.pop(), Some((SimTime(3), "follow-up")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reset_rewinds_watermark_and_clears() {
        let mut q = CalendarQueue::new();
        q.push(SimTime(1), 1u32);
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.watermark(), SimTime::ZERO);
        q.push(SimTime::ZERO, 2u32); // watermark rewound: t=0 is legal again
        assert_eq!(q.pop(), Some((SimTime::ZERO, 2u32)));
    }

    #[test]
    fn interleaved_push_pop_matches_reference_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(SimTime, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = SimTime::ZERO;
        // Deterministic pseudo-random schedule of pushes and pops.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for i in 0..4000u32 {
            let r = next() % 10;
            if r < 6 {
                let dt = match next() % 3 {
                    0 => 0,
                    1 => next() % 3,
                    _ => next() % 1000,
                };
                let at = SimTime(now.0 + dt);
                seq += 1;
                q.push(at, i);
                heap.push(Reverse((at, seq, i)));
            } else {
                let got = q.pop();
                let want = heap.pop().map(|Reverse((at, _, x))| (at, x));
                assert_eq!(got, want, "divergence at step {i}");
                if let Some((at, _)) = got {
                    now = at;
                }
            }
        }
        loop {
            let got = q.pop();
            let want = heap.pop().map(|Reverse((at, _, x))| (at, x));
            assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
