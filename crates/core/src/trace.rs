//! Execution traces: record what the runtime did and export it for human
//! inspection.
//!
//! The recorder captures task execution intervals (per core, with kernel,
//! width and frequency context) and DVFS transitions, and can emit the
//! [Chrome trace-event format] consumed by `chrome://tracing`, Perfetto and
//! Speedscope — the view the paper's Fig. 6 timeline sketches.
//!
//! [Chrome trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use joss_dag::TaskId;
use joss_platform::{CoreType, FreqIndex};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One recorded task execution interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpan {
    /// The task.
    pub task: TaskId,
    /// Kernel name.
    pub kernel: String,
    /// Leader core id (engine numbering).
    pub core: usize,
    /// All participating cores (moldable width).
    pub cores: Vec<usize>,
    /// Core type.
    pub tc: CoreType,
    /// Start time, seconds.
    pub start_s: f64,
    /// End time, seconds.
    pub end_s: f64,
    /// Cluster frequency at start.
    pub fc: FreqIndex,
    /// Memory frequency at start.
    pub fm: FreqIndex,
    /// Whether this was a sampling run.
    pub sampling: bool,
}

/// One recorded DVFS transition taking effect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsSpan {
    /// Domain label index: 0 = big cluster, 1 = little cluster, 2 = memory.
    pub domain: usize,
    /// When the new frequency took effect, seconds.
    pub at_s: f64,
    /// The new frequency index.
    pub freq: FreqIndex,
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecTrace {
    /// Task execution intervals, in completion order.
    pub tasks: Vec<TaskSpan>,
    /// DVFS transitions, in effect order.
    pub dvfs: Vec<DvfsSpan>,
}

impl ExecTrace {
    /// Total busy time (sum of span durations x width), core-seconds.
    pub fn busy_core_seconds(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| (t.end_s - t.start_s) * t.cores.len() as f64)
            .sum()
    }

    /// Makespan covered by the trace, seconds.
    pub fn makespan_s(&self) -> f64 {
        self.tasks.iter().map(|t| t.end_s).fold(0.0, f64::max)
    }

    /// Average core utilization over `n_cores` cores.
    pub fn utilization(&self, n_cores: usize) -> f64 {
        let span = self.makespan_s();
        if span <= 0.0 {
            return 0.0;
        }
        self.busy_core_seconds() / (span * n_cores as f64)
    }

    /// Export in the Chrome trace-event JSON format. Each core is a "thread";
    /// task spans are complete events ("X"); DVFS transitions are instant
    /// events ("i") on a dedicated row.
    pub fn to_chrome_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for t in &self.tasks {
            for &core in &t.cores {
                if !first {
                    out.push(',');
                }
                first = false;
                write!(
                    out,
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                     \"pid\":0,\"tid\":{},\"args\":{{\"task\":{},\"width\":{},\"fc\":{},\"fm\":{},\
                     \"sampling\":{}}}}}",
                    esc(&t.kernel),
                    if t.sampling { "sampling" } else { "task" },
                    t.start_s * 1e6,
                    (t.end_s - t.start_s) * 1e6,
                    core,
                    t.task.0,
                    t.cores.len(),
                    t.fc.0,
                    t.fm.0,
                    t.sampling
                )
                .expect("write to string");
            }
        }
        for d in &self.dvfs {
            if !first {
                out.push(',');
            }
            first = false;
            let name = match d.domain {
                0 => "fC big",
                1 => "fC little",
                _ => "fM",
            };
            write!(
                out,
                "{{\"name\":\"{} -> {}\",\"cat\":\"dvfs\",\"ph\":\"i\",\"ts\":{:.3},\
                 \"pid\":0,\"tid\":100,\"s\":\"g\"}}",
                name,
                d.freq.0,
                d.at_s * 1e6
            )
            .expect("write to string");
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// A compact ASCII per-core timeline (for terminal inspection): one row
    /// per core, `width` columns spanning the makespan.
    pub fn ascii_timeline(&self, n_cores: usize, width: usize) -> String {
        let span = self.makespan_s().max(1e-12);
        let mut rows = vec![vec![' '; width]; n_cores];
        for t in &self.tasks {
            let c0 = ((t.start_s / span) * width as f64) as usize;
            let c1 = (((t.end_s / span) * width as f64) as usize).min(width.saturating_sub(1));
            let glyph = if t.sampling {
                's'
            } else {
                t.kernel.chars().next().unwrap_or('#')
            };
            for &core in &t.cores {
                if core < n_cores {
                    for cell in &mut rows[core][c0..=c1] {
                        *cell = glyph;
                    }
                }
            }
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            writeln!(out, "core {i}: {}", row.iter().collect::<String>()).expect("write");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ExecTrace {
        ExecTrace {
            tasks: vec![
                TaskSpan {
                    task: TaskId(0),
                    kernel: "mm".into(),
                    core: 0,
                    cores: vec![0, 1],
                    tc: CoreType::Big,
                    start_s: 0.0,
                    end_s: 0.5,
                    fc: FreqIndex(4),
                    fm: FreqIndex(2),
                    sampling: false,
                },
                TaskSpan {
                    task: TaskId(1),
                    kernel: "mm".into(),
                    core: 2,
                    cores: vec![2],
                    tc: CoreType::Little,
                    start_s: 0.25,
                    end_s: 1.0,
                    fc: FreqIndex(4),
                    fm: FreqIndex(2),
                    sampling: true,
                },
            ],
            dvfs: vec![DvfsSpan {
                domain: 2,
                at_s: 0.3,
                freq: FreqIndex(0),
            }],
        }
    }

    #[test]
    fn aggregates() {
        let t = trace();
        assert!((t.makespan_s() - 1.0).abs() < 1e-12);
        assert!((t.busy_core_seconds() - (0.5 * 2.0 + 0.75)).abs() < 1e-12);
        let u = t.utilization(6);
        assert!(u > 0.29 && u < 0.30, "utilization {u}");
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let json = trace().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
        // Two cores for the moldable task + one for the single + one dvfs.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert!(json.contains("\"cat\":\"sampling\""));
        // Balanced braces (cheap well-formedness check without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn ascii_timeline_shows_busy_cores() {
        let a = trace().ascii_timeline(3, 20);
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('m'), "core 0 ran mm: {}", lines[0]);
        assert!(
            lines[2].contains('s'),
            "core 2 ran a sampling task: {}",
            lines[2]
        );
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = ExecTrace::default();
        assert_eq!(t.makespan_s(), 0.0);
        assert_eq!(t.utilization(6), 0.0);
        assert!(t.to_chrome_json().contains("traceEvents"));
    }
}
