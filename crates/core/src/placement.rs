//! Scheduler decision types: placements, frequency requests, and the
//! measured samples fed back to schedulers.

use joss_dag::{KernelId, TaskId};
use joss_platform::{CoreType, FreqIndex};
use serde::{Deserialize, Serialize};

/// Where and how a ready task should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Core type to run on; `None` lets the task run (and be stolen) anywhere
    /// — the GRWS behaviour.
    pub tc: Option<CoreType>,
    /// Desired moldable width (number of cores). The engine recruits up to
    /// this many idle cores of the chosen type at start time; execution
    /// degrades gracefully to fewer cores when none are idle.
    pub width: usize,
    /// Frequencies to request when the task starts: `(fC, fM)`.
    /// `None` leaves the current settings untouched.
    pub freq: Option<(FreqIndex, FreqIndex)>,
    /// Whether the frequency request participates in the coordination
    /// heuristic (§5.3). Sampling runs pin frequencies exactly and set this
    /// to `false`.
    pub coordinate: bool,
}

impl Placement {
    /// GRWS-style placement: any single core, frequencies untouched.
    pub fn anywhere() -> Self {
        Placement {
            tc: None,
            width: 1,
            freq: None,
            coordinate: true,
        }
    }

    /// Typed placement without frequency throttling.
    pub fn on(tc: CoreType, width: usize) -> Self {
        Placement {
            tc: Some(tc),
            width,
            freq: None,
            coordinate: true,
        }
    }

    /// Typed placement with a coordinated frequency request.
    pub fn throttled(tc: CoreType, width: usize, fc: FreqIndex, fm: FreqIndex) -> Self {
        Placement {
            tc: Some(tc),
            width,
            freq: Some((fc, fm)),
            coordinate: true,
        }
    }

    /// Sampling placement: pinned frequencies, no coordination.
    pub fn pinned(tc: CoreType, width: usize, fc: FreqIndex, fm: FreqIndex) -> Self {
        Placement {
            tc: Some(tc),
            width,
            freq: Some((fc, fm)),
            coordinate: false,
        }
    }
}

/// A frequency command issued outside task placement (e.g. Aequitas'
/// time-sliced cluster throttling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FreqCommand {
    /// Set a CPU cluster frequency.
    Cluster(CoreType, FreqIndex),
    /// Set the memory frequency.
    Memory(FreqIndex),
}

/// What the runtime measured about one completed task — everything a
/// scheduler may learn from (no oracle access).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutedSample {
    /// The completed task.
    pub task: TaskId,
    /// Its kernel.
    pub kernel: KernelId,
    /// Core type it ran on.
    pub tc: CoreType,
    /// Achieved moldable width.
    pub width: usize,
    /// Cluster frequency when the task started.
    pub fc_start: FreqIndex,
    /// Memory frequency when the task started.
    pub fm_start: FreqIndex,
    /// Cluster frequency when the task finished (differs from `fc_start` if
    /// a DVFS transition landed mid-run — such samples are "dirty" for MB
    /// estimation).
    pub fc_end: FreqIndex,
    /// Memory frequency when the task finished.
    pub fm_end: FreqIndex,
    /// Measured execution time, seconds.
    pub duration_s: f64,
    /// Start timestamp, seconds.
    pub started_s: f64,
    /// Whether the executing core stole the task from another queue.
    pub stolen: bool,
    /// Whether any DVFS transition landed mid-run (even if the start and end
    /// frequencies happen to match, the measurement is contaminated).
    pub perturbed: bool,
    /// Size scale of the task relative to the kernel's unit shape; samplers
    /// normalize measured durations by this so that differently sized
    /// invocations of one kernel stay comparable.
    pub scale: f64,
}

impl ExecutedSample {
    /// True when no DVFS transition disturbed the measurement.
    pub fn is_clean(&self) -> bool {
        !self.perturbed && self.fc_start == self.fc_end && self.fm_start == self.fm_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_flags() {
        let p = Placement::anywhere();
        assert_eq!(p.tc, None);
        assert_eq!(p.width, 1);
        assert!(p.coordinate);

        let s = Placement::pinned(CoreType::Big, 2, FreqIndex(1), FreqIndex(0));
        assert!(!s.coordinate);
        assert_eq!(s.freq, Some((FreqIndex(1), FreqIndex(0))));

        let t = Placement::throttled(CoreType::Little, 4, FreqIndex(2), FreqIndex(1));
        assert!(t.coordinate);
        assert_eq!(t.tc, Some(CoreType::Little));
    }

    #[test]
    fn clean_sample_detection() {
        let mut s = ExecutedSample {
            task: TaskId(0),
            kernel: KernelId(0),
            tc: CoreType::Big,
            width: 1,
            fc_start: FreqIndex(4),
            fm_start: FreqIndex(2),
            fc_end: FreqIndex(4),
            fm_end: FreqIndex(2),
            duration_s: 0.01,
            started_s: 0.0,
            stolen: false,
            perturbed: false,
            scale: 1.0,
        };
        assert!(s.is_clean());
        s.fc_end = FreqIndex(3);
        assert!(!s.is_clean());
        s.fc_end = s.fc_start;
        s.perturbed = true;
        assert!(
            !s.is_clean(),
            "mid-run transitions contaminate even matching endpoints"
        );
    }
}
