//! A real multithreaded work-stealing executor.
//!
//! The simulation engine executes DAGs in virtual time for controlled energy
//! experiments; this module is the complementary proof that the runtime's
//! task/DAG machinery works on actual OS threads. It implements the classic
//! work-stealing loop (local deque, global injector, random-victim stealing
//! — the GRWS baseline of the paper) with dependency counting, and executes
//! a user-supplied closure for every task.
//!
//! No DVFS is exercised here: commodity hosts expose neither a memory-DVFS
//! knob nor per-rail power telemetry, which is exactly why the experiments
//! run on the simulated platform (see DESIGN.md).

use crossbeam::deque::{Injector, Stealer, Worker};
use joss_dag::{TaskGraph, TaskId};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::Instant;

/// Outcome of a native DAG execution.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeStats {
    /// Tasks executed per worker.
    pub per_worker: Vec<usize>,
    /// Successful steals per worker.
    pub steals: Vec<usize>,
    /// Wall-clock execution time, seconds.
    pub wall_s: f64,
}

impl NativeStats {
    /// Total executed tasks.
    pub fn total_tasks(&self) -> usize {
        self.per_worker.iter().sum()
    }
}

/// Work-stealing executor over OS threads.
#[derive(Debug, Clone)]
pub struct NativeExecutor {
    n_workers: usize,
}

impl NativeExecutor {
    /// New executor with `n_workers` threads (>= 1).
    pub fn new(n_workers: usize) -> Self {
        assert!(n_workers >= 1);
        NativeExecutor { n_workers }
    }

    /// Execute every task of `graph` exactly once, respecting dependencies.
    /// `work` runs on worker threads and must be thread-safe.
    pub fn execute<F>(&self, graph: &TaskGraph, work: F) -> NativeStats
    where
        F: Fn(TaskId) + Sync,
    {
        let n = graph.n_tasks();
        let indegree: Vec<AtomicU32> = graph
            .indegrees()
            .iter()
            .map(|&d| AtomicU32::new(d))
            .collect();
        let completed = AtomicUsize::new(0);
        let injector = Injector::new();
        for t in graph.roots() {
            injector.push(t);
        }

        let workers: Vec<Worker<TaskId>> =
            (0..self.n_workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<TaskId>> = workers.iter().map(|w| w.stealer()).collect();
        let start = Instant::now();

        let mut per_worker = vec![0usize; self.n_workers];
        let mut steals = vec![0usize; self.n_workers];

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (wid, local) in workers.into_iter().enumerate() {
                let injector = &injector;
                let stealers = &stealers;
                let indegree = &indegree;
                let completed = &completed;
                let work = &work;
                handles.push(scope.spawn(move || {
                    let mut executed = 0usize;
                    let mut stolen = 0usize;
                    let mut spins = 0u32;
                    loop {
                        let task = local.pop().or_else(|| {
                            // Global queue first, then other workers.
                            std::iter::repeat_with(|| injector.steal_batch_and_pop(&local))
                                .find(|s| !s.is_retry())
                                .and_then(|s| s.success())
                                .or_else(|| {
                                    for (vid, st) in stealers.iter().enumerate() {
                                        if vid == wid {
                                            continue;
                                        }
                                        loop {
                                            match st.steal() {
                                                crossbeam::deque::Steal::Success(t) => {
                                                    stolen += 1;
                                                    return Some(t);
                                                }
                                                crossbeam::deque::Steal::Retry => continue,
                                                crossbeam::deque::Steal::Empty => break,
                                            }
                                        }
                                    }
                                    None
                                })
                        });
                        match task {
                            Some(t) => {
                                spins = 0;
                                work(t);
                                for &s in graph.successors(t) {
                                    if indegree[s.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                                        local.push(s);
                                    }
                                }
                                executed += 1;
                                completed.fetch_add(1, Ordering::Release);
                            }
                            None => {
                                if completed.load(Ordering::Acquire) >= n {
                                    break;
                                }
                                // Exponential backoff before re-probing.
                                spins = (spins + 1).min(10);
                                if spins > 6 {
                                    std::thread::yield_now();
                                } else {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                    (wid, executed, stolen)
                }));
            }
            for h in handles {
                let (wid, executed, stolen) = h.join().expect("worker panicked");
                per_worker[wid] = executed;
                steals[wid] = stolen;
            }
        });

        NativeStats {
            per_worker,
            steals,
            wall_s: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joss_dag::{generators, KernelSpec};
    use joss_platform::TaskShape;
    use std::sync::atomic::AtomicU64;

    fn kernel() -> KernelSpec {
        KernelSpec::new("k", TaskShape::new(0.001, 0.0))
    }

    #[test]
    fn executes_every_task_once() {
        let g = generators::random_layered("r", kernel(), 20, 8, 7);
        let n = g.n_tasks();
        let counter = AtomicU64::new(0);
        let stats = NativeExecutor::new(4).execute(&g, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed) as usize, n);
        assert_eq!(stats.total_tasks(), n);
    }

    #[test]
    fn respects_dependency_order() {
        // A chain must execute strictly in order regardless of worker count.
        let g = generators::chain("c", kernel(), 50);
        let order = parking_lot::Mutex::new(Vec::new());
        NativeExecutor::new(4).execute(&g, |t| {
            order.lock().push(t.0);
        });
        let order = order.into_inner();
        assert_eq!(order.len(), 50);
        assert!(
            order.windows(2).all(|w| w[0] < w[1]),
            "chain executed out of order"
        );
    }

    #[test]
    fn parallel_workers_share_independent_load() {
        let g = generators::independent("i", kernel(), 1000);
        let stats = NativeExecutor::new(4).execute(&g, |_| {
            // Enough work per task (~10 us) that workers spin up before the
            // first worker drains the whole injector.
            std::hint::black_box((0..50_000u64).fold(0u64, |a, b| a.wrapping_add(b * b)));
        });
        assert_eq!(stats.total_tasks(), 1000);
        // With 1000 independent tasks, at least two workers should get work —
        // but only when the host can actually run two workers at once. On a
        // single-CPU machine the first worker routinely drains the whole
        // injector before the OS ever schedules a second one.
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let active = stats.per_worker.iter().filter(|&&c| c > 0).count();
        let want = if host_cores >= 2 { 2 } else { 1 };
        assert!(
            active >= want,
            "stealing failed to spread load: {:?}",
            stats.per_worker
        );
    }

    #[test]
    fn single_worker_works() {
        let g = generators::fork_join("fj", &[kernel()], kernel(), 4, 8);
        let stats = NativeExecutor::new(1).execute(&g, |_| {});
        assert_eq!(stats.total_tasks(), g.n_tasks());
        assert_eq!(stats.steals.iter().sum::<usize>(), 0);
    }
}
