//! The discrete-event execution engine: XiTAO-like task runtime over the
//! simulated platform.
//!
//! The engine owns per-core work queues, work stealing, moldable execution
//! (paper §5.3), the DVFS controllers, and exact power/energy accounting. A
//! [`Scheduler`](crate::sched::Scheduler) makes the policy decisions; the
//! engine provides the mechanisms:
//!
//! * ready tasks are placed in the work queue of a (randomly chosen) core of
//!   the scheduler-selected type, and may be stolen by other cores of a
//!   compatible type for load balancing;
//! * a moldable task (width > 1) recruits idle cores of the same type at
//!   start time and partitions its work across them; the last partition to
//!   finish completes the task and wakes dependents;
//! * frequency requests pass through the coordination heuristic when other
//!   tasks share the domain, then go to the (serializing) DVFS controllers;
//! * a DVFS transition landing mid-task rescales the remaining execution
//!   time of every affected task and updates its power draw;
//! * rail powers are piecewise-constant between events and integrated
//!   exactly; the INA3221-style sensor samples them every 5 ms in parallel.
//!
//! Hot-path layout (see `docs/ENGINE.md` for the full story): all per-run
//! mutable state lives in an [`EngineArena`] — struct-of-arrays task and
//! slot storage with intrusive per-core queues — events flow through a
//! [`CalendarQueue`](crate::equeue::CalendarQueue) that reproduces the
//! `(time, push order)` pop order of a binary heap, and idle rail power
//! comes from precomputed [`PowerTables`]. All of it is bit-exact against
//! the pre-arena engine: the golden-fixture suite in
//! `crates/sweep/tests/engine_equivalence.rs` is the gate.

use crate::arena::{EngineArena, QueuedTask, WaitingMold, NIL};
use crate::coordination::Coordination;
use crate::metrics::RunReport;
use crate::placement::{ExecutedSample, FreqCommand};
use crate::sched::{SchedCtx, Scheduler};
use crate::trace::{DvfsSpan, ExecTrace, TaskSpan};
use joss_dag::{TaskGraph, TaskId};
use joss_platform::{
    ConfigSpace, CoreType, Duration, DvfsController, DvfsDomain, EnergyAccount, ExecContext,
    FreqIndex, MachineModel, PowerSensor, PowerTables, PowerTrace, SimTime,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// RNG seed for core selection and steal-victim order.
    pub seed: u64,
    /// Frequency coordination heuristic (paper uses the arithmetic mean).
    pub coordination: Coordination,
    /// How long a moldable task waits for same-type cores to free up before
    /// starting with a degraded width, microseconds.
    pub mold_patience_us: u64,
    /// Record a full execution trace (task spans + DVFS transitions) into
    /// the run report.
    ///
    /// **Off by default, and keep it off for batch runs**: the trace holds
    /// one span per task, so memory grows linearly with task count (a
    /// full-scale FB run is ~57k spans), and it lives inside the returned
    /// [`RunReport`] for as long as the report does. Campaign executors
    /// (`joss-sweep`) hold every report of a grid in memory at once, so
    /// they force this off unless a spec opts in per-run.
    pub record_trace: bool,
    /// Deadlock/livelock guard: abort if virtual time exceeds this.
    pub max_virtual_time_s: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0xC0FFEE,
            coordination: Coordination::Average,
            mold_patience_us: 500,
            record_trace: false,
            max_virtual_time_s: 1.0e6,
        }
    }
}

impl EngineConfig {
    /// Default config with an explicit RNG seed — the one-field override
    /// every experiment run starts from.
    pub fn with_seed(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..EngineConfig::default()
        }
    }
}

/// Event payloads. Ordering is owned by the calendar queue: events pop in
/// ascending `(SimTime, push order)` — FIFO within an identical timestamp,
/// with the kind never participating in the order (the push counter is
/// unique, so the tie-break never reaches it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ev {
    /// A core may have work to pick up.
    Wake { core: usize },
    /// A running task's partitions finish (all at once; the engine models
    /// the "last finisher" as this single completion point). `token` is
    /// unique per task occupancy *and* per rescale, so stale events can
    /// never complete a different (or rescaled) occupant of a reused slot.
    Done { slot: usize, token: u64 },
    /// A DVFS transition took effect; running tasks must be rescaled.
    Dvfs,
    /// A waiting moldable task ran out of patience gathering cores.
    MoldTimeout { mold: usize },
    /// Scheduler timer tick (e.g. Aequitas' 1 s time slices).
    Timer,
}

/// The simulation engine. Create one per run via [`SimEngine::run`], or
/// reuse an [`EngineArena`] across runs via [`SimEngine::run_with_arena`].
pub struct SimEngine;

impl SimEngine {
    /// Execute `graph` on `machine` under `scheduler`; returns the full
    /// measurement report.
    ///
    /// Convenience wrapper building a fresh [`EngineArena`] and idle
    /// [`PowerTables`] per run. Batch executors should build both once and
    /// call [`SimEngine::run_with_arena`] instead — the results are
    /// identical either way (the arena resets to a fresh state and the
    /// tables are a pure function of the machine).
    pub fn run(
        machine: &MachineModel,
        graph: &TaskGraph,
        scheduler: &mut dyn Scheduler,
        cfg: EngineConfig,
    ) -> RunReport {
        let space = ConfigSpace::from_spec(&machine.spec);
        let idle = PowerTables::measure(machine, &space);
        let mut arena = EngineArena::new();
        Self::run_with_arena(machine, graph, scheduler, cfg, &mut arena, &idle)
    }

    /// Execute `graph` reusing a caller-owned arena and precomputed idle
    /// power tables (`idle` must be [`PowerTables::measure`] of `machine` —
    /// `Campaign` workers pass the experiment context's tables).
    ///
    /// The arena is reset at the start of the run, so any arena works for
    /// any run; reusing one across many runs keeps the hot path free of
    /// per-run allocation (one arena per worker thread, not per spec).
    pub fn run_with_arena(
        machine: &MachineModel,
        graph: &TaskGraph,
        scheduler: &mut dyn Scheduler,
        cfg: EngineConfig,
        arena: &mut EngineArena,
        idle: &PowerTables,
    ) -> RunReport {
        let mut sim = Sim::new(machine, graph, cfg, arena, idle);
        sim.main_loop(scheduler);
        sim.into_report(scheduler, graph)
    }
}

struct Sim<'a> {
    machine: &'a MachineModel,
    space: ConfigSpace,
    graph: &'a TaskGraph,
    cfg: EngineConfig,

    now: SimTime,
    /// All reusable per-run state: SoA task/slot storage, intrusive
    /// queues, the calendar event queue, mirrors, scratch (see
    /// [`crate::arena`]).
    a: &'a mut EngineArena,
    /// Precomputed idle rail power per frequency index.
    idle: &'a PowerTables,

    next_token: u64,
    trace_rec: Option<ExecTrace>,

    running_count: usize,
    running_per_type: [usize; 2],
    /// Number of `Some` entries in `molds` (skips the join scan when zero).
    active_molds: usize,
    /// Cached rail powers, recomputed only after an event that can change
    /// them (task launch/completion, DVFS activity).
    rail_cache: [f64; 3],
    rail_dirty: bool,

    ctrl: [DvfsController; 2],
    ctrl_mem: DvfsController,

    completed: usize,

    trace: PowerTrace,
    sensor: PowerSensor,
    rng: StdRng,

    // Report counters.
    steals: u64,
    mold_timeouts: u64,
    tasks_per_type: [usize; 2],
    sampling_time_s: f64,
    total_task_time_s: f64,

    // Profiling tallies, flushed to the joss-telemetry catalog once per
    // run by `into_report` (branch-on-enabled). Plain local increments —
    // the hot loop never touches an atomic for these.
    t_events: u64,
    t_dispatches: u64,
    t_steal_attempts: u64,
    t_arena_recycles: u64,
    t_queue_peak: usize,
}

impl<'a> Sim<'a> {
    fn new(
        machine: &'a MachineModel,
        graph: &'a TaskGraph,
        cfg: EngineConfig,
        arena: &'a mut EngineArena,
        idle: &'a PowerTables,
    ) -> Self {
        let space = ConfigSpace::from_spec(&machine.spec);
        arena.reset(machine);
        arena.indegree.extend_from_slice(graph.indegrees());
        // Paper §6.1: frequencies start at maximum before each benchmark.
        let cpu_lat = Duration::from_micros(machine.spec.cpu_dvfs_latency_us);
        let mem_lat = Duration::from_micros(machine.spec.mem_dvfs_latency_us);
        let ctrl = [
            DvfsController::new(DvfsDomain::ClusterBig, space.fc_max(), cpu_lat),
            DvfsController::new(DvfsDomain::ClusterLittle, space.fc_max(), cpu_lat),
        ];
        let ctrl_mem = DvfsController::new(DvfsDomain::Memory, space.fm_max(), mem_lat);
        let sensor = PowerSensor::new(Duration::from_millis(machine.spec.sensor_period_ms));
        let seed = cfg.seed;
        let record_trace = cfg.record_trace;
        Sim {
            machine,
            space,
            graph,
            cfg,
            now: SimTime::ZERO,
            a: arena,
            idle,
            next_token: 0,
            trace_rec: record_trace.then(ExecTrace::default),
            running_count: 0,
            running_per_type: [0, 0],
            active_molds: 0,
            rail_cache: [0.0; 3],
            rail_dirty: true,
            ctrl,
            ctrl_mem,
            completed: 0,
            trace: PowerTrace::new(false),
            sensor,
            rng: StdRng::seed_from_u64(seed),
            steals: 0,
            mold_timeouts: 0,
            tasks_per_type: [0, 0],
            sampling_time_s: 0.0,
            total_task_time_s: 0.0,
            t_events: 0,
            t_dispatches: 0,
            t_steal_attempts: 0,
            t_arena_recycles: 0,
            t_queue_peak: 0,
        }
    }

    #[inline]
    fn push(&mut self, at: SimTime, kind: Ev) {
        self.a.events.push(at, kind);
    }

    /// O(1), allocation-free: every field is either a counter the event
    /// handlers keep current or a borrowed slice over the arena's
    /// incrementally maintained per-core mirrors.
    fn sched_ctx(&self) -> SchedCtx<'_> {
        SchedCtx {
            space: &self.space,
            graph: self.graph,
            now_s: self.now.as_secs_f64(),
            running_tasks: self.running_count,
            settled_fc: [self.ctrl[0].settled_freq(), self.ctrl[1].settled_freq()],
            settled_fm: self.ctrl_mem.settled_freq(),
            queue_lens: &self.a.queue_lens,
            core_busy: &self.a.core_busy,
            core_tc: &self.a.core_tc,
        }
    }

    fn main_loop(&mut self, sched: &mut dyn Scheduler) {
        // Seed the system: place roots, wake all cores.
        let mut roots = std::mem::take(&mut self.a.roots);
        roots.extend(self.graph.roots());
        for &t in &roots {
            self.make_ready(sched, t);
        }
        self.a.roots = roots;
        for c in 0..self.a.core_tc.len() {
            self.push(SimTime::ZERO, Ev::Wake { core: c });
        }
        if let Some(interval) = sched.timer_interval() {
            self.push(SimTime::ZERO + interval, Ev::Timer);
        }

        let n = self.graph.n_tasks();
        let deadline = SimTime::from_secs_f64(self.cfg.max_virtual_time_s);
        let mut audit_tick = 0u32;
        while self.completed < n {
            self.t_events += 1;
            self.t_queue_peak = self.t_queue_peak.max(self.a.events.len());
            let Some((at, kind)) = self.a.events.pop() else {
                panic!(
                    "scheduler deadlock: {} of {} tasks completed, no events pending",
                    self.completed, n
                )
            };
            assert!(
                at <= deadline,
                "virtual-time guard exceeded: possible livelock"
            );
            // Integrate power up to the event, with pre-event rail values.
            let held = self.trace.current();
            self.sensor.advance_to(at, |_| held);
            self.trace.advance(at);
            self.now = at;

            match kind {
                Ev::Wake { core } => self.try_dispatch(sched, core),
                Ev::Done { slot, token } => self.handle_done(sched, slot, token),
                Ev::Dvfs => self.rescale_all(),
                Ev::MoldTimeout { mold } => {
                    // Patience exhausted: start with the gathered width.
                    if let Some(m) = self.a.molds[mold].take() {
                        self.active_molds -= 1;
                        self.mold_timeouts += 1;
                        self.launch(sched, m.q, m.members, m.stolen);
                    }
                }
                Ev::Timer => {
                    let mut cmds = std::mem::take(&mut self.a.timer_cmds);
                    cmds.clear();
                    {
                        let mut ctx = self.sched_ctx();
                        sched.on_timer(&mut ctx, &mut cmds);
                    }
                    for &cmd in &cmds {
                        self.apply_freq_command(cmd);
                    }
                    self.a.timer_cmds = cmds;
                    if self.completed < n {
                        if let Some(interval) = sched.timer_interval() {
                            self.push(self.now + interval, Ev::Timer);
                        }
                    }
                }
            }
            // Commit the rail-power level at every event (the integration
            // break points must match the event sequence exactly), but only
            // recompute it when this event could have changed it.
            if self.rail_dirty {
                self.rail_cache = self.rail_powers();
                self.rail_dirty = false;
            }
            self.trace.set(self.now, self.rail_cache);

            // Debug builds audit the arena's link/free-list/mirror
            // invariants as the run progresses (every 32 events keeps the
            // audit's list walks from turning tests quadratic).
            if cfg!(debug_assertions) {
                if audit_tick & 31 == 0 {
                    self.a.debug_validate();
                }
                audit_tick = audit_tick.wrapping_add(1);
            }
        }
    }

    /// A task's dependencies are all satisfied: ask the scheduler for a
    /// placement and enqueue it.
    fn make_ready(&mut self, sched: &mut dyn Scheduler, task: TaskId) {
        let placement = {
            let mut ctx = self.sched_ctx();
            sched.place(&mut ctx, task)
        };
        let core = self.pick_home_core(placement.tc);
        self.a.enqueue_back(
            core,
            QueuedTask {
                task,
                placement,
                pin_waits: 0,
            },
        );
        self.push(self.now, Ev::Wake { core });
    }

    /// Random core of the requested type (or of any type), as the paper's
    /// random-queue placement. The per-type index lists are precomputed at
    /// construction, so a typed pick is one RNG draw and one table lookup.
    fn pick_home_core(&mut self, tc: Option<CoreType>) -> usize {
        match tc {
            None => self.rng.gen_range(0..self.a.core_tc.len()),
            Some(t) => {
                let candidates = self.a.cores_of[t.index()].len();
                let pick = self.rng.gen_range(0..candidates);
                self.a.cores_of[t.index()][pick]
            }
        }
    }

    /// Try to give an idle core work: join a waiting moldable task first,
    /// then own queue, then steal.
    fn try_dispatch(&mut self, sched: &mut dyn Scheduler, core: usize) {
        if self.a.core_running[core] != NIL || self.a.core_reserved[core] {
            return;
        }
        self.t_dispatches += 1;
        // Waiting moldable tasks of my type have priority (core reservation).
        // The scan is gated on the active-mold counter: in the common case
        // (no task gathering cores) dispatch skips it entirely.
        let my_tc = self.a.core_tc[core];
        if self.active_molds > 0 {
            let joinable = self.a.molds.iter().position(|m| {
                m.as_ref()
                    .is_some_and(|m| m.tc == my_tc && m.members.len() < m.need)
            });
            if let Some(mi) = joinable {
                self.a.core_reserved[core] = true;
                let full = {
                    let m = self.a.molds[mi].as_mut().expect("present");
                    m.members.push(core);
                    m.members.len() >= m.need
                };
                if full {
                    let m = self.a.molds[mi].take().expect("present");
                    self.active_molds -= 1;
                    self.launch(sched, m.q, m.members, m.stolen);
                }
                return;
            }
        }
        if let Some(q) = self.a.dequeue_front(core) {
            if self.revise_and_route(sched, core, q, false) {
                return;
            }
            // Task was re-routed to another cluster; try for more work now.
            self.push(self.now, Ev::Wake { core });
            return;
        }
        // Steal: visit victims in random order; take the oldest compatible
        // item. Typed placements may only be stolen by cores of the same
        // type (paper §5.3); untyped (GRWS) items move anywhere. The victim
        // buffer is arena-owned scratch, refilled (not reallocated) and
        // reshuffled on every attempt — the RNG draw sequence is identical
        // to shuffling a freshly collected vector.
        self.t_steal_attempts += 1;
        let mut victims = std::mem::take(&mut self.a.steal_scratch);
        victims.clear();
        victims.extend((0..self.a.core_tc.len()).filter(|&v| v != core));
        // Fisher-Yates with the engine RNG for deterministic victim order.
        for i in (1..victims.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            victims.swap(i, j);
        }
        let mut found = None;
        for &v in &victims {
            if let Some(q) = self
                .a
                .dequeue_first_matching(v, |p| p.tc.is_none_or(|t| t == my_tc))
            {
                found = Some(q);
                break;
            }
        }
        self.a.steal_scratch = victims;
        if let Some(q) = found {
            self.steals += 1;
            if !self.revise_and_route(sched, core, q, true) {
                self.push(self.now, Ev::Wake { core });
            }
        }
        // Otherwise nothing to do: the core sleeps until a Wake event.
    }

    /// Give the scheduler a dispatch-time chance to revise the placement.
    /// Returns `true` if the task started on `core`; `false` if it was
    /// re-routed to a core of the revised type.
    fn revise_and_route(
        &mut self,
        sched: &mut dyn Scheduler,
        core: usize,
        mut q: QueuedTask,
        stolen: bool,
    ) -> bool {
        let revised = {
            let mut ctx = self.sched_ctx();
            sched.revise(&mut ctx, q.task, q.placement)
        };
        q.placement = revised;
        let my_tc = self.a.core_tc[core];
        if let Some(want_tc) = revised.tc {
            if want_tc != my_tc {
                let target = self.pick_home_core(Some(want_tc));
                self.a.enqueue_back(target, q);
                self.push(self.now, Ev::Wake { core: target });
                return false;
            }
        }
        self.start_task(sched, core, q, stolen);
        true
    }

    /// Begin executing a task on `leader`, recruiting idle same-type cores
    /// up to the requested moldable width.
    fn start_task(
        &mut self,
        sched: &mut dyn Scheduler,
        leader: usize,
        q: QueuedTask,
        stolen: bool,
    ) {
        let task = q.task;
        let kernel_id = self.graph.kernel_of(task);
        let spec = self.graph.kernel(kernel_id);
        let tc = self.a.core_tc[leader];
        let cluster_size = self.machine.spec.cluster(tc).n_cores;
        let width_req = q
            .placement
            .width
            .min(spec.max_width)
            .min(cluster_size)
            .max(1);

        // Pinned (sampling) placements must measure at exactly the requested
        // frequencies: issue the requests and, if a transition is needed,
        // hold the task until it takes effect (the paper's sampler pins the
        // cluster frequency before timing).
        if let (Some((want_fc, want_fm)), false) = (q.placement.freq, q.placement.coordinate) {
            let r1 = self.ctrl[tc.index()].request(want_fc, self.now);
            let r2 = self.ctrl_mem.request(want_fm, self.now);
            if r1.transitioned {
                self.push(r1.effective_at, Ev::Dvfs);
                self.note_dvfs(tc.index(), r1.effective_at, want_fc);
                self.rail_dirty = true;
            }
            if r2.transitioned {
                self.push(r2.effective_at, Ev::Dvfs);
                self.note_dvfs(2, r2.effective_at, want_fm);
                self.rail_dirty = true;
            }
            let settle = r1.effective_at.max(r2.effective_at);
            let pending = self.ctrl[tc.index()].freq_at(self.now) != want_fc
                || self.ctrl_mem.freq_at(self.now) != want_fm;
            if pending && settle > self.now && q.pin_waits < 3 {
                let mut q = q;
                q.pin_waits += 1;
                self.a.enqueue_front(leader, q);
                self.push(settle, Ev::Wake { core: leader });
                return;
            }
        }

        // Gather cores for moldable execution: take currently free same-type
        // cores immediately; if short, reserve and wait (bounded patience)
        // for cores to finish their current tasks and join. The member
        // vector is recycled from completed tasks, so the steady state
        // allocates nothing.
        let mut members = self.a.take_core_vec();
        members.push(leader);
        if width_req > 1 {
            for i in 0..self.a.core_tc.len() {
                if members.len() >= width_req {
                    break;
                }
                if i != leader
                    && self.a.core_tc[i] == tc
                    && self.a.core_running[i] == NIL
                    && !self.a.core_reserved[i]
                {
                    members.push(i);
                }
            }
            if members.len() < width_req {
                for &m in &members {
                    self.a.core_reserved[m] = true;
                }
                let mold = WaitingMold {
                    q,
                    tc,
                    need: width_req,
                    members,
                    stolen,
                };
                let mi = if let Some(free) = self.a.molds.iter().position(|m| m.is_none()) {
                    self.a.molds[free] = Some(mold);
                    free
                } else {
                    self.a.molds.push(Some(mold));
                    self.a.molds.len() - 1
                };
                self.active_molds += 1;
                // Patience: at least the configured floor, and long enough
                // for every same-cluster task currently running to finish
                // and join (cores join waiting molds before taking new
                // work, so this bounds the wait without deadlock).
                let mut deadline = self.now + Duration::from_micros(self.cfg.mold_patience_us);
                for slot in 0..self.a.run_live.len() {
                    if self.a.run_live[slot] && self.a.run_tc[slot] == tc {
                        deadline =
                            deadline.max(self.a.run_finish[slot] + Duration::from_micros(10));
                    }
                }
                self.push(deadline, Ev::MoldTimeout { mold: mi });
                return;
            }
        }
        self.launch(sched, q, members, stolen);
    }

    /// Execute a task on the gathered member cores: issue coordinated
    /// frequency requests, compute the execution sample, and commit it.
    fn launch(
        &mut self,
        sched: &mut dyn Scheduler,
        q: QueuedTask,
        members: Vec<usize>,
        stolen: bool,
    ) {
        let task = q.task;
        let kernel_id = self.graph.kernel_of(task);
        let spec = self.graph.kernel(kernel_id);
        let leader = members[0];
        let tc = self.a.core_tc[leader];
        let width = members.len();

        // Coordinated frequency requests: blend with the current setting when
        // other tasks share the domain (paper §5.3). Sharer counts come from
        // the incrementally maintained per-type counters, not a slot scan.
        if let (Some((want_fc, want_fm)), true) = (q.placement.freq, q.placement.coordinate) {
            let others_cluster = self.running_per_type[tc.index()];
            let others_mem = self.running_count;
            let fc_t = self.cfg.coordination.blend(
                want_fc,
                self.ctrl[tc.index()].settled_freq(),
                others_cluster,
                &self.space.cpu_freqs_ghz,
            );
            let fm_t = self.cfg.coordination.blend(
                want_fm,
                self.ctrl_mem.settled_freq(),
                others_mem,
                &self.space.mem_freqs_ghz,
            );
            let r1 = self.ctrl[tc.index()].request(fc_t, self.now);
            if r1.transitioned {
                self.push(r1.effective_at, Ev::Dvfs);
                self.note_dvfs(tc.index(), r1.effective_at, fc_t);
            }
            let r2 = self.ctrl_mem.request(fm_t, self.now);
            if r2.transitioned {
                self.push(r2.effective_at, Ev::Dvfs);
                self.note_dvfs(2, r2.effective_at, fm_t);
            }
        }

        // Execute at the frequencies in effect *now*; a transition landing
        // later rescales the remainder.
        let fc_now = self.ctrl[tc.index()].freq_at(self.now);
        let fm_now = self.ctrl_mem.freq_at(self.now);
        let shape = spec.scaled_shape(self.graph.scale_of(task));
        // DRAM contention context: aggregate bandwidth demand of the other
        // running tasks (each task's demand was computed when it started).
        // Slot order, exactly as the rail-power sum below — the float
        // rounding of both depends on it.
        let mut other_demand_gbs = 0.0;
        for slot in 0..self.a.run_live.len() {
            if self.a.run_live[slot] {
                other_demand_gbs += self.a.run_mem_demand[slot];
            }
        }
        let ctx = ExecContext { other_demand_gbs };
        let exec = self.machine.execute(
            &shape,
            tc,
            width,
            self.space.fc_ghz(fc_now),
            self.space.fm_ghz(fm_now),
            &ctx,
            &[
                task.0 as u64,
                tc.index() as u64,
                width as u64,
                fc_now.0 as u64,
                fm_now.0 as u64,
            ],
        );

        let slot = self.a.alloc_run_slot();
        let duration_s = exec.duration.as_secs_f64().max(1e-12);
        self.next_token += 1;
        for &m in &members {
            self.a.core_running[m] = slot as u32;
            self.a.core_reserved[m] = false;
            self.a.core_busy[m] = true;
        }
        let finish_at = self.now + exec.duration;
        let token = self.next_token;
        self.a.run_live[slot] = true;
        self.a.run_task[slot] = task;
        self.a.run_shape[slot] = shape;
        self.a.run_tc[slot] = tc;
        self.a.run_width[slot] = width;
        // `members` moves into the running slot (it is recycled at
        // completion); no per-launch clone.
        self.a.run_cores[slot] = members;
        self.a.run_started[slot] = self.now;
        self.a.run_finish[slot] = finish_at;
        self.a.run_token[slot] = token;
        self.a.run_rescales[slot] = 0;
        self.a.run_fc_start[slot] = fc_now;
        self.a.run_fm_start[slot] = fm_now;
        self.a.run_fc_cur[slot] = fc_now;
        self.a.run_fm_cur[slot] = fm_now;
        self.a.run_cpu_dyn_w[slot] = exec.cpu_dyn_w;
        self.a.run_mem_dyn_w[slot] = exec.mem_dyn_w;
        self.a.run_mem_demand[slot] = shape.bytes_gb / duration_s;
        self.a.run_other_demand[slot] = other_demand_gbs;
        self.a.run_sampling[slot] = !q.placement.coordinate;
        self.a.run_stolen[slot] = stolen;
        self.running_count += 1;
        self.running_per_type[tc.index()] += 1;
        self.tasks_per_type[tc.index()] += 1;
        self.rail_dirty = true;
        self.push(finish_at, Ev::Done { slot, token });

        let mut ctx2 = self.sched_ctx();
        sched.task_started(&mut ctx2, task, leader, stolen);
    }

    /// A task's partitions all finished: free cores, notify the scheduler,
    /// wake dependents.
    fn handle_done(&mut self, sched: &mut dyn Scheduler, slot: usize, token: u64) {
        if !self.a.run_live[slot] || self.a.run_token[slot] != token {
            return; // stale event (rescaled, or a later occupant of the slot)
        }
        self.a.run_live[slot] = false;
        self.a.free_slots.push(slot);
        self.running_count -= 1;
        let tc = self.a.run_tc[slot];
        self.running_per_type[tc.index()] -= 1;
        self.rail_dirty = true;
        debug_assert_eq!(
            self.running_count,
            self.a.run_live.iter().filter(|&&l| l).count()
        );
        let cores = std::mem::take(&mut self.a.run_cores[slot]);
        for &c in &cores {
            self.a.core_running[c] = NIL;
            self.a.core_busy[c] = false;
            self.push(self.now, Ev::Wake { core: c });
        }
        let started = self.a.run_started[slot];
        let duration_s = self.now.since(started).as_secs_f64();
        self.total_task_time_s += duration_s;
        if self.a.run_sampling[slot] {
            self.sampling_time_s += duration_s;
        }
        self.completed += 1;

        let task = self.a.run_task[slot];
        let sample = ExecutedSample {
            task,
            kernel: self.graph.kernel_of(task),
            tc,
            width: self.a.run_width[slot],
            fc_start: self.a.run_fc_start[slot],
            fm_start: self.a.run_fm_start[slot],
            fc_end: self.ctrl[tc.index()].freq_at(self.now),
            fm_end: self.ctrl_mem.freq_at(self.now),
            duration_s,
            started_s: started.as_secs_f64(),
            stolen: self.a.run_stolen[slot],
            perturbed: self.a.run_rescales[slot] > 0,
            scale: self.graph.scale_of(task),
        };
        if let Some(tr) = &mut self.trace_rec {
            tr.tasks.push(TaskSpan {
                task,
                kernel: self.graph.kernel(self.graph.kernel_of(task)).name.clone(),
                core: cores[0],
                cores: cores.clone(),
                tc,
                start_s: started.as_secs_f64(),
                end_s: self.now.as_secs_f64(),
                fc: self.a.run_fc_start[slot],
                fm: self.a.run_fm_start[slot],
                sampling: self.a.run_sampling[slot],
            });
        }
        {
            let mut ctx = self.sched_ctx();
            sched.task_completed(&mut ctx, &sample);
        }
        self.a.recycle_core_vec(cores);
        self.t_arena_recycles += 1;

        // Wake dependents whose last dependency this was. The successor
        // slice borrows the graph (lifetime `'a`, independent of `self`),
        // so no defensive copy is needed while `make_ready` mutates state.
        let graph = self.graph;
        for &s in graph.successors(task) {
            let d = &mut self.a.indegree[s.index()];
            debug_assert!(*d > 0, "dependency counting underflow");
            *d -= 1;
            if *d == 0 {
                self.make_ready(sched, s);
            }
        }
    }

    fn apply_freq_command(&mut self, cmd: FreqCommand) {
        let (req, domain, freq) = match cmd {
            FreqCommand::Cluster(tc, f) => {
                (self.ctrl[tc.index()].request(f, self.now), tc.index(), f)
            }
            FreqCommand::Memory(f) => (self.ctrl_mem.request(f, self.now), 2, f),
        };
        if req.transitioned {
            self.push(req.effective_at, Ev::Dvfs);
            self.note_dvfs(domain, req.effective_at, freq);
            self.rail_dirty = true;
        }
    }

    /// Record a DVFS transition in the trace (if recording).
    fn note_dvfs(&mut self, domain: usize, at: SimTime, freq: FreqIndex) {
        if let Some(tr) = &mut self.trace_rec {
            tr.dvfs.push(DvfsSpan {
                domain,
                at_s: at.as_secs_f64(),
                freq,
            });
        }
    }

    /// A DVFS transition took effect: rescale every running task whose
    /// effective frequencies changed and refresh its power draw.
    fn rescale_all(&mut self) {
        // A transition landed: even if no running task's operating point
        // changes, the cluster idle draw follows the new frequency.
        self.rail_dirty = true;
        let n_slots = self.a.run_live.len();
        let mut self_token = self.next_token;
        for slot in 0..n_slots {
            if !self.a.run_live[slot] {
                continue;
            }
            let tc = self.a.run_tc[slot];
            let fc_new = self.ctrl[tc.index()].freq_at(self.now);
            let fm_new = self.ctrl_mem.freq_at(self.now);
            if fc_new == self.a.run_fc_cur[slot] && fm_new == self.a.run_fm_cur[slot] {
                continue;
            }
            let shape = self.a.run_shape[slot];
            let width = self.a.run_width[slot];
            let ctx = ExecContext {
                other_demand_gbs: self.a.run_other_demand[slot],
            };
            let t_old = self.machine.clean_time_s(
                &shape,
                tc,
                width,
                self.space.cpu_freqs_ghz[self.a.run_fc_cur[slot].0],
                self.space.mem_freqs_ghz[self.a.run_fm_cur[slot].0],
                &ctx,
            );
            let t_new = self.machine.clean_time_s(
                &shape,
                tc,
                width,
                self.space.cpu_freqs_ghz[fc_new.0],
                self.space.mem_freqs_ghz[fm_new.0],
                &ctx,
            );
            let finish_at = self.a.run_finish[slot];
            let remaining = finish_at.since(self.now.min(finish_at)).as_secs_f64();
            let remaining_new = if t_old > 0.0 {
                remaining * t_new / t_old
            } else {
                remaining
            };
            let new_finish = self.now + joss_platform::Duration::from_secs_f64(remaining_new);
            self.a.run_finish[slot] = new_finish;
            self.a.run_rescales[slot] += 1;
            // Refresh power draw at the new operating point (deterministic:
            // keyed by task and configuration).
            let exec = self.machine.execute(
                &shape,
                tc,
                width,
                self.space.cpu_freqs_ghz[fc_new.0],
                self.space.mem_freqs_ghz[fm_new.0],
                &ctx,
                &[
                    self.a.run_task[slot].0 as u64,
                    tc.index() as u64,
                    width as u64,
                    fc_new.0 as u64,
                    fm_new.0 as u64,
                ],
            );
            self.a.run_cpu_dyn_w[slot] = exec.cpu_dyn_w;
            self.a.run_mem_dyn_w[slot] = exec.mem_dyn_w;
            self.a.run_mem_demand[slot] = shape.bytes_gb
                / new_finish
                    .since(self.a.run_started[slot])
                    .as_secs_f64()
                    .max(1e-12);
            self.a.run_fc_cur[slot] = fc_new;
            self.a.run_fm_cur[slot] = fm_new;
            self_token += 1;
            self.a.run_token[slot] = self_token;
            self.push(
                new_finish,
                Ev::Done {
                    slot,
                    token: self_token,
                },
            );
        }
        self.next_token = self_token;
    }

    /// Instantaneous rail powers: per-cluster idle + running dynamic CPU
    /// power; memory background + running dynamic memory power. Idle power
    /// is a [`PowerTables`] lookup by frequency index (bit-identical to the
    /// machine-model call it replaces); the dynamic sums stream the arena's
    /// SoA columns in slot order.
    fn rail_powers(&self) -> [f64; 3] {
        let mut big = self
            .idle
            .cluster_idle_w(CoreType::Big, self.ctrl[0].freq_at(self.now));
        let mut little = self
            .idle
            .cluster_idle_w(CoreType::Little, self.ctrl[1].freq_at(self.now));
        let mut mem = self.idle.mem_idle_w(self.ctrl_mem.freq_at(self.now));
        for slot in 0..self.a.run_live.len() {
            if self.a.run_live[slot] {
                match self.a.run_tc[slot] {
                    CoreType::Big => big += self.a.run_cpu_dyn_w[slot],
                    CoreType::Little => little += self.a.run_cpu_dyn_w[slot],
                }
                mem += self.a.run_mem_dyn_w[slot];
            }
        }
        [big, little, mem]
    }

    fn into_report(self, sched: &mut dyn Scheduler, graph: &TaskGraph) -> RunReport {
        if joss_telemetry::enabled() {
            use joss_telemetry::catalog as tm;
            tm::ENGINE_RUNS.inc();
            tm::ENGINE_EVENTS.add(self.t_events);
            tm::ENGINE_DISPATCHES.add(self.t_dispatches);
            tm::ENGINE_STEAL_ATTEMPTS.add(self.t_steal_attempts);
            tm::ENGINE_STEALS.add(self.steals);
            tm::ENGINE_ARENA_RECYCLES.add(self.t_arena_recycles);
            tm::ENGINE_TASKS.add(self.completed as u64);
            tm::ENGINE_EVENT_QUEUE_PEAK.set_max(self.t_queue_peak as i64);
        }
        let energy = EnergyAccount::from_measurements(&self.trace, &self.sensor, self.now);
        RunReport {
            scheduler: sched.name().to_string(),
            benchmark: graph.name().to_string(),
            energy,
            tasks: self.completed,
            tasks_per_type: self.tasks_per_type,
            steals: self.steals,
            mold_timeouts: self.mold_timeouts,
            dvfs_transitions: self.ctrl[0].n_transitions
                + self.ctrl[1].n_transitions
                + self.ctrl_mem.n_transitions,
            dvfs_serialized: self.ctrl[0].n_serialized
                + self.ctrl[1].n_serialized
                + self.ctrl_mem.n_serialized,
            sampling_time_s: self.sampling_time_s,
            total_task_time_s: self.total_task_time_s,
            search_evaluations: sched.search_evaluations(),
            selected_configs: sched.selected_configs(),
            trace: self.trace_rec,
        }
    }
}
