//! The discrete-event execution engine: XiTAO-like task runtime over the
//! simulated platform.
//!
//! The engine owns per-core work queues, work stealing, moldable execution
//! (paper §5.3), the DVFS controllers, and exact power/energy accounting. A
//! [`Scheduler`](crate::sched::Scheduler) makes the policy decisions; the
//! engine provides the mechanisms:
//!
//! * ready tasks are placed in the work queue of a (randomly chosen) core of
//!   the scheduler-selected type, and may be stolen by other cores of a
//!   compatible type for load balancing;
//! * a moldable task (width > 1) recruits idle cores of the same type at
//!   start time and partitions its work across them; the last partition to
//!   finish completes the task and wakes dependents;
//! * frequency requests pass through the coordination heuristic when other
//!   tasks share the domain, then go to the (serializing) DVFS controllers;
//! * a DVFS transition landing mid-task rescales the remaining execution
//!   time of every affected task and updates its power draw;
//! * rail powers are piecewise-constant between events and integrated
//!   exactly; the INA3221-style sensor samples them every 5 ms in parallel.

use crate::coordination::Coordination;
use crate::metrics::RunReport;
use crate::placement::{ExecutedSample, FreqCommand, Placement};
use crate::sched::{SchedCtx, Scheduler};
use crate::trace::{DvfsSpan, ExecTrace, TaskSpan};
use joss_dag::{TaskGraph, TaskId};
use joss_platform::{
    ConfigSpace, CoreType, Duration, DvfsController, DvfsDomain, EnergyAccount, ExecContext,
    FreqIndex, MachineModel, PowerSensor, PowerTrace, SimTime, TaskShape,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// RNG seed for core selection and steal-victim order.
    pub seed: u64,
    /// Frequency coordination heuristic (paper uses the arithmetic mean).
    pub coordination: Coordination,
    /// How long a moldable task waits for same-type cores to free up before
    /// starting with a degraded width, microseconds.
    pub mold_patience_us: u64,
    /// Record a full execution trace (task spans + DVFS transitions) into
    /// the run report.
    ///
    /// **Off by default, and keep it off for batch runs**: the trace holds
    /// one span per task, so memory grows linearly with task count (a
    /// full-scale FB run is ~57k spans), and it lives inside the returned
    /// [`RunReport`] for as long as the report does. Campaign executors
    /// (`joss-sweep`) hold every report of a grid in memory at once, so
    /// they force this off unless a spec opts in per-run.
    pub record_trace: bool,
    /// Deadlock/livelock guard: abort if virtual time exceeds this.
    pub max_virtual_time_s: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0xC0FFEE,
            coordination: Coordination::Average,
            mold_patience_us: 500,
            record_trace: false,
            max_virtual_time_s: 1.0e6,
        }
    }
}

impl EngineConfig {
    /// Default config with an explicit RNG seed — the one-field override
    /// every experiment run starts from.
    pub fn with_seed(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..EngineConfig::default()
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// A core may have work to pick up.
    Wake { core: usize },
    /// A running task's partitions finish (all at once; the engine models
    /// the "last finisher" as this single completion point). `token` is
    /// unique per task occupancy *and* per rescale, so stale events can
    /// never complete a different (or rescaled) occupant of a reused slot.
    Done { slot: usize, token: u64 },
    /// A DVFS transition took effect; running tasks must be rescaled.
    Dvfs,
    /// A waiting moldable task ran out of patience gathering cores.
    MoldTimeout { mold: usize },
    /// Scheduler timer tick (e.g. Aequitas' 1 s time slices).
    Timer,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    at: SimTime,
    seq: u64,
    kind: Ev,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone)]
struct Queued {
    task: TaskId,
    placement: Placement,
    /// Times this item was held back waiting for a pinned-frequency
    /// transition (bounded to avoid ping-pong between conflicting pins).
    pin_waits: u8,
}

#[derive(Debug, Clone)]
struct Running {
    task: TaskId,
    shape: TaskShape,
    tc: CoreType,
    width: usize,
    cores: Vec<usize>,
    started: SimTime,
    finish_at: SimTime,
    /// Unique completion-event key; regenerated on install and every rescale.
    token: u64,
    /// Number of mid-run DVFS rescales (perturbation marker).
    rescales: u32,
    fc_start: FreqIndex,
    fm_start: FreqIndex,
    fc_cur: FreqIndex,
    fm_cur: FreqIndex,
    cpu_dyn_w: f64,
    mem_dyn_w: f64,
    /// DRAM bandwidth this task consumes while running, GB/s.
    mem_demand_gbs: f64,
    ctx: ExecContext,
    sampling: bool,
    stolen: bool,
}

#[derive(Debug)]
struct Core {
    tc: CoreType,
    queue: VecDeque<Queued>,
    running: Option<usize>,
    /// Reserved by a waiting moldable task (see [`WaitingMold`]).
    reserved: bool,
}

/// A moldable task gathering cores: the leader reserves itself and waits up
/// to the configured patience for same-type cores to join (XiTAO-style core
/// reservation); on timeout it starts with whatever width it has.
#[derive(Debug)]
struct WaitingMold {
    q: Queued,
    tc: CoreType,
    need: usize,
    members: Vec<usize>,
    stolen: bool,
}

/// The simulation engine. Create one per run via [`SimEngine::run`].
pub struct SimEngine;

impl SimEngine {
    /// Execute `graph` on `machine` under `scheduler`; returns the full
    /// measurement report.
    pub fn run(
        machine: &MachineModel,
        graph: &TaskGraph,
        scheduler: &mut dyn Scheduler,
        cfg: EngineConfig,
    ) -> RunReport {
        let mut sim = Sim::new(machine, graph, cfg);
        sim.main_loop(scheduler);
        sim.into_report(scheduler, graph)
    }
}

struct Sim<'a> {
    machine: &'a MachineModel,
    space: ConfigSpace,
    graph: &'a TaskGraph,
    cfg: EngineConfig,

    now: SimTime,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,

    cores: Vec<Core>,
    runnings: Vec<Option<Running>>,
    free_slots: Vec<usize>,
    molds: Vec<Option<WaitingMold>>,
    next_token: u64,
    trace_rec: Option<ExecTrace>,

    // Incrementally maintained mirrors of queue/core state, published to
    // schedulers as borrowed slices (O(1) `SchedCtx` construction).
    core_tc: Vec<CoreType>,
    queue_lens: Vec<usize>,
    core_busy: Vec<bool>,
    running_count: usize,
    running_per_type: [usize; 2],
    /// Core indices per core type (ascending engine order), precomputed so
    /// typed placement never filters the core list.
    cores_of: [Vec<usize>; 2],
    /// Number of `Some` entries in `molds` (skips the join scan when zero).
    active_molds: usize,
    /// Reusable steal-victim buffer (refilled and reshuffled per attempt).
    steal_scratch: Vec<usize>,
    /// Recycled member-core vectors; steady state allocates none.
    core_vec_pool: Vec<Vec<usize>>,
    /// Reusable timer-command buffer handed to `Scheduler::on_timer`.
    timer_cmds: Vec<FreqCommand>,
    /// Cached rail powers, recomputed only after an event that can change
    /// them (task launch/completion, DVFS activity).
    rail_cache: [f64; 3],
    rail_dirty: bool,

    ctrl: [DvfsController; 2],
    ctrl_mem: DvfsController,

    indegree: Vec<u32>,
    completed: usize,

    trace: PowerTrace,
    sensor: PowerSensor,
    rng: StdRng,

    // Report counters.
    steals: u64,
    mold_timeouts: u64,
    tasks_per_type: [usize; 2],
    sampling_time_s: f64,
    total_task_time_s: f64,
}

impl<'a> Sim<'a> {
    fn new(machine: &'a MachineModel, graph: &'a TaskGraph, cfg: EngineConfig) -> Self {
        let space = ConfigSpace::from_spec(&machine.spec);
        let mut cores = Vec::new();
        for _ in 0..machine.spec.cluster(CoreType::Big).n_cores {
            cores.push(Core {
                tc: CoreType::Big,
                queue: VecDeque::new(),
                running: None,
                reserved: false,
            });
        }
        for _ in 0..machine.spec.cluster(CoreType::Little).n_cores {
            cores.push(Core {
                tc: CoreType::Little,
                queue: VecDeque::new(),
                running: None,
                reserved: false,
            });
        }
        // Paper §6.1: frequencies start at maximum before each benchmark.
        let cpu_lat = Duration::from_micros(machine.spec.cpu_dvfs_latency_us);
        let mem_lat = Duration::from_micros(machine.spec.mem_dvfs_latency_us);
        let ctrl = [
            DvfsController::new(DvfsDomain::ClusterBig, space.fc_max(), cpu_lat),
            DvfsController::new(DvfsDomain::ClusterLittle, space.fc_max(), cpu_lat),
        ];
        let ctrl_mem = DvfsController::new(DvfsDomain::Memory, space.fm_max(), mem_lat);
        let sensor = PowerSensor::new(Duration::from_millis(machine.spec.sensor_period_ms));
        let seed = cfg.seed;
        let record_trace = cfg.record_trace;
        let n_cores = cores.len();
        let core_tc: Vec<CoreType> = cores.iter().map(|c| c.tc).collect();
        let mut cores_of: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        for (i, &tc) in core_tc.iter().enumerate() {
            cores_of[tc.index()].push(i);
        }
        Sim {
            machine,
            space,
            graph,
            cfg,
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            seq: 0,
            cores,
            runnings: Vec::new(),
            free_slots: Vec::new(),
            molds: Vec::new(),
            next_token: 0,
            trace_rec: record_trace.then(ExecTrace::default),
            core_tc,
            queue_lens: vec![0; n_cores],
            core_busy: vec![false; n_cores],
            running_count: 0,
            running_per_type: [0, 0],
            cores_of,
            active_molds: 0,
            steal_scratch: Vec::with_capacity(n_cores),
            core_vec_pool: Vec::with_capacity(n_cores),
            timer_cmds: Vec::new(),
            rail_cache: [0.0; 3],
            rail_dirty: true,
            ctrl,
            ctrl_mem,
            indegree: graph.indegrees().to_vec(),
            completed: 0,
            trace: PowerTrace::new(false),
            sensor,
            rng: StdRng::seed_from_u64(seed),
            steals: 0,
            mold_timeouts: 0,
            tasks_per_type: [0, 0],
            sampling_time_s: 0.0,
            total_task_time_s: 0.0,
        }
    }

    fn push(&mut self, at: SimTime, kind: Ev) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            at,
            seq: self.seq,
            kind,
        }));
    }

    /// O(1), allocation-free: every field is either a counter the event
    /// handlers keep current or a borrowed slice over incrementally
    /// maintained per-core state.
    fn sched_ctx(&self) -> SchedCtx<'_> {
        SchedCtx {
            space: &self.space,
            graph: self.graph,
            now_s: self.now.as_secs_f64(),
            running_tasks: self.running_count,
            settled_fc: [self.ctrl[0].settled_freq(), self.ctrl[1].settled_freq()],
            settled_fm: self.ctrl_mem.settled_freq(),
            queue_lens: &self.queue_lens,
            core_busy: &self.core_busy,
            core_tc: &self.core_tc,
        }
    }

    // Every queue mutation goes through these helpers so the published
    // `queue_lens` mirror can never drift from the queues themselves.

    fn enqueue_back(&mut self, core: usize, q: Queued) {
        self.cores[core].queue.push_back(q);
        self.queue_lens[core] += 1;
    }

    fn enqueue_front(&mut self, core: usize, q: Queued) {
        self.cores[core].queue.push_front(q);
        self.queue_lens[core] += 1;
    }

    fn dequeue_front(&mut self, core: usize) -> Option<Queued> {
        let q = self.cores[core].queue.pop_front();
        if q.is_some() {
            self.queue_lens[core] -= 1;
        }
        debug_assert_eq!(self.queue_lens[core], self.cores[core].queue.len());
        q
    }

    fn dequeue_at(&mut self, core: usize, pos: usize) -> Queued {
        let q = self.cores[core].queue.remove(pos).expect("position valid");
        self.queue_lens[core] -= 1;
        debug_assert_eq!(self.queue_lens[core], self.cores[core].queue.len());
        q
    }

    /// Take a member-core vector from the recycle pool (or allocate the
    /// pool's first few on a cold start). Returned vectors are empty.
    fn take_core_vec(&mut self) -> Vec<usize> {
        self.core_vec_pool.pop().unwrap_or_default()
    }

    /// Return a member-core vector to the pool once its task completed.
    fn recycle_core_vec(&mut self, mut v: Vec<usize>) {
        v.clear();
        self.core_vec_pool.push(v);
    }

    fn main_loop(&mut self, sched: &mut dyn Scheduler) {
        // Seed the system: place roots, wake all cores.
        let roots: Vec<TaskId> = self.graph.roots().collect();
        for t in roots {
            self.make_ready(sched, t);
        }
        for c in 0..self.cores.len() {
            self.push(SimTime::ZERO, Ev::Wake { core: c });
        }
        if let Some(interval) = sched.timer_interval() {
            self.push(SimTime::ZERO + interval, Ev::Timer);
        }

        let n = self.graph.n_tasks();
        let deadline = SimTime::from_secs_f64(self.cfg.max_virtual_time_s);
        while self.completed < n {
            let Reverse(ev) = self.heap.pop().unwrap_or_else(|| {
                panic!(
                    "scheduler deadlock: {} of {} tasks completed, no events pending",
                    self.completed, n
                )
            });
            assert!(
                ev.at <= deadline,
                "virtual-time guard exceeded: possible livelock"
            );
            // Integrate power up to the event, with pre-event rail values.
            let held = self.trace.current();
            self.sensor.advance_to(ev.at, |_| held);
            self.trace.advance(ev.at);
            self.now = ev.at;

            match ev.kind {
                Ev::Wake { core } => self.try_dispatch(sched, core),
                Ev::Done { slot, token } => self.handle_done(sched, slot, token),
                Ev::Dvfs => self.rescale_all(),
                Ev::MoldTimeout { mold } => {
                    // Patience exhausted: start with the gathered width.
                    if let Some(m) = self.molds[mold].take() {
                        self.active_molds -= 1;
                        self.mold_timeouts += 1;
                        self.launch(sched, m.q, m.members, m.stolen);
                    }
                }
                Ev::Timer => {
                    let mut cmds = std::mem::take(&mut self.timer_cmds);
                    cmds.clear();
                    {
                        let mut ctx = self.sched_ctx();
                        sched.on_timer(&mut ctx, &mut cmds);
                    }
                    for &cmd in &cmds {
                        self.apply_freq_command(cmd);
                    }
                    self.timer_cmds = cmds;
                    if self.completed < n {
                        if let Some(interval) = sched.timer_interval() {
                            self.push(self.now + interval, Ev::Timer);
                        }
                    }
                }
            }
            // Commit the rail-power level at every event (the integration
            // break points must match the event sequence exactly), but only
            // recompute it when this event could have changed it.
            if self.rail_dirty {
                self.rail_cache = self.rail_powers();
                self.rail_dirty = false;
            }
            self.trace.set(self.now, self.rail_cache);
        }
    }

    /// A task's dependencies are all satisfied: ask the scheduler for a
    /// placement and enqueue it.
    fn make_ready(&mut self, sched: &mut dyn Scheduler, task: TaskId) {
        let placement = {
            let mut ctx = self.sched_ctx();
            sched.place(&mut ctx, task)
        };
        let core = self.pick_home_core(placement.tc);
        self.enqueue_back(
            core,
            Queued {
                task,
                placement,
                pin_waits: 0,
            },
        );
        self.push(self.now, Ev::Wake { core });
    }

    /// Random core of the requested type (or of any type), as the paper's
    /// random-queue placement. The per-type index lists are precomputed at
    /// construction, so a typed pick is one RNG draw and one table lookup.
    fn pick_home_core(&mut self, tc: Option<CoreType>) -> usize {
        match tc {
            None => self.rng.gen_range(0..self.cores.len()),
            Some(t) => {
                let candidates = self.cores_of[t.index()].len();
                let pick = self.rng.gen_range(0..candidates);
                self.cores_of[t.index()][pick]
            }
        }
    }

    /// Try to give an idle core work: join a waiting moldable task first,
    /// then own queue, then steal.
    fn try_dispatch(&mut self, sched: &mut dyn Scheduler, core: usize) {
        if self.cores[core].running.is_some() || self.cores[core].reserved {
            return;
        }
        // Waiting moldable tasks of my type have priority (core reservation).
        // The scan is gated on the active-mold counter: in the common case
        // (no task gathering cores) dispatch skips it entirely.
        let my_tc = self.cores[core].tc;
        if self.active_molds > 0 {
            let joinable = self.molds.iter().position(|m| {
                m.as_ref()
                    .is_some_and(|m| m.tc == my_tc && m.members.len() < m.need)
            });
            if let Some(mi) = joinable {
                self.cores[core].reserved = true;
                let full = {
                    let m = self.molds[mi].as_mut().expect("present");
                    m.members.push(core);
                    m.members.len() >= m.need
                };
                if full {
                    let m = self.molds[mi].take().expect("present");
                    self.active_molds -= 1;
                    self.launch(sched, m.q, m.members, m.stolen);
                }
                return;
            }
        }
        if let Some(q) = self.dequeue_front(core) {
            if self.revise_and_route(sched, core, q, false) {
                return;
            }
            // Task was re-routed to another cluster; try for more work now.
            self.push(self.now, Ev::Wake { core });
            return;
        }
        // Steal: visit victims in random order; take the oldest compatible
        // item. Typed placements may only be stolen by cores of the same
        // type (paper §5.3); untyped (GRWS) items move anywhere. The victim
        // buffer is engine-owned scratch, refilled (not reallocated) and
        // reshuffled on every attempt — the RNG draw sequence is identical
        // to shuffling a freshly collected vector.
        let mut victims = std::mem::take(&mut self.steal_scratch);
        victims.clear();
        victims.extend((0..self.cores.len()).filter(|&v| v != core));
        // Fisher-Yates with the engine RNG for deterministic victim order.
        for i in (1..victims.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            victims.swap(i, j);
        }
        let mut found = None;
        for &v in &victims {
            let pos = self.cores[v]
                .queue
                .iter()
                .position(|q| q.placement.tc.is_none_or(|t| t == my_tc));
            if let Some(pos) = pos {
                found = Some((v, pos));
                break;
            }
        }
        self.steal_scratch = victims;
        if let Some((v, pos)) = found {
            let q = self.dequeue_at(v, pos);
            self.steals += 1;
            if !self.revise_and_route(sched, core, q, true) {
                self.push(self.now, Ev::Wake { core });
            }
        }
        // Otherwise nothing to do: the core sleeps until a Wake event.
    }

    /// Give the scheduler a dispatch-time chance to revise the placement.
    /// Returns `true` if the task started on `core`; `false` if it was
    /// re-routed to a core of the revised type.
    fn revise_and_route(
        &mut self,
        sched: &mut dyn Scheduler,
        core: usize,
        mut q: Queued,
        stolen: bool,
    ) -> bool {
        let revised = {
            let mut ctx = self.sched_ctx();
            sched.revise(&mut ctx, q.task, q.placement)
        };
        q.placement = revised;
        let my_tc = self.cores[core].tc;
        if let Some(want_tc) = revised.tc {
            if want_tc != my_tc {
                let target = self.pick_home_core(Some(want_tc));
                self.enqueue_back(target, q);
                self.push(self.now, Ev::Wake { core: target });
                return false;
            }
        }
        self.start_task(sched, core, q, stolen);
        true
    }

    /// Begin executing a task on `leader`, recruiting idle same-type cores
    /// up to the requested moldable width.
    fn start_task(&mut self, sched: &mut dyn Scheduler, leader: usize, q: Queued, stolen: bool) {
        let task = q.task;
        let kernel_id = self.graph.kernel_of(task);
        let spec = self.graph.kernel(kernel_id);
        let tc = self.cores[leader].tc;
        let cluster_size = self.machine.spec.cluster(tc).n_cores;
        let width_req = q
            .placement
            .width
            .min(spec.max_width)
            .min(cluster_size)
            .max(1);

        // Pinned (sampling) placements must measure at exactly the requested
        // frequencies: issue the requests and, if a transition is needed,
        // hold the task until it takes effect (the paper's sampler pins the
        // cluster frequency before timing).
        if let (Some((want_fc, want_fm)), false) = (q.placement.freq, q.placement.coordinate) {
            let r1 = self.ctrl[tc.index()].request(want_fc, self.now);
            let r2 = self.ctrl_mem.request(want_fm, self.now);
            if r1.transitioned {
                self.push(r1.effective_at, Ev::Dvfs);
                self.note_dvfs(tc.index(), r1.effective_at, want_fc);
                self.rail_dirty = true;
            }
            if r2.transitioned {
                self.push(r2.effective_at, Ev::Dvfs);
                self.note_dvfs(2, r2.effective_at, want_fm);
                self.rail_dirty = true;
            }
            let settle = r1.effective_at.max(r2.effective_at);
            let pending = self.ctrl[tc.index()].freq_at(self.now) != want_fc
                || self.ctrl_mem.freq_at(self.now) != want_fm;
            if pending && settle > self.now && q.pin_waits < 3 {
                let mut q = q;
                q.pin_waits += 1;
                self.enqueue_front(leader, q);
                self.push(settle, Ev::Wake { core: leader });
                return;
            }
        }

        // Gather cores for moldable execution: take currently free same-type
        // cores immediately; if short, reserve and wait (bounded patience)
        // for cores to finish their current tasks and join. The member
        // vector is recycled from completed tasks, so the steady state
        // allocates nothing.
        let mut members = self.take_core_vec();
        members.push(leader);
        if width_req > 1 {
            for i in 0..self.cores.len() {
                if members.len() >= width_req {
                    break;
                }
                let c = &self.cores[i];
                if i != leader && c.tc == tc && c.running.is_none() && !c.reserved {
                    members.push(i);
                }
            }
            if members.len() < width_req {
                for &m in &members {
                    self.cores[m].reserved = true;
                }
                let mold = WaitingMold {
                    q,
                    tc,
                    need: width_req,
                    members,
                    stolen,
                };
                let mi = if let Some(free) = self.molds.iter().position(|m| m.is_none()) {
                    self.molds[free] = Some(mold);
                    free
                } else {
                    self.molds.push(Some(mold));
                    self.molds.len() - 1
                };
                self.active_molds += 1;
                // Patience: at least the configured floor, and long enough
                // for every same-cluster task currently running to finish
                // and join (cores join waiting molds before taking new
                // work, so this bounds the wait without deadlock).
                let mut deadline = self.now + Duration::from_micros(self.cfg.mold_patience_us);
                for r in self.runnings.iter().flatten() {
                    if r.tc == tc {
                        deadline = deadline.max(r.finish_at + Duration::from_micros(10));
                    }
                }
                self.push(deadline, Ev::MoldTimeout { mold: mi });
                return;
            }
        }
        self.launch(sched, q, members, stolen);
    }

    /// Execute a task on the gathered member cores: issue coordinated
    /// frequency requests, compute the execution sample, and commit it.
    fn launch(&mut self, sched: &mut dyn Scheduler, q: Queued, members: Vec<usize>, stolen: bool) {
        let task = q.task;
        let kernel_id = self.graph.kernel_of(task);
        let spec = self.graph.kernel(kernel_id);
        let leader = members[0];
        let tc = self.cores[leader].tc;
        let width = members.len();

        // Coordinated frequency requests: blend with the current setting when
        // other tasks share the domain (paper §5.3). Sharer counts come from
        // the incrementally maintained per-type counters, not a slot scan.
        if let (Some((want_fc, want_fm)), true) = (q.placement.freq, q.placement.coordinate) {
            let others_cluster = self.running_per_type[tc.index()];
            let others_mem = self.running_count;
            let fc_t = self.cfg.coordination.blend(
                want_fc,
                self.ctrl[tc.index()].settled_freq(),
                others_cluster,
                &self.space.cpu_freqs_ghz,
            );
            let fm_t = self.cfg.coordination.blend(
                want_fm,
                self.ctrl_mem.settled_freq(),
                others_mem,
                &self.space.mem_freqs_ghz,
            );
            let r1 = self.ctrl[tc.index()].request(fc_t, self.now);
            if r1.transitioned {
                self.push(r1.effective_at, Ev::Dvfs);
                self.note_dvfs(tc.index(), r1.effective_at, fc_t);
            }
            let r2 = self.ctrl_mem.request(fm_t, self.now);
            if r2.transitioned {
                self.push(r2.effective_at, Ev::Dvfs);
                self.note_dvfs(2, r2.effective_at, fm_t);
            }
        }

        // Execute at the frequencies in effect *now*; a transition landing
        // later rescales the remainder.
        let fc_now = self.ctrl[tc.index()].freq_at(self.now);
        let fm_now = self.ctrl_mem.freq_at(self.now);
        let shape = spec.scaled_shape(self.graph.scale_of(task));
        // DRAM contention context: aggregate bandwidth demand of the other
        // running tasks (each task's demand was computed when it started).
        let other_demand_gbs = self
            .runnings
            .iter()
            .flatten()
            .map(|r| r.mem_demand_gbs)
            .sum::<f64>();
        let ctx = ExecContext { other_demand_gbs };
        let exec = self.machine.execute(
            &shape,
            tc,
            width,
            self.space.fc_ghz(fc_now),
            self.space.fm_ghz(fm_now),
            &ctx,
            &[
                task.0 as u64,
                tc.index() as u64,
                width as u64,
                fc_now.0 as u64,
                fm_now.0 as u64,
            ],
        );

        let slot = self.free_slots.pop().unwrap_or_else(|| {
            self.runnings.push(None);
            self.runnings.len() - 1
        });
        let duration_s = exec.duration.as_secs_f64().max(1e-12);
        self.next_token += 1;
        for &m in &members {
            self.cores[m].running = Some(slot);
            self.cores[m].reserved = false;
            self.core_busy[m] = true;
        }
        // `members` moves into the running slot (it is recycled at
        // completion); no per-launch clone.
        let running = Running {
            task,
            shape,
            tc,
            width,
            cores: members,
            started: self.now,
            finish_at: self.now + exec.duration,
            token: self.next_token,
            rescales: 0,
            fc_start: fc_now,
            fm_start: fm_now,
            fc_cur: fc_now,
            fm_cur: fm_now,
            cpu_dyn_w: exec.cpu_dyn_w,
            mem_dyn_w: exec.mem_dyn_w,
            mem_demand_gbs: shape.bytes_gb / duration_s,
            ctx,
            sampling: !q.placement.coordinate,
            stolen,
        };
        let finish_at = running.finish_at;
        let token = running.token;
        self.runnings[slot] = Some(running);
        self.running_count += 1;
        self.running_per_type[tc.index()] += 1;
        self.tasks_per_type[tc.index()] += 1;
        self.rail_dirty = true;
        self.push(finish_at, Ev::Done { slot, token });

        let mut ctx2 = self.sched_ctx();
        sched.task_started(&mut ctx2, task, leader, stolen);
    }

    /// A task's partitions all finished: free cores, notify the scheduler,
    /// wake dependents.
    fn handle_done(&mut self, sched: &mut dyn Scheduler, slot: usize, token: u64) {
        let valid = matches!(&self.runnings[slot], Some(r) if r.token == token);
        if !valid {
            return; // stale event (rescaled, or a later occupant of the slot)
        }
        let r = self.runnings[slot].take().expect("checked above");
        self.free_slots.push(slot);
        self.running_count -= 1;
        self.running_per_type[r.tc.index()] -= 1;
        self.rail_dirty = true;
        debug_assert_eq!(
            self.running_count,
            self.runnings.iter().filter(|r| r.is_some()).count()
        );
        for &c in &r.cores {
            self.cores[c].running = None;
            self.core_busy[c] = false;
            self.push(self.now, Ev::Wake { core: c });
        }
        let duration_s = self.now.since(r.started).as_secs_f64();
        self.total_task_time_s += duration_s;
        if r.sampling {
            self.sampling_time_s += duration_s;
        }
        self.completed += 1;

        let sample = ExecutedSample {
            task: r.task,
            kernel: self.graph.kernel_of(r.task),
            tc: r.tc,
            width: r.width,
            fc_start: r.fc_start,
            fm_start: r.fm_start,
            fc_end: self.ctrl[r.tc.index()].freq_at(self.now),
            fm_end: self.ctrl_mem.freq_at(self.now),
            duration_s,
            started_s: r.started.as_secs_f64(),
            stolen: r.stolen,
            perturbed: r.rescales > 0,
            scale: self.graph.scale_of(r.task),
        };
        if let Some(tr) = &mut self.trace_rec {
            tr.tasks.push(TaskSpan {
                task: r.task,
                kernel: self.graph.kernel(self.graph.kernel_of(r.task)).name.clone(),
                core: r.cores[0],
                cores: r.cores.clone(),
                tc: r.tc,
                start_s: r.started.as_secs_f64(),
                end_s: self.now.as_secs_f64(),
                fc: r.fc_start,
                fm: r.fm_start,
                sampling: r.sampling,
            });
        }
        {
            let mut ctx = self.sched_ctx();
            sched.task_completed(&mut ctx, &sample);
        }
        let task = r.task;
        self.recycle_core_vec(r.cores);

        // Wake dependents whose last dependency this was. The successor
        // slice borrows the graph (lifetime `'a`, independent of `self`),
        // so no defensive copy is needed while `make_ready` mutates state.
        let graph = self.graph;
        for &s in graph.successors(task) {
            let d = &mut self.indegree[s.index()];
            debug_assert!(*d > 0, "dependency counting underflow");
            *d -= 1;
            if *d == 0 {
                self.make_ready(sched, s);
            }
        }
    }

    fn apply_freq_command(&mut self, cmd: FreqCommand) {
        let (req, domain, freq) = match cmd {
            FreqCommand::Cluster(tc, f) => {
                (self.ctrl[tc.index()].request(f, self.now), tc.index(), f)
            }
            FreqCommand::Memory(f) => (self.ctrl_mem.request(f, self.now), 2, f),
        };
        if req.transitioned {
            self.push(req.effective_at, Ev::Dvfs);
            self.note_dvfs(domain, req.effective_at, freq);
            self.rail_dirty = true;
        }
    }

    /// Record a DVFS transition in the trace (if recording).
    fn note_dvfs(&mut self, domain: usize, at: SimTime, freq: FreqIndex) {
        if let Some(tr) = &mut self.trace_rec {
            tr.dvfs.push(DvfsSpan {
                domain,
                at_s: at.as_secs_f64(),
                freq,
            });
        }
    }

    /// A DVFS transition took effect: rescale every running task whose
    /// effective frequencies changed and refresh its power draw.
    fn rescale_all(&mut self) {
        // A transition landed: even if no running task's operating point
        // changes, the cluster idle draw follows the new frequency.
        self.rail_dirty = true;
        let n_slots = self.runnings.len();
        let mut self_token = self.next_token;
        for slot in 0..n_slots {
            let Some(r) = &self.runnings[slot] else {
                continue;
            };
            let fc_new = self.ctrl[r.tc.index()].freq_at(self.now);
            let fm_new = self.ctrl_mem.freq_at(self.now);
            if fc_new == r.fc_cur && fm_new == r.fm_cur {
                continue;
            }
            let r = self.runnings[slot].as_mut().expect("present");
            let t_old = self.machine.clean_time_s(
                &r.shape,
                r.tc,
                r.width,
                self.space.cpu_freqs_ghz[r.fc_cur.0],
                self.space.mem_freqs_ghz[r.fm_cur.0],
                &r.ctx,
            );
            let t_new = self.machine.clean_time_s(
                &r.shape,
                r.tc,
                r.width,
                self.space.cpu_freqs_ghz[fc_new.0],
                self.space.mem_freqs_ghz[fm_new.0],
                &r.ctx,
            );
            let remaining = r.finish_at.since(self.now.min(r.finish_at)).as_secs_f64();
            let remaining_new = if t_old > 0.0 {
                remaining * t_new / t_old
            } else {
                remaining
            };
            r.finish_at = self.now + joss_platform::Duration::from_secs_f64(remaining_new);
            r.rescales += 1;
            // Refresh power draw at the new operating point (deterministic:
            // keyed by task and configuration).
            let exec = self.machine.execute(
                &r.shape,
                r.tc,
                r.width,
                self.space.cpu_freqs_ghz[fc_new.0],
                self.space.mem_freqs_ghz[fm_new.0],
                &r.ctx,
                &[
                    r.task.0 as u64,
                    r.tc.index() as u64,
                    r.width as u64,
                    fc_new.0 as u64,
                    fm_new.0 as u64,
                ],
            );
            r.cpu_dyn_w = exec.cpu_dyn_w;
            r.mem_dyn_w = exec.mem_dyn_w;
            r.mem_demand_gbs =
                r.shape.bytes_gb / r.finish_at.since(r.started).as_secs_f64().max(1e-12);
            r.fc_cur = fc_new;
            r.fm_cur = fm_new;
            r.token = {
                self_token += 1;
                self_token
            };
            let (finish_at, token) = (r.finish_at, r.token);
            self.push(finish_at, Ev::Done { slot, token });
        }
        self.next_token = self_token;
    }

    /// Instantaneous rail powers: per-cluster idle + running dynamic CPU
    /// power; memory background + running dynamic memory power.
    fn rail_powers(&self) -> [f64; 3] {
        let fc_big = self.space.cpu_freqs_ghz[self.ctrl[0].freq_at(self.now).0];
        let fc_little = self.space.cpu_freqs_ghz[self.ctrl[1].freq_at(self.now).0];
        let fm = self.space.mem_freqs_ghz[self.ctrl_mem.freq_at(self.now).0];
        let mut big = self.machine.cluster_idle_w(CoreType::Big, fc_big);
        let mut little = self.machine.cluster_idle_w(CoreType::Little, fc_little);
        let mut mem = self.machine.mem_idle_w(fm);
        for r in self.runnings.iter().flatten() {
            match r.tc {
                CoreType::Big => big += r.cpu_dyn_w,
                CoreType::Little => little += r.cpu_dyn_w,
            }
            mem += r.mem_dyn_w;
        }
        [big, little, mem]
    }

    fn into_report(self, sched: &mut dyn Scheduler, graph: &TaskGraph) -> RunReport {
        let energy = EnergyAccount::from_measurements(&self.trace, &self.sensor, self.now);
        RunReport {
            scheduler: sched.name().to_string(),
            benchmark: graph.name().to_string(),
            energy,
            tasks: self.completed,
            tasks_per_type: self.tasks_per_type,
            steals: self.steals,
            mold_timeouts: self.mold_timeouts,
            dvfs_transitions: self.ctrl[0].n_transitions
                + self.ctrl[1].n_transitions
                + self.ctrl_mem.n_transitions,
            dvfs_serialized: self.ctrl[0].n_serialized
                + self.ctrl[1].n_serialized
                + self.ctrl_mem.n_serialized,
            sampling_time_s: self.sampling_time_s,
            total_task_time_s: self.total_task_time_s,
            search_evaluations: sched.search_evaluations(),
            selected_configs: sched.selected_configs(),
            trace: self.trace_rec,
        }
    }
}
