//! # joss-core — the JOSS runtime
//!
//! The paper's primary contribution: a runtime scheduling framework for
//! task-based parallel applications that jointly tunes core type, core
//! count, CPU cluster frequency and memory frequency per task to hit a
//! selected energy/performance trade-off.
//!
//! Architecture (paper Fig. 3):
//!
//! * [`engine`] — the execution engine (work queues, stealing, moldable
//!   execution, DVFS controllers, power integration) over the simulated
//!   platform;
//! * [`sched`] — the policies: [`sched::GrwsSched`] (baseline),
//!   [`sched::EraseSched`], [`sched::AequitasSched`], and
//!   [`sched::ModelSched`] which realizes both STEER and all JOSS variants;
//! * [`sampling`] — the per-kernel online sampling state machine (§5.1);
//! * [`coordination`] — frequency coordination heuristics for shared
//!   resources (§5.3);
//! * [`metrics`] — run reports (energy, makespan, overhead counters);
//! * [`native`] — a real multithreaded work-stealing executor validating the
//!   runtime API on OS threads (no DVFS; wall-clock time).
//!
//! ## Quick start
//!
//! ```
//! use joss_core::engine::{EngineConfig, SimEngine};
//! use joss_core::sched::ModelSched;
//! use joss_dag::generators;
//! use joss_dag::KernelSpec;
//! use joss_models::{ModelSet, TrainingConfig};
//! use joss_platform::{ConfigSpace, MachineModel, TaskShape};
//! use std::sync::Arc;
//!
//! // 1. A TX2-like platform and its one-time characterization.
//! let machine = MachineModel::tx2(42);
//! let space = ConfigSpace::from_spec(&machine.spec);
//! let mut tc = TrainingConfig::tx2_default(&space);
//! tc.reps = 1; // keep the doctest fast
//! let models = Arc::new(ModelSet::train(&machine, tc));
//!
//! // 2. An application: 64 independent matrix-multiply-like tasks.
//! let kernel = KernelSpec::new("mm", TaskShape::new(0.03, 0.002));
//! let graph = generators::independent("mm_bag", kernel, 64);
//!
//! // 3. Run it under JOSS and inspect the energy account.
//! let mut sched = ModelSched::joss(models);
//! let report = SimEngine::run(&machine, &graph, &mut sched, EngineConfig::default());
//! assert_eq!(report.tasks, 64);
//! assert!(report.total_j() > 0.0);
//! ```

pub mod arena;
pub mod coordination;
pub mod engine;
pub mod equeue;
pub mod metrics;
pub mod native;
pub mod placement;
pub mod sampling;
pub mod sched;
pub mod trace;

pub use arena::EngineArena;
pub use coordination::Coordination;
pub use engine::{EngineConfig, SimEngine};
pub use equeue::CalendarQueue;
pub use metrics::RunReport;
pub use placement::{ExecutedSample, FreqCommand, Placement};
pub use sched::{
    AequitasSched, CataSched, EraseSched, FixedSched, GrwsSched, ModelSched, SchedCtx, Scheduler,
    SearchKind, Target,
};
pub use trace::ExecTrace;
