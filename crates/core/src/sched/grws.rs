//! GRWS: greedy random work stealing (paper §6.2, baseline).
//!
//! The widely used default of task runtimes (Cilk, TBB, OpenMP): keep idle
//! cores busy by stealing; one core per task; no DVFS — every domain stays
//! at its maximum frequency.

use crate::placement::Placement;
use crate::sched::{SchedCtx, Scheduler};
use joss_dag::TaskId;

/// The GRWS baseline scheduler.
#[derive(Debug, Default, Clone)]
pub struct GrwsSched;

impl GrwsSched {
    /// New GRWS scheduler.
    pub fn new() -> Self {
        GrwsSched
    }
}

impl Scheduler for GrwsSched {
    fn name(&self) -> &str {
        "GRWS"
    }

    fn place(&mut self, _ctx: &mut SchedCtx<'_>, _task: TaskId) -> Placement {
        Placement::anywhere()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joss_dag::{KernelSpec, TaskGraphBuilder};
    use joss_platform::TaskShape;

    #[test]
    fn always_places_anywhere() {
        let mut b = TaskGraphBuilder::new();
        let k = b.add_kernel(KernelSpec::new("k", TaskShape::new(0.01, 0.001)));
        let t = b.add_task(k, &[]).unwrap();
        let g = b.build("g").unwrap();
        let space = joss_platform::ConfigSpace::from_spec(&joss_platform::PlatformSpec::tx2_like());
        use joss_platform::CoreType::{Big, Little};
        let mut ctx = SchedCtx {
            space: &space,
            graph: &g,
            now_s: 0.0,
            running_tasks: 0,
            settled_fc: [space.fc_max(), space.fc_max()],
            settled_fm: space.fm_max(),
            queue_lens: &[0; 6],
            core_busy: &[false; 6],
            core_tc: &[Big, Big, Little, Little, Little, Little],
        };
        let mut s = GrwsSched::new();
        let p = s.place(&mut ctx, t);
        assert_eq!(p, Placement::anywhere());
        assert_eq!(s.name(), "GRWS");
    }
}
