//! The model-based schedulers: JOSS (all variants) and STEER.
//!
//! Both share one pipeline (paper Fig. 6):
//!
//! 1. **Online sampling** — each kernel's first invocations are used to time
//!    it at every admissible `<TC,NC>` at two core frequencies (§5.1);
//! 2. **Model prediction** — MB is derived (Eq. 3) and the per-kernel lookup
//!    tables are filled from the trained MPR models;
//! 3. **Configuration selection** — a search (steepest descent by default,
//!    §5.2) picks the configuration meeting the trade-off target;
//! 4. **Steady state** — every later invocation of the kernel uses the
//!    cached configuration; fine-grained kernels issue DVFS requests only
//!    once per coarsened batch (§5.3).
//!
//! STEER is the same machinery with the CPU-energy objective and no memory
//! DVFS; the paper's JOSS_NoMemDVFS pins `fM` but keeps the total-energy
//! objective.

use crate::placement::{ExecutedSample, Placement};
use crate::sampling::KernelSampler;
use crate::sched::{SchedCtx, Scheduler};
use joss_dag::{KernelId, TaskId};
use joss_models::{
    constrained_search, exhaustive_search, fastest_config, steepest_descent_search,
    EnergyEstimator, ModelSet, Objective, SearchOutcome,
};
use joss_platform::KnobConfig;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// Energy/performance trade-off target (§5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// Scenario 1: minimize total (or CPU) energy.
    MinEnergy,
    /// Scenario 2: minimize energy subject to a per-task speedup constraint
    /// relative to the MinEnergy configuration.
    Speedup(f64),
    /// Maximize per-task performance regardless of energy (MAXP).
    MaxPerf,
}

/// Which search algorithm selects configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchKind {
    /// The paper's pruning search (Fig. 7).
    SteepestDescent,
    /// Full enumeration (§7.4 comparison baseline and test oracle).
    Exhaustive,
}

/// Per-kernel learning state.
enum KernelState {
    Sampling(KernelSampler),
    Ready {
        config: KnobConfig,
        /// Issue a DVFS request every `batch` tasks (1 = every task);
        /// `batch > 1` is the §5.3 coarsening of fine-grained kernels.
        batch: u64,
        /// Tasks placed since the last DVFS request.
        since_request: u64,
    },
}

/// JOSS / STEER scheduler.
pub struct ModelSched {
    name: String,
    models: Arc<ModelSet>,
    objective: Objective,
    mem_dvfs: bool,
    target: Target,
    search: SearchKind,
    /// Kernels with predicted task time below this are "fine-grained" and
    /// get coarsened DVFS requests (§5.3).
    pub coarsen_threshold_s: f64,
    kernels: Vec<Option<KernelState>>,
    inflight: HashMap<TaskId, (KernelId, usize)>,
    search_evals: u64,
    selected: BTreeMap<String, KnobConfig>,
}

impl ModelSched {
    fn new(
        name: impl Into<String>,
        models: Arc<ModelSet>,
        objective: Objective,
        mem_dvfs: bool,
        target: Target,
    ) -> Self {
        ModelSched {
            name: name.into(),
            models,
            objective,
            mem_dvfs,
            target,
            search: SearchKind::SteepestDescent,
            coarsen_threshold_s: 200e-6,
            kernels: Vec::new(),
            inflight: HashMap::new(),
            search_evals: 0,
            selected: BTreeMap::new(),
        }
    }

    /// JOSS: joint `<TC,NC,fC,fM>` selection minimizing total energy.
    pub fn joss(models: Arc<ModelSet>) -> Self {
        Self::new(
            "JOSS",
            models,
            Objective::TotalEnergy,
            true,
            Target::MinEnergy,
        )
    }

    /// JOSS without the memory DVFS knob (`fM` pinned at maximum) but still
    /// optimizing total energy.
    pub fn joss_no_mem_dvfs(models: Arc<ModelSet>) -> Self {
        Self::new(
            "JOSS_NoMemDVFS",
            models,
            Objective::TotalEnergy,
            false,
            Target::MinEnergy,
        )
    }

    /// JOSS under a performance constraint: per-task speedup relative to the
    /// minimum-energy configuration.
    pub fn joss_with_speedup(models: Arc<ModelSet>, speedup: f64) -> Self {
        assert!(speedup > 0.0);
        Self::new(
            format!("JOSS+{speedup}X"),
            models,
            Objective::TotalEnergy,
            true,
            Target::Speedup(speedup),
        )
    }

    /// JOSS maximizing per-task performance (MAXP).
    pub fn joss_maxp(models: Arc<ModelSet>) -> Self {
        Self::new(
            "JOSS+MAXP",
            models,
            Objective::TotalEnergy,
            true,
            Target::MaxPerf,
        )
    }

    /// STEER: `<TC,NC,fC>` selection minimizing CPU energy (no memory DVFS,
    /// memory energy invisible to the objective).
    pub fn steer(models: Arc<ModelSet>) -> Self {
        Self::new(
            "STEER",
            models,
            Objective::CpuEnergy,
            false,
            Target::MinEnergy,
        )
    }

    /// Override the search algorithm (default: steepest descent).
    pub fn with_search(mut self, search: SearchKind) -> Self {
        self.search = search;
        self
    }

    /// Override the fine-grained coarsening threshold.
    pub fn with_coarsen_threshold(mut self, seconds: f64) -> Self {
        self.coarsen_threshold_s = seconds;
        self
    }

    /// The trained model set in use.
    pub fn models(&self) -> &ModelSet {
        &self.models
    }

    fn ensure_kernel(&mut self, ctx: &SchedCtx<'_>, kernel: KernelId) {
        if self.kernels.len() < ctx.graph.n_kernels() {
            self.kernels.resize_with(ctx.graph.n_kernels(), || None);
        }
        if self.kernels[kernel.index()].is_none() {
            let max_width = ctx.graph.kernel(kernel).max_width;
            let sampler = KernelSampler::two_freq_plan(
                &self.models.space,
                max_width,
                self.models.cfg.fc_ref,
                self.models.cfg.fc_alt,
                self.models.cfg.fm_ref,
            );
            self.kernels[kernel.index()] = Some(KernelState::Sampling(sampler));
        }
    }

    /// Run the configuration search for a fully sampled kernel.
    fn finalize_kernel(&mut self, ctx: &SchedCtx<'_>, kernel: KernelId) {
        let Some(KernelState::Sampling(sampler)) = &self.kernels[kernel.index()] else {
            return;
        };
        let samples = sampler.two_freq_samples(self.models.indexer(), self.models.cfg.fc_ref);
        if samples.iter().all(|s| s.is_none()) {
            // Sampling failed entirely (pathologically contended run): fall
            // back to the fastest cluster at maximum frequencies.
            let space = &self.models.space;
            let fallback = KnobConfig::new(
                joss_platform::CoreType::Big,
                joss_platform::NcIndex(0),
                space.fc_max(),
                space.fm_max(),
            );
            self.selected
                .insert(ctx.graph.kernel(kernel).name.clone(), fallback);
            self.kernels[kernel.index()] = Some(KernelState::Ready {
                config: fallback,
                batch: 1,
                since_request: 0,
            });
            return;
        }
        let tables = self.models.build_kernel_tables(&samples);
        let max_width = ctx.graph.kernel(kernel).max_width;
        let est = EnergyEstimator {
            space: &self.models.space,
            tables: &tables,
            idle: &self.models.idle,
            objective: self.objective,
            concurrency: ctx.running_tasks.max(1) as f64,
            max_width,
        };
        let base: SearchOutcome = match self.search {
            SearchKind::SteepestDescent => steepest_descent_search(&est, self.mem_dvfs),
            SearchKind::Exhaustive => exhaustive_search(&est, self.mem_dvfs),
        };
        self.search_evals += base.stats.evaluations;
        let outcome = match self.target {
            Target::MinEnergy => base,
            Target::Speedup(s) => {
                let c = constrained_search(&est, self.mem_dvfs, base.config, s);
                self.search_evals += c.stats.evaluations;
                c
            }
            Target::MaxPerf => {
                let f = fastest_config(&est, self.mem_dvfs);
                self.search_evals += f.stats.evaluations;
                f
            }
        };
        if std::env::var_os("JOSS_DEBUG_FINALIZE").is_some() {
            eprintln!(
                "[{}] finalize kernel '{}' (running={}):",
                self.name,
                ctx.graph.kernel(kernel).name,
                ctx.running_tasks
            );
            for (i, (tc, nc)) in self.models.indexer().iter().enumerate() {
                if let Some((tr, ta)) = samples[i] {
                    eprintln!(
                        "   <{},{}> t_ref={:.6} t_alt={:.6} mb={:.3}",
                        tc.paper_name(),
                        self.models.space.nc_count(tc, nc),
                        tr,
                        ta,
                        tables.mb_of(tc, nc)
                    );
                }
            }
            eprintln!(
                "   chosen {} E_pred={:.6} t_pred={:.6}",
                self.models.space.label(outcome.config),
                outcome.energy_j,
                tables.time_s(outcome.config)
            );
        }
        let task_time_s = tables.time_s(outcome.config);
        let batch = if task_time_s < self.coarsen_threshold_s && task_time_s > 0.0 {
            ((self.coarsen_threshold_s / task_time_s).ceil() as u64).clamp(1, 64)
        } else {
            1
        };
        self.selected
            .insert(ctx.graph.kernel(kernel).name.clone(), outcome.config);
        self.kernels[kernel.index()] = Some(KernelState::Ready {
            config: outcome.config,
            batch,
            since_request: 0,
        });
    }
}

impl Scheduler for ModelSched {
    fn name(&self) -> &str {
        &self.name
    }

    fn place(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Placement {
        let kernel = ctx.graph.kernel_of(task);
        self.ensure_kernel(ctx, kernel);
        match self.kernels[kernel.index()].as_mut().expect("ensured") {
            KernelState::Sampling(sampler) => {
                if let Some(cell) = sampler.next_cell() {
                    let placement = sampler.placement_for(cell);
                    self.inflight.insert(task, (kernel, cell));
                    placement
                } else {
                    // All cells are in flight but the kernel is not finalized
                    // yet: run like the baseline until predictions exist.
                    Placement::anywhere()
                }
            }
            KernelState::Ready {
                config,
                batch,
                since_request,
                ..
            } => {
                let width = self.models.space.nc_count(config.tc, config.nc);
                let request = *since_request % *batch == 0;
                *since_request += 1;
                if request {
                    Placement::throttled(config.tc, width, config.fc, config.fm)
                } else {
                    Placement::on(config.tc, width)
                }
            }
        }
    }

    fn revise(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId, current: Placement) -> Placement {
        if self.inflight.contains_key(&task) {
            return current; // already carries a sampling assignment
        }
        let kernel = ctx.graph.kernel_of(task);
        self.ensure_kernel(ctx, kernel);
        match self.kernels[kernel.index()].as_mut().expect("ensured") {
            KernelState::Sampling(sampler) => {
                if let Some(cell) = sampler.next_cell() {
                    let placement = sampler.placement_for(cell);
                    self.inflight.insert(task, (kernel, cell));
                    placement
                } else {
                    current
                }
            }
            KernelState::Ready {
                config,
                batch,
                since_request,
            } => {
                let width = self.models.space.nc_count(config.tc, config.nc);
                if current.tc == Some(config.tc) && current.width == width {
                    return current; // already configured by place()
                }
                let request = *since_request % *batch == 0;
                *since_request += 1;
                if request {
                    Placement::throttled(config.tc, width, config.fc, config.fm)
                } else {
                    Placement::on(config.tc, width)
                }
            }
        }
    }

    fn task_completed(&mut self, ctx: &mut SchedCtx<'_>, sample: &ExecutedSample) {
        let Some((kernel, cell)) = self.inflight.remove(&sample.task) else {
            return;
        };
        let complete = {
            let Some(KernelState::Sampling(sampler)) = self.kernels[kernel.index()].as_mut() else {
                return;
            };
            let accepted = sampler.record(cell, sample);
            if std::env::var_os("JOSS_DEBUG_SAMPLER").is_some() {
                eprintln!(
                    "[{}] record cell {cell} ({:?}/{} fc {:?}) task {} width {} fc_start {:?} clean {} -> {}",
                    self.name,
                    sampler.plan()[cell].tc,
                    sampler.plan()[cell].width,
                    sampler.plan()[cell].fc,
                    sample.task,
                    sample.width,
                    sample.fc_start,
                    sample.is_clean(),
                    if accepted { "ACCEPT" } else { "reject" },
                );
            }
            sampler.is_complete()
        };
        if complete {
            self.finalize_kernel(ctx, kernel);
        }
    }

    fn search_evaluations(&self) -> u64 {
        self.search_evals
    }

    fn selected_configs(&self) -> BTreeMap<String, KnobConfig> {
        self.selected.clone()
    }
}
