//! A criticality-aware comparator (extension, not in the paper's Fig. 8).
//!
//! CATA [Castillo et al., IPDPS'16 — §8 of the JOSS paper] accelerates
//! tasks on the application's critical path and relegates non-critical
//! tasks to slow, efficient resources. This implementation computes static
//! bottom-level criticality (longest path to a sink) when it first sees a
//! graph, then:
//!
//! * tasks in the top criticality band run on big cores at maximum
//!   frequency;
//! * everything else runs on little cores at a low frequency.
//!
//! It demonstrates how a different policy family plugs into the same
//! runtime, and serves as an ablation: criticality alone (no models, no
//! memory knob) recovers some of GRWS's waste but cannot match JOSS.

use crate::placement::Placement;
use crate::sched::{SchedCtx, Scheduler};
use joss_dag::{TaskGraph, TaskId};
use joss_platform::{CoreType, FreqIndex};

/// The criticality-aware scheduler.
pub struct CataSched {
    /// Bottom-level (longest path to a sink, in tasks) per task.
    bottom_level: Vec<u32>,
    /// Tasks with bottom level >= this run on the fast path.
    threshold: u32,
    /// Slow-path core frequency.
    slow_fc: FreqIndex,
}

impl CataSched {
    /// Build for a graph, marking the top `critical_frac` of the bottom-level
    /// range as critical (0.5 = upper half of the criticality range).
    pub fn new(graph: &TaskGraph, critical_frac: f64) -> Self {
        let bottom_level = Self::compute_bottom_levels(graph);
        let max_bl = bottom_level.iter().copied().max().unwrap_or(1);
        let threshold = ((max_bl as f64) * (1.0 - critical_frac.clamp(0.0, 1.0))).ceil() as u32;
        CataSched {
            bottom_level,
            threshold: threshold.max(1),
            slow_fc: FreqIndex(2),
        }
    }

    /// Longest path (in tasks) from each task to any sink: one reverse pass
    /// over the topologically ordered storage.
    fn compute_bottom_levels(graph: &TaskGraph) -> Vec<u32> {
        let n = graph.n_tasks();
        let mut bl = vec![1u32; n];
        for t in (0..n).rev() {
            for &s in graph.successors(TaskId(t as u32)) {
                bl[t] = bl[t].max(bl[s.index()] + 1);
            }
        }
        bl
    }

    /// Whether a task sits on the fast (critical) path.
    pub fn is_critical(&self, task: TaskId) -> bool {
        self.bottom_level[task.index()] >= self.threshold
    }
}

impl Scheduler for CataSched {
    fn name(&self) -> &str {
        "CATA"
    }

    fn place(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Placement {
        let fm = ctx.settled_fm;
        if self.is_critical(task) {
            Placement::throttled(CoreType::Big, 1, ctx.space.fc_max(), fm)
        } else {
            Placement::throttled(CoreType::Little, 1, self.slow_fc, fm)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, SimEngine};
    use joss_dag::{generators, KernelSpec, TaskGraphBuilder};
    use joss_platform::{MachineModel, TaskShape};

    fn kernel() -> KernelSpec {
        KernelSpec::new("k", TaskShape::new(0.01, 0.002))
    }

    #[test]
    fn bottom_levels_of_a_chain_decrease() {
        let g = generators::chain("c", kernel(), 5);
        let s = CataSched::new(&g, 0.5);
        assert_eq!(s.bottom_level, vec![5, 4, 3, 2, 1]);
        assert!(s.is_critical(TaskId(0)));
        assert!(!s.is_critical(TaskId(4)));
    }

    #[test]
    fn side_chains_are_not_critical() {
        // A long spine with one short side branch: the spine is critical.
        let mut b = TaskGraphBuilder::new();
        let k = b.add_kernel(kernel());
        let mut spine = b.add_task(k, &[]).unwrap();
        let side = b.add_task(k, &[spine]).unwrap(); // short branch
        for _ in 0..6 {
            spine = b.add_task(k, &[spine]).unwrap();
        }
        let g = b.build("spine").unwrap();
        let s = CataSched::new(&g, 0.5);
        assert!(s.is_critical(TaskId(0)));
        assert!(
            !s.is_critical(side),
            "the short branch must not be critical"
        );
    }

    #[test]
    fn runs_to_completion_and_splits_clusters() {
        let machine = MachineModel::tx2(3);
        // Spine + many leaves: critical work on big, leaves on little.
        let mut b = TaskGraphBuilder::new();
        let k = b.add_kernel(kernel());
        let mut spine = b.add_task(k, &[]).unwrap();
        for _ in 0..20 {
            for _ in 0..3 {
                b.add_task(k, &[spine]).unwrap(); // leaves
            }
            spine = b.add_task(k, &[spine]).unwrap();
        }
        let g = b.build("cata").unwrap();
        let mut sched = CataSched::new(&g, 0.5);
        let report = SimEngine::run(&machine, &g, &mut sched, EngineConfig::default());
        assert_eq!(report.tasks, g.n_tasks());
        assert!(report.tasks_per_type[0] > 0, "critical spine on big cores");
        assert!(report.tasks_per_type[1] > 0, "leaves on little cores");
    }

    #[test]
    fn beats_nothing_but_completes_cheaper_than_worst_case() {
        // Smoke energy comparison against GRWS on a criticality-rich DAG.
        let machine = MachineModel::tx2(3);
        let g = generators::fork_join("fj", &[kernel()], kernel(), 10, 12);
        let mut cata = CataSched::new(&g, 0.3);
        let r1 = SimEngine::run(&machine, &g, &mut cata, EngineConfig::default());
        let mut grws = crate::sched::GrwsSched::new();
        let r2 = SimEngine::run(&machine, &g, &mut grws, EngineConfig::default());
        assert_eq!(r1.tasks, r2.tasks);
        // CATA throttles the wide fan-outs: it must not cost more energy.
        assert!(
            r1.total_j() < r2.total_j() * 1.1,
            "{} vs {}",
            r1.total_j(),
            r2.total_j()
        );
    }
}
