//! Aequitas (paper §6.2 comparator): heuristic coordinated energy
//! management extending HERMES.
//!
//! Aequitas is model-free. It assigns a *desired* core frequency per core
//! from work-stealing relations — a core that steals is a *thief* and slows
//! down; a core with a deep work queue speeds up. On cluster-based DVFS
//! platforms, each active core programs the whole cluster's frequency for a
//! short interval (1 s) in round-robin time slices. It uses neither the
//! memory DVFS knob nor moldable execution.

use crate::placement::{FreqCommand, Placement};
use crate::sched::{SchedCtx, Scheduler};
use joss_dag::TaskId;
use joss_platform::{CoreType, Duration, FreqIndex};

/// Queue depth above which a core wants to speed up.
const QUEUE_PRESSURE: usize = 4;

/// The Aequitas scheduler.
pub struct AequitasSched {
    /// Desired frequency index per core (engine core numbering).
    desired: Vec<FreqIndex>,
    /// Round-robin token per cluster.
    token: [usize; 2],
    /// Time-slice length.
    slice: Duration,
    /// Highest frequency index (set on first callback).
    fc_max: FreqIndex,
}

impl AequitasSched {
    /// New Aequitas scheduler with the paper's 1 s time slice.
    pub fn new() -> Self {
        AequitasSched {
            desired: Vec::new(),
            token: [0, 0],
            slice: Duration::from_secs_f64(1.0),
            fc_max: FreqIndex(0),
        }
    }

    /// Override the time slice (for fast tests and short benchmarks).
    pub fn with_slice(mut self, slice: Duration) -> Self {
        self.slice = slice;
        self
    }

    fn ensure_cores(&mut self, ctx: &SchedCtx<'_>) {
        if self.desired.len() < ctx.queue_lens.len() {
            self.fc_max = ctx.space.fc_max();
            self.desired = vec![self.fc_max; ctx.queue_lens.len()];
        }
    }
}

impl Default for AequitasSched {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for AequitasSched {
    fn name(&self) -> &str {
        "Aequitas"
    }

    fn place(&mut self, ctx: &mut SchedCtx<'_>, _task: TaskId) -> Placement {
        self.ensure_cores(ctx);
        Placement::anywhere()
    }

    fn task_started(&mut self, ctx: &mut SchedCtx<'_>, _task: TaskId, core: usize, stolen: bool) {
        self.ensure_cores(ctx);
        if stolen {
            // Thief cores slow down (HERMES' workpath heuristic), bounded at
            // the mid ladder so victims are not starved indefinitely.
            self.desired[core] = FreqIndex(self.desired[core].0.saturating_sub(1).max(3));
        } else if ctx.queue_lens[core] >= QUEUE_PRESSURE {
            // Deep queue: speed up (workload heuristic).
            self.desired[core] = FreqIndex((self.desired[core].0 + 1).min(self.fc_max.0));
        }
    }

    fn timer_interval(&self) -> Option<Duration> {
        Some(self.slice)
    }

    fn on_timer(&mut self, ctx: &mut SchedCtx<'_>, out: &mut Vec<FreqCommand>) {
        self.ensure_cores(ctx);
        for tc in CoreType::ALL {
            // Active cores of this cluster: running or with queued work.
            // Count-then-select keeps the tick allocation-free; the chosen
            // core is identical to indexing a collected active list.
            let is_active =
                |c: usize| ctx.core_tc[c] == tc && (ctx.core_busy[c] || ctx.queue_lens[c] > 0);
            let n_active = (0..ctx.core_tc.len()).filter(|&c| is_active(c)).count();
            if n_active == 0 {
                continue;
            }
            let slot = self.token[tc.index()] % n_active;
            self.token[tc.index()] = self.token[tc.index()].wrapping_add(1);
            let core = (0..ctx.core_tc.len())
                .filter(|&c| is_active(c))
                .nth(slot)
                .expect("slot < n_active");
            out.push(FreqCommand::Cluster(tc, self.desired[core]));
        }
    }
}
