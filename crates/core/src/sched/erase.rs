//! ERASE (paper §6.2 comparator): energy-efficient task mapping without
//! DVFS.
//!
//! ERASE combines an *online history-based performance model* — measured
//! execution times per `<TC, NC>` — with an *offline categorized CPU power
//! model*, and picks the `<TC, NC>` that minimizes CPU energy (dynamic +
//! attributed idle). It never touches the DVFS knobs: everything runs at the
//! maximum frequencies.
//!
//! The offline power table here is derived from the same platform
//! characterization the other model-based schedulers use: the mean predicted
//! CPU dynamic power per `<TC,NC>` at maximum frequency across the
//! memory-boundness range (a coarse "category average", substituting for
//! ERASE's workload-category tables).

use crate::placement::{ExecutedSample, Placement};
use crate::sampling::KernelSampler;
use crate::sched::{SchedCtx, Scheduler};
use joss_dag::{KernelId, TaskId};
use joss_models::ModelSet;
use joss_platform::{KnobConfig, NcIndex};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The ERASE scheduler.
pub struct EraseSched {
    models: Arc<ModelSet>,
    /// Offline CPU power table: mean dynamic watts per dense `<TC,NC>` at
    /// maximum frequency.
    offline_cpu_w: Vec<f64>,
    kernels: Vec<Option<KernelState>>,
    inflight: HashMap<TaskId, (KernelId, usize)>,
    selected: BTreeMap<String, KnobConfig>,
    search_evals: u64,
}

enum KernelState {
    Sampling(KernelSampler),
    Ready { config: KnobConfig },
}

impl EraseSched {
    /// Build from a trained model set.
    pub fn new(models: Arc<ModelSet>) -> Self {
        let fc_max_ghz = models.space.fc_ghz(models.space.fc_max());
        let offline_cpu_w = models
            .indexer()
            .iter()
            .map(|(tc, nc)| {
                // Category-average power: mean over the MB range.
                let m = &models.models(tc, nc).cpu;
                let grid = [0.05, 0.25, 0.5, 0.75, 0.95];
                grid.iter()
                    .map(|&mb| m.predict_w(mb, fc_max_ghz))
                    .sum::<f64>()
                    / grid.len() as f64
            })
            .collect();
        EraseSched {
            models,
            offline_cpu_w,
            kernels: Vec::new(),
            inflight: HashMap::new(),
            selected: BTreeMap::new(),
            search_evals: 0,
        }
    }

    fn ensure_kernel(&mut self, ctx: &SchedCtx<'_>, kernel: KernelId) {
        if self.kernels.len() < ctx.graph.n_kernels() {
            self.kernels.resize_with(ctx.graph.n_kernels(), || None);
        }
        if self.kernels[kernel.index()].is_none() {
            let max_width = ctx.graph.kernel(kernel).max_width;
            let sampler = KernelSampler::max_freq_plan(&self.models.space, max_width);
            self.kernels[kernel.index()] = Some(KernelState::Sampling(sampler));
        }
    }

    fn finalize_kernel(&mut self, ctx: &SchedCtx<'_>, kernel: KernelId) {
        let Some(KernelState::Sampling(sampler)) = &self.kernels[kernel.index()] else {
            return;
        };
        let space = &self.models.space;
        let fc_max = space.fc_max();
        let fm_max = space.fm_max();
        let observed = ctx.running_tasks.max(1) as f64;
        let mut best: Option<(KnobConfig, f64)> = None;
        for (cell, c) in sampler.plan().iter().enumerate() {
            let Some(t) = sampler.time_of(cell) else {
                continue;
            };
            let dense = self.models.indexer().index(c.tc, c.nc);
            let idle = self.models.idle.cluster_idle_w(c.tc, fc_max);
            // Idle is shared by at most cluster_size/width concurrent tasks.
            let cluster_cores = *space.nc_options[c.tc.index()].last().expect("non-empty") as f64;
            let conc = (cluster_cores / c.width as f64).min(observed).max(1.0);
            let e = (self.offline_cpu_w[dense] + idle / conc) * t;
            self.search_evals += 1;
            if best.is_none_or(|(_, be)| e < be) {
                best = Some((KnobConfig::new(c.tc, c.nc, fc_max, fm_max), e));
            }
        }
        let (config, _) = best.unwrap_or_else(|| {
            // Every cell failed to sample: fall back to big cores at max.
            (
                KnobConfig::new(joss_platform::CoreType::Big, NcIndex(0), fc_max, fm_max),
                0.0,
            )
        });
        self.selected
            .insert(ctx.graph.kernel(kernel).name.clone(), config);
        self.kernels[kernel.index()] = Some(KernelState::Ready { config });
    }

    /// The chosen `<TC,NC>` for a kernel once learning finished (test hook).
    pub fn chosen(&self, kernel: KernelId) -> Option<(joss_platform::CoreType, NcIndex)> {
        match self.kernels.get(kernel.index())? {
            Some(KernelState::Ready { config }) => Some((config.tc, config.nc)),
            _ => None,
        }
    }
}

impl Scheduler for EraseSched {
    fn name(&self) -> &str {
        "ERASE"
    }

    fn place(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Placement {
        let kernel = ctx.graph.kernel_of(task);
        self.ensure_kernel(ctx, kernel);
        match self.kernels[kernel.index()].as_mut().expect("ensured") {
            KernelState::Sampling(sampler) => {
                if let Some(cell) = sampler.next_cell() {
                    let placement = sampler.placement_for(cell);
                    self.inflight.insert(task, (kernel, cell));
                    placement
                } else {
                    Placement::anywhere()
                }
            }
            KernelState::Ready { config } => {
                let width = self.models.space.nc_count(config.tc, config.nc);
                Placement::on(config.tc, width)
            }
        }
    }

    fn revise(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId, current: Placement) -> Placement {
        if self.inflight.contains_key(&task) {
            return current;
        }
        let kernel = ctx.graph.kernel_of(task);
        self.ensure_kernel(ctx, kernel);
        match self.kernels[kernel.index()].as_mut().expect("ensured") {
            KernelState::Sampling(sampler) => {
                if let Some(cell) = sampler.next_cell() {
                    let placement = sampler.placement_for(cell);
                    self.inflight.insert(task, (kernel, cell));
                    placement
                } else {
                    current
                }
            }
            KernelState::Ready { config } => {
                let width = self.models.space.nc_count(config.tc, config.nc);
                Placement::on(config.tc, width)
            }
        }
    }

    fn task_completed(&mut self, ctx: &mut SchedCtx<'_>, sample: &ExecutedSample) {
        let Some((kernel, cell)) = self.inflight.remove(&sample.task) else {
            return;
        };
        let complete = {
            let Some(KernelState::Sampling(sampler)) = self.kernels[kernel.index()].as_mut() else {
                return;
            };
            sampler.record(cell, sample);
            sampler.is_complete()
        };
        if complete {
            self.finalize_kernel(ctx, kernel);
        }
    }

    fn search_evaluations(&self) -> u64 {
        self.search_evals
    }

    fn selected_configs(&self) -> BTreeMap<String, KnobConfig> {
        self.selected.clone()
    }
}
