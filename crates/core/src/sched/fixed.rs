//! A scheduler that pins every task to one configuration.
//!
//! Not a policy from the paper — it is the measurement instrument behind
//! the motivation experiments (Figs. 1 and 2), which sweep the entire
//! `<TC, NC, fC, fM>` space by running the whole application at each
//! configuration and measuring energy and time.

use crate::placement::Placement;
use crate::sched::{SchedCtx, Scheduler};
use joss_dag::TaskId;
use joss_platform::KnobConfig;

/// Runs every task at a fixed `<TC, NC, fC, fM>`.
#[derive(Debug, Clone)]
pub struct FixedSched {
    config: KnobConfig,
    name: String,
}

impl FixedSched {
    /// Pin all tasks to `config`. The reported name is the compact
    /// `Fixed<TC,nc,fc,fm>` index form, matching the sweep layer's
    /// `SchedulerKind::Fixed` display so record labels never drift.
    pub fn new(config: KnobConfig) -> Self {
        FixedSched {
            config,
            name: format!(
                "Fixed<{:?},{},{},{}>",
                config.tc, config.nc.0, config.fc.0, config.fm.0
            ),
        }
    }

    /// The pinned configuration.
    pub fn config(&self) -> KnobConfig {
        self.config
    }
}

impl Scheduler for FixedSched {
    fn name(&self) -> &str {
        &self.name
    }

    fn place(&mut self, ctx: &mut SchedCtx<'_>, _task: TaskId) -> Placement {
        let width = ctx.space.nc_count(self.config.tc, self.config.nc);
        Placement::pinned(self.config.tc, width, self.config.fc, self.config.fm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, SimEngine};
    use joss_dag::{generators, KernelSpec};
    use joss_platform::{ConfigSpace, CoreType, FreqIndex, MachineModel, NcIndex, TaskShape};

    #[test]
    fn all_tasks_run_on_the_pinned_cluster() {
        let machine = MachineModel::tx2(5);
        let space = ConfigSpace::from_spec(&machine.spec);
        let g =
            generators::independent("bag", KernelSpec::new("k", TaskShape::new(0.01, 0.001)), 40);
        let cfg = KnobConfig::new(CoreType::Little, NcIndex(1), FreqIndex(2), FreqIndex(0));
        let mut sched = FixedSched::new(cfg);
        let report = SimEngine::run(&machine, &g, &mut sched, EngineConfig::default());
        assert_eq!(report.tasks, 40);
        assert_eq!(report.tasks_per_type[CoreType::Big.index()], 0);
        assert_eq!(report.tasks_per_type[CoreType::Little.index()], 40);
        let _ = space;
    }

    #[test]
    fn lower_frequency_stretches_time() {
        let machine = MachineModel::tx2(5);
        let g = generators::independent(
            "bag",
            KernelSpec::new("k", TaskShape::new(0.02, 0.0005)),
            60,
        );
        let run = |fc: usize| {
            let cfg = KnobConfig::new(CoreType::Big, NcIndex(0), FreqIndex(fc), FreqIndex(2));
            let mut sched = FixedSched::new(cfg);
            SimEngine::run(&machine, &g, &mut sched, EngineConfig::default())
        };
        let fast = run(4);
        let slow = run(0);
        assert!(
            slow.energy.makespan_s > 2.0 * fast.energy.makespan_s,
            "0.345 GHz should be much slower than 2.035 GHz: {} vs {}",
            slow.energy.makespan_s,
            fast.energy.makespan_s
        );
    }
}
