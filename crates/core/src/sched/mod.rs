//! Scheduler policies: the trait the engine drives, plus the five policies
//! evaluated in the paper (GRWS, ERASE, Aequitas, STEER, JOSS).

use crate::placement::{ExecutedSample, FreqCommand, Placement};
use joss_dag::{TaskGraph, TaskId};
use joss_platform::{ConfigSpace, Duration, FreqIndex, KnobConfig};
use std::collections::BTreeMap;

mod aequitas;
mod cata;
mod erase;
mod fixed;
mod grws;
mod model_based;

pub use aequitas::AequitasSched;
pub use cata::CataSched;
pub use erase::EraseSched;
pub use fixed::FixedSched;
pub use grws::GrwsSched;
pub use model_based::{ModelSched, SearchKind, Target};

/// Read-only runtime view handed to scheduler callbacks.
///
/// Construction is O(1): the per-core views are borrowed slices over state
/// the engine maintains incrementally (queue lengths and busy flags are
/// updated at enqueue/dispatch/completion, the running-task count at
/// launch/completion), not snapshots collected per callback. Schedulers are
/// invoked several times per task, so nothing here may scan or allocate.
#[derive(Debug)]
pub struct SchedCtx<'a> {
    /// Platform configuration space.
    pub space: &'a ConfigSpace,
    /// The application graph.
    pub graph: &'a TaskGraph,
    /// Current virtual time, seconds.
    pub now_s: f64,
    /// Number of tasks currently executing (instantaneous task concurrency,
    /// used for idle-power attribution, §4.3.3).
    pub running_tasks: usize,
    /// Settled (target) frequency of each cluster `[big, little]`.
    pub settled_fc: [FreqIndex; 2],
    /// Settled (target) memory frequency.
    pub settled_fm: FreqIndex,
    /// Work-queue length per core.
    pub queue_lens: &'a [usize],
    /// Whether each core is currently executing a partition.
    pub core_busy: &'a [bool],
    /// Core type of each core (engine numbering: big cores first).
    pub core_tc: &'a [joss_platform::CoreType],
}

/// A scheduling policy. The engine provides mechanisms (queues, stealing,
/// moldable execution, DVFS controllers); the policy decides placements and
/// frequencies.
pub trait Scheduler {
    /// Display name (matches the paper's figure legends).
    fn name(&self) -> &str;

    /// Decide where/how a newly ready task should run.
    fn place(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Placement;

    /// Revise a placement at dispatch time, just before a core starts the
    /// task. Wide DAGs make all tasks ready (and placed) long before the
    /// scheduler has learned anything; this hook lets learning schedulers
    /// upgrade queued tasks to sampling runs or to the finally selected
    /// configuration, as the paper's runtime does when dequeuing. If the
    /// revised placement names a different core type, the engine re-routes
    /// the task.
    fn revise(&mut self, _ctx: &mut SchedCtx<'_>, _task: TaskId, current: Placement) -> Placement {
        current
    }

    /// A task began executing on `core` (after a steal if `stolen`).
    fn task_started(
        &mut self,
        _ctx: &mut SchedCtx<'_>,
        _task: TaskId,
        _core: usize,
        _stolen: bool,
    ) {
    }

    /// A task finished; `sample` is everything the runtime measured.
    fn task_completed(&mut self, _ctx: &mut SchedCtx<'_>, _sample: &ExecutedSample) {}

    /// If `Some`, the engine fires [`Scheduler::on_timer`] at this period.
    fn timer_interval(&self) -> Option<Duration> {
        None
    }

    /// Periodic hook (e.g. Aequitas' 1 s frequency time slices); commands
    /// pushed into `out` are applied to the DVFS controllers. `out` is a
    /// reusable engine-owned buffer (cleared before every tick) so periodic
    /// schedulers stay allocation-free in steady state.
    fn on_timer(&mut self, _ctx: &mut SchedCtx<'_>, _out: &mut Vec<FreqCommand>) {}

    /// Total configuration-search evaluations performed (report metric).
    fn search_evaluations(&self) -> u64 {
        0
    }

    /// Final per-kernel configuration choices (report metric).
    fn selected_configs(&self) -> BTreeMap<String, KnobConfig> {
        BTreeMap::new()
    }
}
