//! Online per-kernel sampling (paper §5.1).
//!
//! Model-based schedulers need, for each kernel, execution times sampled at
//! specific `<TC, NC>` placements and (for DVFS-aware schedulers) at two core
//! frequencies. [`KernelSampler`] is the bookkeeping state machine: it hands
//! out sampling placements cell by cell, matches completed tasks back to
//! cells, rejects "dirty" samples disturbed by concurrent DVFS transitions
//! or degraded moldable width (with bounded retries), and reports completion.

use crate::placement::{ExecutedSample, Placement};
use joss_platform::{ConfigSpace, CoreType, FreqIndex, NcIndex};
use serde::{Deserialize, Serialize};

/// Accept a frequency-contaminated sample after this many rejected attempts
/// (the measurement is still of the right placement, just noisier).
const MAX_RETRIES: u8 = 3;
/// Give up on a cell entirely after this many attempts when the *placement*
/// itself cannot be realized (e.g. the moldable width is never available);
/// the cell is marked failed and its configurations are excluded.
const MAX_ATTEMPTS: u8 = 8;

/// One sampling requirement: run the kernel once at this placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleCell {
    /// Core type to sample on.
    pub tc: CoreType,
    /// NC index (dense per-type core-count choice).
    pub nc: NcIndex,
    /// Cores the cell needs (denormalized from `nc` for width checks).
    pub width: usize,
    /// Core frequency to pin, or `None` to leave frequencies alone
    /// (ERASE samples at whatever is current — the maximum).
    pub fc: Option<FreqIndex>,
    /// Memory frequency to pin while sampling (used only when `fc` is set).
    pub fm: FreqIndex,
}

#[derive(Debug, Clone, Copy, Default)]
struct CellState {
    time_s: Option<f64>,
    inflight: bool,
    retries: u8,
    failed: bool,
}

/// Sampling progress for one kernel.
#[derive(Debug, Clone)]
pub struct KernelSampler {
    plan: Vec<SampleCell>,
    state: Vec<CellState>,
}

impl KernelSampler {
    /// New sampler over an explicit plan.
    pub fn new(plan: Vec<SampleCell>) -> Self {
        let state = vec![CellState::default(); plan.len()];
        KernelSampler { plan, state }
    }

    /// The two-frequency plan of JOSS/STEER: for every admissible `<TC,NC>`
    /// sample once at `fc_ref` and once at `fc_alt` (memory pinned at
    /// `fm_ref`). All `fc_ref` cells come first, matching the paper's
    /// cluster-by-cluster sampling order.
    pub fn two_freq_plan(
        space: &ConfigSpace,
        max_width: usize,
        fc_ref: FreqIndex,
        fc_alt: FreqIndex,
        fm_ref: FreqIndex,
    ) -> Self {
        let mut plan = Vec::new();
        for phase_fc in [fc_ref, fc_alt] {
            for (tc, nc) in space.iter_tc_nc() {
                let width = space.nc_count(tc, nc);
                if width > max_width {
                    continue;
                }
                plan.push(SampleCell {
                    tc,
                    nc,
                    width,
                    fc: Some(phase_fc),
                    fm: fm_ref,
                });
            }
        }
        Self::new(plan)
    }

    /// The ERASE plan: one sample per admissible `<TC,NC>` at the current
    /// (maximum) frequencies, no DVFS pinning.
    pub fn max_freq_plan(space: &ConfigSpace, max_width: usize) -> Self {
        let mut plan = Vec::new();
        for (tc, nc) in space.iter_tc_nc() {
            let width = space.nc_count(tc, nc);
            if width > max_width {
                continue;
            }
            plan.push(SampleCell {
                tc,
                nc,
                width,
                fc: None,
                fm: FreqIndex(0),
            });
        }
        Self::new(plan)
    }

    /// Claim the next cell needing a sample; returns its index. The caller
    /// must eventually call [`KernelSampler::record`] (or
    /// [`KernelSampler::abandon`]) with this index.
    ///
    /// Cells are handed out in strict *phase order*: a cell pinning a
    /// different core frequency than an earlier incomplete cell is not
    /// released until every earlier phase settled. This reproduces the
    /// paper's sampling discipline (all kernels at `fC` first, then `fC'`)
    /// and prevents retries of one phase from perturbing measurements of the
    /// next with conflicting DVFS pins.
    pub fn next_cell(&mut self) -> Option<usize> {
        for i in 0..self.plan.len() {
            let st = self.state[i];
            if st.time_s.is_some() || st.failed {
                continue;
            }
            // Gate on earlier phases: any unfinished earlier cell with a
            // different frequency pin blocks this one.
            let blocked = (0..i).any(|j| {
                self.plan[j].fc != self.plan[i].fc
                    && self.state[j].time_s.is_none()
                    && !self.state[j].failed
            });
            if blocked {
                return None;
            }
            if !st.inflight {
                self.state[i].inflight = true;
                return Some(i);
            }
        }
        None
    }

    /// The placement realizing a cell.
    pub fn placement_for(&self, cell: usize) -> Placement {
        let c = self.plan[cell];
        match c.fc {
            Some(fc) => Placement::pinned(c.tc, c.width, fc, c.fm),
            None => Placement::on(c.tc, c.width),
        }
    }

    /// Feed back a completed sampling task. Returns `true` if the sample was
    /// accepted into the cell.
    ///
    /// Rejection policy:
    /// * a frequency-contaminated measurement of the *right* placement is
    ///   retried up to [`MAX_RETRIES`] times, then accepted (it is merely
    ///   noisy);
    /// * a measurement with the *wrong* width is never accepted — it would
    ///   poison the tables; after [`MAX_ATTEMPTS`] the cell is marked failed
    ///   and its `<TC,NC>` is excluded from configuration selection (if the
    ///   width is never available at sampling time, it will not be available
    ///   in steady state either).
    pub fn record(&mut self, cell: usize, sample: &ExecutedSample) -> bool {
        let c = self.plan[cell];
        let st = &mut self.state[cell];
        debug_assert!(st.inflight, "record() without a claimed cell");
        st.inflight = false;
        let width_ok = sample.width == c.width && sample.tc == c.tc;
        let freq_ok = match c.fc {
            Some(fc) => sample.is_clean() && sample.fc_start == fc,
            None => true,
        };
        if width_ok && (freq_ok || st.retries >= MAX_RETRIES) {
            // Normalize to the kernel's unit scale so different-sized
            // invocations produce comparable per-kernel measurements.
            st.time_s = Some(sample.duration_s / sample.scale.max(1e-9));
            return true;
        }
        st.retries += 1;
        if st.retries >= MAX_ATTEMPTS {
            st.failed = true;
        }
        false
    }

    /// Release a claimed cell without recording (e.g. task was re-routed).
    pub fn abandon(&mut self, cell: usize) {
        self.state[cell].inflight = false;
    }

    /// True once every cell holds a measurement or was abandoned as failed.
    pub fn is_complete(&self) -> bool {
        self.state.iter().all(|s| s.time_s.is_some() || s.failed)
    }

    /// The plan cells.
    pub fn plan(&self) -> &[SampleCell] {
        &self.plan
    }

    /// Measured time of a cell, if recorded.
    pub fn time_of(&self, cell: usize) -> Option<f64> {
        self.state[cell].time_s
    }

    /// Collect `(t_ref, t_alt)` pairs per dense `<TC,NC>` index for
    /// [`joss_models::ModelSet::build_kernel_tables`]. Only meaningful for
    /// two-frequency plans; `fc_ref` identifies the reference cells.
    pub fn two_freq_samples(
        &self,
        indexer: &joss_models::TcNcIndexer,
        fc_ref: FreqIndex,
    ) -> Vec<Option<(f64, f64)>> {
        let mut out: Vec<Option<(f64, f64)>> = vec![None; indexer.len()];
        let mut refs: Vec<Option<f64>> = vec![None; indexer.len()];
        let mut alts: Vec<Option<f64>> = vec![None; indexer.len()];
        for (i, c) in self.plan.iter().enumerate() {
            let Some(t) = self.state[i].time_s else {
                continue;
            };
            let slot = indexer.index(c.tc, c.nc);
            match c.fc {
                Some(fc) if fc == fc_ref => refs[slot] = Some(t),
                Some(_) => alts[slot] = Some(t),
                None => {}
            }
        }
        for i in 0..indexer.len() {
            if let (Some(r), Some(a)) = (refs[i], alts[i]) {
                out[i] = Some((r, a));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joss_dag::{KernelId, TaskId};
    use joss_platform::PlatformSpec;

    fn space() -> ConfigSpace {
        ConfigSpace::from_spec(&PlatformSpec::tx2_like())
    }

    fn sample_for(cell: &SampleCell, duration: f64) -> ExecutedSample {
        let fc = cell.fc.unwrap_or(FreqIndex(4));
        ExecutedSample {
            task: TaskId(0),
            kernel: KernelId(0),
            tc: cell.tc,
            width: cell.width,
            fc_start: fc,
            fm_start: cell.fm,
            fc_end: fc,
            fm_end: cell.fm,
            duration_s: duration,
            started_s: 0.0,
            stolen: false,
            perturbed: false,
            scale: 1.0,
        }
    }

    #[test]
    fn two_freq_plan_covers_all_pairs_twice() {
        let s = space();
        let sampler =
            KernelSampler::two_freq_plan(&s, usize::MAX, s.fc_max(), FreqIndex(2), s.fm_max());
        assert_eq!(sampler.plan().len(), 10); // 5 pairs x 2 freqs
                                              // First half is the reference frequency.
        assert!(sampler.plan()[..5].iter().all(|c| c.fc == Some(s.fc_max())));
        assert!(sampler.plan()[5..]
            .iter()
            .all(|c| c.fc == Some(FreqIndex(2))));
    }

    #[test]
    fn width_cap_prunes_plan() {
        let s = space();
        let sampler = KernelSampler::two_freq_plan(&s, 1, s.fc_max(), FreqIndex(2), s.fm_max());
        // Only width-1 cells: one per core type, twice.
        assert_eq!(sampler.plan().len(), 4);
        assert!(sampler.plan().iter().all(|c| c.width == 1));
    }

    #[test]
    fn full_sampling_cycle_completes() {
        let s = space();
        let mut sampler =
            KernelSampler::two_freq_plan(&s, usize::MAX, s.fc_max(), FreqIndex(2), s.fm_max());
        while let Some(cell) = sampler.next_cell() {
            let c = sampler.plan()[cell];
            assert!(sampler.record(cell, &sample_for(&c, 0.01)));
        }
        assert!(sampler.is_complete());
        let idx = joss_models::TcNcIndexer::new(&s);
        let pairs = sampler.two_freq_samples(&idx, s.fc_max());
        assert!(pairs.iter().all(|p| p.is_some()));
    }

    #[test]
    fn dirty_samples_are_retried_then_accepted() {
        let s = space();
        let mut sampler =
            KernelSampler::two_freq_plan(&s, usize::MAX, s.fc_max(), FreqIndex(2), s.fm_max());
        let cell = sampler.next_cell().unwrap();
        let c = sampler.plan()[cell];
        let mut dirty = sample_for(&c, 0.01);
        dirty.fc_end = FreqIndex(0); // a DVFS transition landed mid-run
        for attempt in 0..MAX_RETRIES {
            assert!(
                !sampler.record(cell, &dirty),
                "attempt {attempt} must be rejected"
            );
            assert_eq!(sampler.next_cell(), Some(cell), "cell reopens for retry");
        }
        // Retries exhausted: accepted despite being dirty.
        assert!(sampler.record(cell, &dirty));
        assert_eq!(sampler.time_of(cell), Some(0.01));
    }

    #[test]
    fn degraded_width_is_rejected() {
        let s = space();
        let mut sampler =
            KernelSampler::two_freq_plan(&s, usize::MAX, s.fc_max(), FreqIndex(2), s.fm_max());
        // Find a width-2 cell.
        let cell = loop {
            let i = sampler.next_cell().unwrap();
            if sampler.plan()[i].width == 2 {
                break i;
            }
            // Fill width-1 cells so they stop being handed out.
            let c = sampler.plan()[i];
            sampler.record(i, &sample_for(&c, 0.01));
        };
        let c = sampler.plan()[cell];
        let mut degraded = sample_for(&c, 0.02);
        degraded.width = 1;
        assert!(!sampler.record(cell, &degraded));
    }

    #[test]
    fn abandon_reopens_cell() {
        let s = space();
        let mut sampler = KernelSampler::max_freq_plan(&s, usize::MAX);
        let cell = sampler.next_cell().unwrap();
        sampler.abandon(cell);
        assert_eq!(sampler.next_cell(), Some(cell));
    }

    #[test]
    fn erase_plan_has_one_cell_per_pair() {
        let s = space();
        let sampler = KernelSampler::max_freq_plan(&s, usize::MAX);
        assert_eq!(sampler.plan().len(), 5);
        assert!(sampler.plan().iter().all(|c| c.fc.is_none()));
    }
}
