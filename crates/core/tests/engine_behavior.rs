//! Direct behavioural tests of the discrete-event engine: moldable
//! execution, frequency coordination, DVFS pinning and rescaling, stealing
//! restrictions, and idle-power accounting.

use joss_core::engine::{EngineConfig, SimEngine};
use joss_core::placement::{ExecutedSample, Placement};
use joss_core::sched::{SchedCtx, Scheduler};
use joss_core::Coordination;
use joss_dag::{generators, KernelSpec, TaskGraphBuilder, TaskId};
use joss_platform::{CoreType, FreqIndex, MachineModel, TaskShape};
use std::cell::RefCell;
use std::rc::Rc;

/// A scriptable scheduler: one fixed placement, plus a log of completions.
struct Probe {
    placement: Placement,
    samples: Rc<RefCell<Vec<ExecutedSample>>>,
}

impl Scheduler for Probe {
    fn name(&self) -> &str {
        "Probe"
    }
    fn place(&mut self, _ctx: &mut SchedCtx<'_>, _task: TaskId) -> Placement {
        self.placement
    }
    fn task_completed(&mut self, _ctx: &mut SchedCtx<'_>, sample: &ExecutedSample) {
        self.samples.borrow_mut().push(*sample);
    }
}

fn machine() -> MachineModel {
    MachineModel::tx2(11)
}

fn run_probe(
    graph: &joss_dag::TaskGraph,
    placement: Placement,
    coordination: Coordination,
) -> (joss_core::RunReport, Vec<ExecutedSample>) {
    let machine = machine();
    let samples = Rc::new(RefCell::new(Vec::new()));
    let mut sched = Probe {
        placement,
        samples: samples.clone(),
    };
    let cfg = EngineConfig {
        coordination,
        ..EngineConfig::default()
    };
    let report = SimEngine::run(&machine, graph, &mut sched, cfg);
    let out = samples.borrow().clone();
    (report, out)
}

#[test]
fn moldable_tasks_achieve_requested_width() {
    // Sequential moldable tasks on the little cluster: each should gather
    // all four cores (reservation guarantees width once cores free up).
    let g = generators::chain(
        "chain",
        KernelSpec::new("k", TaskShape::new(0.02, 0.002)),
        20,
    );
    let (_, samples) = run_probe(
        &g,
        Placement::on(CoreType::Little, 4),
        Coordination::Average,
    );
    assert_eq!(samples.len(), 20);
    assert!(
        samples.iter().all(|s| s.width == 4),
        "sequential moldable tasks must get full width: {:?}",
        samples.iter().map(|s| s.width).collect::<Vec<_>>()
    );
    assert!(samples.iter().all(|s| s.tc == CoreType::Little));
}

#[test]
fn moldable_width_caps_at_cluster_size() {
    let g = generators::chain(
        "chain",
        KernelSpec::new("k", TaskShape::new(0.01, 0.001)),
        5,
    );
    let (_, samples) = run_probe(&g, Placement::on(CoreType::Big, 64), Coordination::Average);
    assert!(
        samples.iter().all(|s| s.width == 2),
        "big cluster has two cores"
    );
}

#[test]
fn kernel_max_width_is_respected() {
    let mut b = TaskGraphBuilder::new();
    let k = b.add_kernel(KernelSpec::new("rigid", TaskShape::new(0.01, 0.001)).rigid());
    for _ in 0..8 {
        b.add_task(k, &[]).unwrap();
    }
    let g = b.build("rigid_bag").unwrap();
    let (_, samples) = run_probe(
        &g,
        Placement::on(CoreType::Little, 4),
        Coordination::Average,
    );
    assert!(
        samples.iter().all(|s| s.width == 1),
        "rigid kernels never mold"
    );
}

#[test]
fn pinned_frequency_tasks_start_at_target() {
    // Pin far from the initial (max) frequency: the engine must delay the
    // start until the transition lands, so fc_start == target and clean.
    let g = generators::chain(
        "chain",
        KernelSpec::new("k", TaskShape::new(0.01, 0.001)),
        10,
    );
    let (_, samples) = run_probe(
        &g,
        Placement::pinned(CoreType::Big, 1, FreqIndex(0), FreqIndex(0)),
        Coordination::Average,
    );
    for s in &samples {
        assert_eq!(s.fc_start, FreqIndex(0));
        assert_eq!(s.fm_start, FreqIndex(0));
        assert!(s.is_clean(), "sequential pins cannot be perturbed");
    }
}

#[test]
fn throttled_requests_reach_the_controller() {
    let g = generators::chain(
        "chain",
        KernelSpec::new("k", TaskShape::new(0.02, 0.002)),
        6,
    );
    let (report, samples) = run_probe(
        &g,
        Placement::throttled(CoreType::Big, 1, FreqIndex(2), FreqIndex(1)),
        Coordination::Average,
    );
    assert!(
        report.dvfs_transitions >= 2,
        "fc and fm transitions must happen"
    );
    // After the first task triggers the transition, later tasks observe it.
    let last = samples.last().unwrap();
    assert_eq!(last.fc_start, FreqIndex(2));
    assert_eq!(last.fm_start, FreqIndex(1));
}

#[test]
fn coordination_none_vs_average_changes_transition_count() {
    // Two kernels demanding opposite frequencies on one cluster: without
    // coordination the controller thrashes; averaging converges.
    let mut b = TaskGraphBuilder::new();
    let hot = b.add_kernel(KernelSpec::new("hot", TaskShape::new(0.02, 0.001)));
    let cold = b.add_kernel(KernelSpec::new("cold", TaskShape::new(0.02, 0.001)));
    for _ in 0..40 {
        b.add_task(hot, &[]).unwrap();
        b.add_task(cold, &[]).unwrap();
    }
    let g = b.build("conflict").unwrap();

    struct TwoFreq;
    impl Scheduler for TwoFreq {
        fn name(&self) -> &str {
            "TwoFreq"
        }
        fn place(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Placement {
            let hot = ctx.graph.kernel_of(task).index() == 0;
            let fc = if hot { FreqIndex(4) } else { FreqIndex(0) };
            Placement::throttled(CoreType::Little, 1, fc, FreqIndex(2))
        }
    }

    let machine = machine();
    let mut s1 = TwoFreq;
    let none = SimEngine::run(
        &machine,
        &g,
        &mut s1,
        EngineConfig {
            coordination: Coordination::None,
            ..EngineConfig::default()
        },
    );
    let mut s2 = TwoFreq;
    let avg = SimEngine::run(
        &machine,
        &g,
        &mut s2,
        EngineConfig {
            coordination: Coordination::Average,
            ..EngineConfig::default()
        },
    );
    // The §5.3 interference: with no coordination the cluster ping-pongs
    // between the extreme frequencies, so co-running tasks repeatedly land
    // on the 0.345 GHz floor and the application slows down. Averaging
    // keeps the cluster near the middle of the ladder and finishes faster.
    eprintln!(
        "none: {} transitions, makespan {:.4}s; avg: {} transitions, makespan {:.4}s",
        none.dvfs_transitions, none.energy.makespan_s, avg.dvfs_transitions, avg.energy.makespan_s
    );
    assert_eq!(none.tasks, g.n_tasks());
    assert_eq!(avg.tasks, g.n_tasks());
    assert!(
        none.dvfs_transitions > 0,
        "conflicting pins must transition"
    );
    assert!(
        avg.energy.makespan_s < none.energy.makespan_s,
        "averaging must mitigate the slow-extreme dwell time: {:.4} vs {:.4}",
        avg.energy.makespan_s,
        none.energy.makespan_s
    );
}

#[test]
fn typed_tasks_never_run_on_the_other_cluster() {
    let g = generators::independent("bag", KernelSpec::new("k", TaskShape::new(0.01, 0.001)), 64);
    let (report, samples) = run_probe(&g, Placement::on(CoreType::Big, 1), Coordination::Average);
    assert!(samples.iter().all(|s| s.tc == CoreType::Big));
    assert_eq!(report.tasks_per_type[CoreType::Little.index()], 0);
    // With only 2 big cores and 64 independent tasks, stealing must occur
    // between the two big cores' queues.
    assert!(report.steals > 0);
}

#[test]
fn untyped_tasks_use_both_clusters() {
    let g = generators::independent("bag", KernelSpec::new("k", TaskShape::new(0.01, 0.001)), 64);
    let (report, _) = run_probe(&g, Placement::anywhere(), Coordination::Average);
    assert!(report.tasks_per_type[0] > 0 && report.tasks_per_type[1] > 0);
}

#[test]
fn competing_molds_time_out_and_launch_degraded() {
    // Two long width-1 little tasks occupy cores while two width-3 molds
    // gather: the molds split the remaining little cores between their
    // reservations, neither fills, and when the first mold launches (fed by
    // the finishing long tasks) the second one's patience deadline — set
    // when it started gathering — fires mid-run and launches it degraded.
    let mut b = TaskGraphBuilder::new();
    let long = b.add_kernel(KernelSpec::new("long", TaskShape::new(0.02, 0.001)));
    let mold = b.add_kernel(KernelSpec::new("mold", TaskShape::new(0.02, 0.001)));
    for _ in 0..2 {
        b.add_task(long, &[]).unwrap();
    }
    for _ in 0..2 {
        b.add_task(mold, &[]).unwrap();
    }
    let g = b.build("compete").unwrap();

    struct MixedWidth;
    impl Scheduler for MixedWidth {
        fn name(&self) -> &str {
            "MixedWidth"
        }
        fn place(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Placement {
            if ctx.graph.kernel_of(task).index() == 0 {
                Placement::on(CoreType::Little, 1)
            } else {
                Placement::on(CoreType::Little, 3)
            }
        }
    }
    let machine = machine();
    let mut sched = MixedWidth;
    let report = SimEngine::run(&machine, &g, &mut sched, EngineConfig::default());
    assert_eq!(report.tasks, 4);
    assert!(
        report.mold_timeouts >= 1,
        "a gathering mold must run out of patience (got {})",
        report.mold_timeouts
    );
}

#[test]
fn sched_ctx_mirrors_stay_consistent_through_steals() {
    // The per-core queue-length/busy slices and the running-task counter
    // are maintained incrementally; this probe cross-checks their
    // invariants at every scheduler callback of a steal- and mold-heavy
    // run (they cannot be compared against the queues directly from here,
    // but violations of these invariants are what drift looks like).
    #[derive(Default)]
    struct Auditor {
        placed: usize,
        completed: usize,
        callbacks: usize,
    }
    impl Auditor {
        fn audit(&mut self, ctx: &SchedCtx<'_>) {
            self.callbacks += 1;
            let n = ctx.core_tc.len();
            assert_eq!(ctx.queue_lens.len(), n);
            assert_eq!(ctx.core_busy.len(), n);
            let busy = ctx.core_busy.iter().filter(|&&b| b).count();
            assert!(
                busy >= ctx.running_tasks,
                "each running task occupies at least one core ({} busy, {} running)",
                busy,
                ctx.running_tasks
            );
            if ctx.running_tasks == 0 {
                assert_eq!(busy, 0, "no running tasks but busy cores");
            }
            let queued: usize = ctx.queue_lens.iter().sum();
            assert!(
                queued + ctx.running_tasks + self.completed <= self.placed + ctx.running_tasks,
                "more work visible than ever placed"
            );
        }
    }
    impl Scheduler for Auditor {
        fn name(&self) -> &str {
            "Auditor"
        }
        fn place(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Placement {
            self.audit(ctx);
            self.placed += 1;
            // Mixed widths and types keep molds, steals and re-routing busy.
            match task.0 % 3 {
                0 => Placement::anywhere(),
                1 => Placement::on(CoreType::Little, 2),
                _ => Placement::on(CoreType::Big, 1),
            }
        }
        fn revise(
            &mut self,
            ctx: &mut SchedCtx<'_>,
            _task: TaskId,
            current: Placement,
        ) -> Placement {
            self.audit(ctx);
            current
        }
        fn task_started(
            &mut self,
            ctx: &mut SchedCtx<'_>,
            _task: TaskId,
            core: usize,
            _stolen: bool,
        ) {
            self.audit(ctx);
            assert!(ctx.core_busy[core], "the leader core must be marked busy");
        }
        fn task_completed(&mut self, ctx: &mut SchedCtx<'_>, _sample: &ExecutedSample) {
            self.audit(ctx);
            self.completed += 1;
        }
    }
    let machine = machine();
    let g = generators::chain_bundle(
        "audit",
        KernelSpec::new("k", TaskShape::new(0.008, 0.002)),
        120,
        12,
    );
    let mut sched = Auditor::default();
    let report = SimEngine::run(&machine, &g, &mut sched, EngineConfig::default());
    assert_eq!(report.tasks, 120);
    assert_eq!(sched.completed, 120);
    assert!(report.steals > 0, "the audit run must exercise stealing");
    assert!(sched.callbacks > 400, "every callback path must be audited");
}

#[test]
fn arena_invariants_hold_through_steal_and_mold_heavy_runs() {
    // Debug builds audit the arena inside the event loop every 32 events
    // (`EngineArena::debug_validate`: queue links vs the `SchedCtx`
    // mirrors, free-list accounting, busy/running consistency). This test
    // drives that auditor through a steal- and mold-heavy workload, reuses
    // one arena across runs of different sizes the way `Campaign` workers
    // do, and audits the final state after each run drains.
    use joss_core::{CalendarQueue, EngineArena};
    use joss_platform::{ConfigSpace, PowerTables, SimTime};

    struct MixedWidths;
    impl Scheduler for MixedWidths {
        fn name(&self) -> &str {
            "MixedWidths"
        }
        fn place(&mut self, _ctx: &mut SchedCtx<'_>, task: TaskId) -> Placement {
            // Mixed widths and types keep molds gathering, queues deep,
            // and steals frequent.
            match task.0 % 4 {
                0 => Placement::anywhere(),
                1 => Placement::on(CoreType::Little, 3),
                2 => Placement::on(CoreType::Big, 2),
                _ => Placement::on(CoreType::Little, 1),
            }
        }
    }

    let machine = machine();
    let space = ConfigSpace::from_spec(&machine.spec);
    let idle = PowerTables::measure(&machine, &space);
    let mut arena = EngineArena::new();
    let mut total_steals = 0;
    for n in [40usize, 160, 80] {
        let g = generators::chain_bundle(
            "arena-audit",
            KernelSpec::new("k", TaskShape::new(0.008, 0.002)),
            n,
            10,
        );
        let report = SimEngine::run_with_arena(
            &machine,
            &g,
            &mut MixedWidths,
            EngineConfig::default(),
            &mut arena,
            &idle,
        );
        assert_eq!(report.tasks, n);
        total_steals += report.steals;
        // After a completed run every queue is empty and every slot freed;
        // the invariants must hold on this quiescent recycled state too.
        arena.debug_validate();
    }
    assert!(total_steals > 0, "the audit runs must exercise stealing");

    // The calendar queue rejects non-monotone pushes in debug builds —
    // the guard the engine's event stream is audited by.
    let mut q: CalendarQueue<u32> = CalendarQueue::new();
    q.push(SimTime(100), 1);
    assert_eq!(q.pop(), Some((SimTime(100), 1)));
    let past = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        q.push(SimTime(50), 2);
    }));
    assert!(
        past.is_err(),
        "pushing before the watermark must trip the debug guard"
    );
}

#[test]
fn energy_includes_idle_power_of_unused_cluster() {
    // Running only on the big cluster must still pay the little cluster's
    // idle power: compare against the analytic idle floor.
    let machine = machine();
    let g = generators::chain("chain", KernelSpec::new("k", TaskShape::new(0.1, 0.001)), 4);
    let samples = Rc::new(RefCell::new(Vec::new()));
    let mut sched = Probe {
        placement: Placement::on(CoreType::Big, 1),
        samples: samples.clone(),
    };
    let report = SimEngine::run(&machine, &g, &mut sched, EngineConfig::default());
    let fc_max = machine.spec.fc_max_ghz();
    let fm_max = machine.spec.fm_max_ghz();
    let idle_floor = (machine.cluster_idle_w(CoreType::Little, fc_max)
        + machine.cluster_idle_w(CoreType::Big, fc_max)
        + machine.mem_idle_w(fm_max))
        * report.energy.makespan_s;
    assert!(
        report.total_j() > idle_floor,
        "total energy {} must exceed the idle floor {}",
        report.total_j(),
        idle_floor
    );
}

#[test]
fn mid_run_transitions_mark_samples_perturbed() {
    // One long-running task starts; a second kernel immediately retunes the
    // cluster; the first task must be flagged perturbed.
    let mut b = TaskGraphBuilder::new();
    let long = b.add_kernel(KernelSpec::new("long", TaskShape::new(0.5, 0.01)));
    let short = b.add_kernel(KernelSpec::new("short", TaskShape::new(0.001, 0.0001)));
    let _t0 = b.add_task(long, &[]).unwrap();
    let _t1 = b.add_task(short, &[]).unwrap();
    let g = b.build("perturb").unwrap();

    struct Mixed;
    impl Scheduler for Mixed {
        fn name(&self) -> &str {
            "Mixed"
        }
        fn place(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Placement {
            if ctx.graph.kernel_of(task).index() == 0 {
                Placement::on(CoreType::Big, 1)
            } else {
                // Retune the big cluster while `long` runs (no coordination).
                Placement::pinned(CoreType::Big, 1, FreqIndex(0), FreqIndex(2))
            }
        }
    }
    let machine = machine();
    let samples = Rc::new(RefCell::new(Vec::new()));
    struct Recorder(Mixed, Rc<RefCell<Vec<ExecutedSample>>>);
    impl Scheduler for Recorder {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn place(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Placement {
            self.0.place(ctx, task)
        }
        fn task_completed(&mut self, _ctx: &mut SchedCtx<'_>, sample: &ExecutedSample) {
            self.1.borrow_mut().push(*sample);
        }
    }
    let mut sched = Recorder(Mixed, samples.clone());
    SimEngine::run(&machine, &g, &mut sched, EngineConfig::default());
    let samples = samples.borrow();
    let long_sample = samples.iter().find(|s| s.kernel.index() == 0).unwrap();
    assert!(
        long_sample.perturbed || long_sample.fc_start != long_sample.fc_end,
        "the long task must be visibly disturbed by the mid-run transition"
    );
}

#[test]
fn lower_frequency_reduces_power_but_stretches_time() {
    let g = generators::chain(
        "chain",
        KernelSpec::new("k", TaskShape::new(0.05, 0.001)),
        8,
    );
    let (fast, _) = run_probe(
        &g,
        Placement::pinned(CoreType::Big, 1, FreqIndex(4), FreqIndex(2)),
        Coordination::Average,
    );
    let (slow, _) = run_probe(
        &g,
        Placement::pinned(CoreType::Big, 1, FreqIndex(0), FreqIndex(2)),
        Coordination::Average,
    );
    assert!(slow.energy.makespan_s > 3.0 * fast.energy.makespan_s);
    let p_fast = fast.total_j() / fast.energy.makespan_s;
    let p_slow = slow.total_j() / slow.energy.makespan_s;
    assert!(
        p_slow < p_fast,
        "average power must drop at the low frequency"
    );
}

#[test]
fn trace_recording_captures_every_task_and_transition() {
    let machine = machine();
    let g = generators::chain_bundle(
        "traced",
        KernelSpec::new("k", TaskShape::new(0.01, 0.002)),
        30,
        4,
    );
    let samples = Rc::new(RefCell::new(Vec::new()));
    let mut sched = Probe {
        placement: Placement::throttled(CoreType::Big, 1, FreqIndex(2), FreqIndex(1)),
        samples,
    };
    let cfg = EngineConfig {
        record_trace: true,
        ..EngineConfig::default()
    };
    let report = SimEngine::run(&machine, &g, &mut sched, cfg);
    let trace = report.trace.as_ref().expect("trace recorded");
    assert_eq!(trace.tasks.len(), 30, "one span per task");
    assert!(!trace.dvfs.is_empty(), "throttling must leave DVFS marks");
    assert!((trace.makespan_s() - report.energy.makespan_s).abs() < 1e-6);
    // Spans are consistent: end after start, cores in range.
    for t in &trace.tasks {
        assert!(t.end_s > t.start_s);
        assert!(t.cores.iter().all(|&c| c < machine.spec.total_cores()));
    }
    let json = trace.to_chrome_json();
    assert!(json.contains("\"ph\":\"X\""));
    let ascii = trace.ascii_timeline(machine.spec.total_cores(), 60);
    assert_eq!(ascii.lines().count(), machine.spec.total_cores());
}
