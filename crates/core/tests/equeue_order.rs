//! Property test: [`CalendarQueue`] pops byte-identically to the reference
//! `BinaryHeap<Reverse<(SimTime, seq)>>` the engine used before.
//!
//! The engine's bit-exactness across the queue swap rests entirely on the
//! ordering contract — ascending `(SimTime, push order)`, FIFO within an
//! identical timestamp. This test drives both structures with the same
//! random discrete-event-shaped streams (interleaved pushes and pops,
//! pushes never before the last popped time, deliberate bursts of events
//! sharing one timestamp) and requires identical pop sequences.

use joss_core::CalendarQueue;
use joss_platform::SimTime;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reference implementation: the engine's previous event queue — a binary
/// min-heap with a global push counter as the FIFO tie-break.
#[derive(Default)]
struct HeapQueue {
    seq: u64,
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
}

impl HeapQueue {
    fn push(&mut self, at: SimTime, id: u32) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, id)));
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        self.heap.pop().map(|Reverse((at, _, id))| (at, id))
    }
}

/// One step of a simulated event stream: either pop one event from both
/// queues, or push a burst of events at `last_popped + delta_ns`. Deltas
/// are weighted toward 0 ("now" — the current-bucket hot path) and tiny
/// values so identical timestamps (the FIFO-tie-break case) occur
/// constantly, with occasional far-future pushes to churn the heap.
#[derive(Debug, Clone, Copy)]
enum Step {
    Push { delta_ns: u64, burst: u8 },
    Pop,
}

/// Decode a raw sampled tuple into a [`Step`] (the vendored proptest subset
/// has no weighted-union strategy, so the weighting lives in this map).
fn decode_step((sel, raw_delta, burst): (u8, u64, u8)) -> Step {
    match sel {
        0..=2 => Step::Pop,
        3..=5 => Step::Push { delta_ns: 0, burst },
        6..=7 => Step::Push {
            delta_ns: 1 + raw_delta % 3,
            burst,
        },
        _ => Step::Push {
            delta_ns: 1 + raw_delta,
            burst,
        },
    }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    (0u8..10, 0u64..1_000_000, 1u8..5).prop_map(decode_step)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn calendar_pops_identical_to_reference_heap(
        steps in proptest::collection::vec(step_strategy(), 1..400),
    ) {
        let mut cal: CalendarQueue<u32> = CalendarQueue::new();
        let mut heap = HeapQueue::default();
        // Monotone-push floor: the timestamp of the last pop (every handler
        // in a discrete-event engine schedules at or after "now").
        let mut now = SimTime::ZERO;
        let mut next_id = 0u32;
        for step in steps {
            match step {
                Step::Push { delta_ns, burst } => {
                    for _ in 0..burst {
                        let at = SimTime(now.0 + delta_ns);
                        cal.push(at, next_id);
                        heap.push(at, next_id);
                        next_id += 1;
                    }
                }
                Step::Pop => {
                    let got = cal.pop();
                    let want = heap.pop();
                    prop_assert_eq!(got, want, "pop diverged from reference heap");
                    if let Some((at, _)) = got {
                        now = at;
                    }
                }
            }
            prop_assert_eq!(cal.len(), heap.heap.len());
            prop_assert_eq!(cal.is_empty(), heap.heap.is_empty());
        }
        // Drain both completely: the tail order must match too.
        loop {
            let got = cal.pop();
            let want = heap.pop();
            prop_assert_eq!(got, want, "drain diverged from reference heap");
            if got.is_none() {
                break;
            }
        }
    }
}
