//! The shared fan-out primitive: an ordered, deterministic parallel map
//! over OS threads, using the same crossbeam work-stealing machinery the
//! native executor ([`joss_core::native`]) proves out.
//!
//! Work items are pushed into a global injector; each worker drains its
//! local deque first, then batches from the injector, then steals from
//! peers. Results land in per-index slots, so the output order is the input
//! order no matter which thread ran which item — the property every sweep
//! consumer (normalization, chunking, record files) relies on.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::collections::BTreeMap;

/// Default worker count: the host's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` OS threads, returning results in
/// input order.
///
/// Output is identical for any `threads >= 1` as long as `f` is a pure
/// function of `(index, item)` — which engine runs are, because each run
/// owns its own seeded RNG.
pub fn ordered_parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    ordered_parallel_stream(threads, items, f, |_, r| out.push(r));
    out
}

/// Stream `f(index, item)` results to `sink` in **input order**, as they
/// complete, on up to `threads` OS threads.
///
/// Unlike [`ordered_parallel_map`], only results that have finished but not
/// yet flushed to the sink are buffered (the reorder window plus the
/// delivery-channel backlog). When the sink keeps pace with the workers
/// that is O(threads) in practice, so a campaign writing records to disk
/// does not hold the whole grid. The sink runs on the calling thread and
/// backpressures nothing: workers keep computing, so a sink *persistently
/// slower than all workers combined* grows the backlog toward O(items) —
/// keep sinks cheap (buffered writes, no per-record fsync).
pub fn ordered_parallel_stream<T, R, F, S>(threads: usize, items: &[T], f: F, mut sink: S)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: FnMut(usize, R),
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        for (i, t) in items.iter().enumerate() {
            sink(i, f(i, t));
        }
        return;
    }

    let injector = Injector::new();
    for i in 0..n {
        injector.push(i);
    }
    let locals: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = locals.iter().map(|w| w.stealer()).collect();
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();

    std::thread::scope(|scope| {
        for (wid, local) in locals.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let f = &f;
            let tx = tx.clone();
            scope.spawn(move || loop {
                let idx = local.pop().or_else(|| {
                    // Global queue first, then other workers. An idle worker
                    // that finds nothing anywhere may exit: no new work is
                    // ever produced, and any index still in a peer's local
                    // deque will be popped by that peer before it exits.
                    std::iter::repeat_with(|| injector.steal_batch_and_pop(&local))
                        .find(|s| !s.is_retry())
                        .and_then(|s| s.success())
                        .or_else(|| {
                            for (vid, st) in stealers.iter().enumerate() {
                                if vid == wid {
                                    continue;
                                }
                                loop {
                                    match st.steal() {
                                        Steal::Success(i) => return Some(i),
                                        Steal::Retry => continue,
                                        Steal::Empty => break,
                                    }
                                }
                            }
                            None
                        })
                });
                match idx {
                    Some(i) => {
                        let r = f(i, &items[i]);
                        if tx.send((i, r)).is_err() {
                            break; // receiver gone: nothing left to deliver to
                        }
                    }
                    None => break,
                }
            });
        }
        // The receive loop runs on the scope's owning thread: buffer
        // out-of-order completions, flush the ready prefix in index order.
        drop(tx);
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        for (i, r) in rx {
            pending.insert(i, r);
            while let Some(r) = pending.remove(&next) {
                sink(next, r);
                next += 1;
            }
        }
        assert!(
            pending.is_empty() && next == n,
            "every index must be delivered exactly once"
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let serial = ordered_parallel_map(1, &items, |i, &x| x * x + i as u64);
        for threads in [2, 3, 8] {
            let par = ordered_parallel_map(threads, &items, |i, &x| x * x + i as u64);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let items: Vec<usize> = (0..100).collect();
        let calls = AtomicUsize::new(0);
        let out = ordered_parallel_map(4, &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert!(ordered_parallel_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(ordered_parallel_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn stream_delivers_in_index_order_as_results_finish() {
        let items: Vec<u64> = (0..181).collect();
        for threads in [1, 2, 5] {
            let mut seen = Vec::new();
            ordered_parallel_stream(
                threads,
                &items,
                |i, &x| x * 3 + i as u64,
                |i, r| seen.push((i, r)),
            );
            assert_eq!(seen.len(), items.len(), "threads={threads}");
            for (pos, &(i, r)) in seen.iter().enumerate() {
                assert_eq!(i, pos, "sink must observe spec order");
                assert_eq!(r, items[pos] * 3 + pos as u64);
            }
        }
    }

    #[test]
    fn stream_reorders_results_that_finish_ahead_of_the_due_index() {
        // Item 0 is made much slower than the rest, so with several workers
        // later items routinely finish first and must wait in the reorder
        // buffer; delivery must nonetheless be strictly contiguous and
        // exactly-once (`i == next` is stronger than "sorted": it fails on
        // any skip, duplicate, or early delivery).
        let items: Vec<usize> = (0..40).collect();
        let mut next = 0usize;
        ordered_parallel_stream(
            4,
            &items,
            |i, &x| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                x
            },
            |i, r| {
                assert_eq!(i, r);
                assert_eq!(i, next, "delivery must be strictly contiguous");
                next += 1;
            },
        );
        assert_eq!(next, 40);
    }
}
