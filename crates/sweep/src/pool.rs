//! The shared fan-out primitive: an ordered, deterministic parallel map
//! over OS threads, using the same crossbeam work-stealing machinery the
//! native executor ([`joss_core::native`]) proves out.
//!
//! Work items are pushed into a global injector; each worker drains its
//! local deque first, then batches from the injector, then steals from
//! peers. Results land in per-index slots, so the output order is the input
//! order no matter which thread ran which item — the property every sweep
//! consumer (normalization, chunking, record files) relies on.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::sync::Mutex;

/// Default worker count: the host's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` OS threads, returning results in
/// input order.
///
/// Output is identical for any `threads >= 1` as long as `f` is a pure
/// function of `(index, item)` — which engine runs are, because each run
/// owns its own seeded RNG.
pub fn ordered_parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let injector = Injector::new();
    for i in 0..n {
        injector.push(i);
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let locals: Vec<Worker<usize>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = locals.iter().map(|w| w.stealer()).collect();

    std::thread::scope(|scope| {
        for (wid, local) in locals.into_iter().enumerate() {
            let injector = &injector;
            let stealers = &stealers;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let idx = local.pop().or_else(|| {
                    // Global queue first, then other workers. An idle worker
                    // that finds nothing anywhere may exit: no new work is
                    // ever produced, and any index still in a peer's local
                    // deque will be popped by that peer before it exits.
                    std::iter::repeat_with(|| injector.steal_batch_and_pop(&local))
                        .find(|s| !s.is_retry())
                        .and_then(|s| s.success())
                        .or_else(|| {
                            for (vid, st) in stealers.iter().enumerate() {
                                if vid == wid {
                                    continue;
                                }
                                loop {
                                    match st.steal() {
                                        Steal::Success(i) => return Some(i),
                                        Steal::Retry => continue,
                                        Steal::Empty => break,
                                    }
                                }
                            }
                            None
                        })
                });
                match idx {
                    Some(i) => {
                        let r = f(i, &items[i]);
                        *slots[i].lock().expect("slot poisoned") = Some(r);
                    }
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("every index processed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_across_thread_counts() {
        let items: Vec<u64> = (0..257).collect();
        let serial = ordered_parallel_map(1, &items, |i, &x| x * x + i as u64);
        for threads in [2, 3, 8] {
            let par = ordered_parallel_map(threads, &items, |i, &x| x * x + i as u64);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let items: Vec<usize> = (0..100).collect();
        let calls = AtomicUsize::new(0);
        let out = ordered_parallel_map(4, &items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert!(ordered_parallel_map(4, &none, |_, &x| x).is_empty());
        assert_eq!(ordered_parallel_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }
}
