//! Run an arbitrary sweep campaign from the command line.
//!
//! ```text
//! joss_sweep [--workloads L1,L2|all] [--schedulers S1,S2] [--seeds N1,N2]
//!            [--threads N] [--scale D|full] [--reps R] [--train-seed S]
//!            [--out FILE.jsonl] [--csv FILE.csv] [--record-trace] [--list]
//! ```
//!
//! Workload labels are the Fig. 8 suite labels (`--list` prints them);
//! scheduler syntax is `SchedulerKind::parse_help()`. Records stream to
//! stdout as a normalized summary table and optionally to JSONL/CSV files.

use joss_sweep::agg::normalize_to_baseline;
use joss_sweep::{
    default_threads, geo_means_per_scheduler, Campaign, ExperimentContext, SchedulerKind, SpecGrid,
    Workload,
};
use joss_workloads::{fig8_suite, Scale};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: joss_sweep [--workloads L1,L2|all] [--schedulers S1,S2] [--seeds N1,N2]\n\
         \u{20}                 [--threads N] [--scale D|full] [--reps R] [--train-seed S]\n\
         \u{20}                 [--out FILE.jsonl] [--csv FILE.csv] [--record-trace] [--list]\n\
         schedulers: {}",
        SchedulerKind::parse_help()
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut workload_filter: Option<Vec<String>> = None;
    let mut schedulers: Option<Vec<SchedulerKind>> = None;
    let mut seeds: Vec<u64> = Vec::new();
    let mut threads = default_threads();
    let mut scale = Scale::Divided(100);
    let mut reps = 3u32;
    let mut train_seed = 42u64;
    let mut out_jsonl: Option<String> = None;
    let mut out_csv: Option<String> = None;
    let mut record_trace = false;
    let mut list = false;

    let mut i = 1;
    let next = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workloads" => {
                let v = next(&mut i);
                if v != "all" {
                    workload_filter = Some(v.split(',').map(str::to_string).collect());
                }
            }
            "--schedulers" => {
                let parsed: Result<Vec<SchedulerKind>, String> =
                    next(&mut i).split(',').map(str::parse).collect();
                schedulers = Some(parsed.unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    usage()
                }));
            }
            "--seeds" => {
                seeds = next(&mut i)
                    .split(',')
                    .map(|s| s.parse().expect("seed must be an integer"))
                    .collect();
            }
            "--threads" => threads = next(&mut i).parse().expect("thread count"),
            "--scale" => {
                let v = next(&mut i);
                scale = if v == "full" {
                    Scale::Full
                } else {
                    Scale::Divided(v.parse().expect("scale divisor"))
                };
            }
            "--reps" => reps = next(&mut i).parse().expect("training reps"),
            "--train-seed" => train_seed = next(&mut i).parse().expect("train seed"),
            "--out" => out_jsonl = Some(next(&mut i)),
            "--csv" => out_csv = Some(next(&mut i)),
            "--record-trace" => record_trace = true,
            "--list" => list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }

    let suite = fig8_suite(scale);
    if list {
        println!("available workloads ({}):", suite.len());
        for b in &suite {
            println!("  {}", b.label);
        }
        return;
    }

    let workloads: Vec<Workload> = match &workload_filter {
        None => suite.into_iter().map(Workload::from).collect(),
        Some(wanted) => wanted
            .iter()
            .map(|w| {
                let bench = suite.iter().find(|b| &b.label == w).unwrap_or_else(|| {
                    eprintln!("error: unknown workload {w:?} (try --list)");
                    exit(2);
                });
                Workload::from(bench.clone())
            })
            .collect(),
    };

    // Scaled-down runs have short makespans; shrink Aequitas' slice
    // proportionally so its time-slicing still engages.
    let slice = match scale {
        Scale::Full => 1.0,
        Scale::Divided(d) => (1.0 / d as f64).max(0.005),
    };
    let schedulers = schedulers.unwrap_or_else(|| SchedulerKind::fig8_set(slice));
    if seeds.is_empty() {
        seeds.push(42);
    }

    eprintln!("[joss_sweep] characterizing platform + training models (reps={reps})...");
    let ctx = ExperimentContext::with_reps(train_seed, reps);
    let specs = SpecGrid::new()
        .workloads(workloads)
        .schedulers(schedulers.iter().copied())
        .seeds(seeds.iter().copied())
        .record_trace(record_trace)
        .build();
    eprintln!(
        "[joss_sweep] running {} specs ({} workloads x {} schedulers x {} seeds) on {} threads...",
        specs.len(),
        specs.len() / (schedulers.len() * seeds.len()),
        schedulers.len(),
        seeds.len(),
        threads
    );
    let records = Campaign::with_threads(threads).run(&ctx, specs);

    if let Some(path) = &out_jsonl {
        std::fs::write(path, joss_sweep::to_jsonl(&records)).expect("write JSONL");
        eprintln!("[joss_sweep] wrote {} records to {path}", records.len());
    }
    if let Some(path) = &out_csv {
        std::fs::write(path, joss_sweep::to_csv(&records)).expect("write CSV");
        eprintln!("[joss_sweep] wrote {} records to {path}", records.len());
    }

    // Summary: total energy normalized to the first scheduler column.
    let baseline = records[0].scheduler.clone();
    let rows = normalize_to_baseline(&records, &baseline, |r| r.report.total_j());
    println!("# campaign summary — total energy normalized to {baseline}");
    print!("{:<18}", "workload");
    for (name, _) in &rows[0].values {
        print!(" {name:>15}");
    }
    println!();
    for row in &rows {
        print!("{:<18}", row.workload);
        for (_, v) in &row.values {
            print!(" {v:>15.3}");
        }
        println!();
    }
    print!("{:<18}", "Geo.Mean");
    for (_, g) in geo_means_per_scheduler(&rows) {
        print!(" {g:>15.3}");
    }
    println!();
}
