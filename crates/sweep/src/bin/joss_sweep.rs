//! Run an arbitrary sweep campaign from the command line.
//!
//! ```text
//! joss_sweep [--workloads L1,L2|all] [--schedulers S1,S2] [--seeds N1,N2]
//!            [--threads N] [--scale D|full] [--reps R] [--train-seed S]
//!            [--out FILE.jsonl] [--csv FILE.csv] [--record-trace]
//!            [--shard I/N] [--list]
//! ```
//!
//! Workload labels are the Fig. 8 suite labels (`--list` prints them);
//! scheduler syntax is `SchedulerKind::parse_help()`. Records **stream** to
//! the JSONL/CSV files in spec order as workers finish — full records
//! (reports, opted-in traces) are never held for the whole grid. Only one
//! slim `MetricPoint` per record (two labels + one float) survives for the
//! normalized table printed at the end, so memory grows with the spec
//! count but not with task counts or traces.
//!
//! `--shard I/N` (0-based) runs only shard `I` of the cost-balanced
//! `ShardPlan` that splits the grid into `N` contiguous spec ranges.
//! Records carry their **global** spec indices, so concatenating the N
//! shard outputs in shard order is byte-identical to the unsharded
//! `--out` file — the property the `joss_fleet` merge relies on, asserted
//! in `crates/sweep/tests/shard_plan.rs` and by the CI campaign smoke.
//! Sharded runs skip the summary table (one shard may hold a partial
//! workload row).

use joss_sweep::agg::{normalize_points, MetricPoint};
use joss_sweep::{
    default_threads, geo_means_per_scheduler, Campaign, CsvSink, ExperimentContext, JsonlSink,
    SchedulerKind, ShardPlan, SpecGrid, Workload,
};
use joss_workloads::{fig8_suite, Scale};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: joss_sweep [--workloads L1,L2|all] [--schedulers S1,S2] [--seeds N1,N2]\n\
         \u{20}                 [--threads N] [--scale D|full] [--reps R] [--train-seed S]\n\
         \u{20}                 [--out FILE.jsonl] [--csv FILE.csv] [--record-trace]\n\
         \u{20}                 [--telemetry-out FILE.jsonl] [--shard I/N] [--list]\n\
         schedulers: {}",
        SchedulerKind::parse_help()
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut workload_filter: Option<Vec<String>> = None;
    let mut schedulers: Option<Vec<SchedulerKind>> = None;
    let mut seeds: Vec<u64> = Vec::new();
    let mut threads = default_threads();
    let mut scale = Scale::Divided(100);
    let mut reps = 3u32;
    let mut train_seed = 42u64;
    let mut out_jsonl: Option<String> = None;
    let mut out_csv: Option<String> = None;
    let mut telemetry_out: Option<String> = None;
    let mut record_trace = false;
    let mut shard: Option<(usize, usize)> = None;
    let mut list = false;

    let mut i = 1;
    let next = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--workloads" => {
                let v = next(&mut i);
                if v != "all" {
                    workload_filter = Some(v.split(',').map(str::to_string).collect());
                }
            }
            "--schedulers" => {
                let parsed: Result<Vec<SchedulerKind>, String> =
                    next(&mut i).split(',').map(str::parse).collect();
                schedulers = Some(parsed.unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    usage()
                }));
            }
            "--seeds" => {
                seeds = next(&mut i)
                    .split(',')
                    .map(|s| s.parse().expect("seed must be an integer"))
                    .collect();
            }
            "--threads" => threads = next(&mut i).parse().expect("thread count"),
            "--scale" => {
                let v = next(&mut i);
                scale = if v == "full" {
                    Scale::Full
                } else {
                    Scale::Divided(v.parse().expect("scale divisor"))
                };
            }
            "--reps" => reps = next(&mut i).parse().expect("training reps"),
            "--train-seed" => train_seed = next(&mut i).parse().expect("train seed"),
            "--out" => out_jsonl = Some(next(&mut i)),
            "--csv" => out_csv = Some(next(&mut i)),
            "--telemetry-out" => telemetry_out = Some(next(&mut i)),
            "--record-trace" => record_trace = true,
            "--shard" => {
                let v = next(&mut i);
                let (idx, n) = v.split_once('/').unwrap_or_else(|| {
                    eprintln!("error: --shard wants I/N (e.g. 0/4), got {v:?}");
                    usage()
                });
                let idx: usize = idx.parse().expect("shard index");
                let n: usize = n.parse().expect("shard count");
                if n == 0 || idx >= n {
                    eprintln!("error: --shard index {idx} out of range for {n} shards");
                    usage();
                }
                shard = Some((idx, n));
            }
            "--list" => list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }

    let suite = fig8_suite(scale);
    if list {
        println!("available workloads ({}):", suite.len());
        for b in &suite {
            println!("  {}", b.label);
        }
        return;
    }

    let workloads: Vec<Workload> = match &workload_filter {
        None => suite.into_iter().map(Workload::from).collect(),
        Some(wanted) => wanted
            .iter()
            .map(|w| {
                let bench = suite.iter().find(|b| &b.label == w).unwrap_or_else(|| {
                    eprintln!("error: unknown workload {w:?} (try --list)");
                    exit(2);
                });
                Workload::from(bench.clone())
            })
            .collect(),
    };

    // Scaled-down runs have short makespans; shrink Aequitas' slice
    // proportionally so its time-slicing still engages.
    let slice = match scale {
        Scale::Full => 1.0,
        Scale::Divided(d) => (1.0 / d as f64).max(0.005),
    };
    let schedulers = schedulers.unwrap_or_else(|| SchedulerKind::fig8_set(slice));
    if seeds.is_empty() {
        seeds.push(42);
    }

    eprintln!("[joss_sweep] characterizing platform + training models (reps={reps})...");
    let ctx = ExperimentContext::with_reps(train_seed, reps);
    let specs = SpecGrid::new()
        .workloads(workloads)
        .schedulers(schedulers.iter().copied())
        .seeds(seeds.iter().copied())
        .record_trace(record_trace)
        .build();
    eprintln!(
        "[joss_sweep] grid has {} specs ({} workloads x {} schedulers x {} seeds)",
        specs.len(),
        specs.len() / (schedulers.len() * seeds.len()),
        schedulers.len(),
        seeds.len(),
    );

    // --shard I/N: run only one range of the cost-balanced plan, with
    // global record indices, so the N outputs concatenate into the
    // unsharded file. The cost model (per-workload task counts) matches
    // `joss_sweep::shard::grid_costs`, so a fleet planning the same grid
    // agrees on the boundaries.
    let (index_base, specs) = match shard {
        None => (0, specs),
        Some((idx, n)) => {
            let costs: Vec<f64> = specs
                .iter()
                .map(|s| s.workload.graph.n_tasks() as f64)
                .collect();
            let plan = ShardPlan::weighted(&costs, n);
            if idx >= plan.len() {
                // More shards requested than specs: trailing shards are
                // empty, and an empty output still concatenates cleanly.
                eprintln!(
                    "[joss_sweep] shard {idx}/{n} is empty ({} specs fill only {} shards)",
                    specs.len(),
                    plan.len()
                );
                (0, Vec::new())
            } else {
                let range = plan.shard(idx);
                eprintln!(
                    "[joss_sweep] shard {idx}/{n}: specs {range} of {}",
                    specs.len()
                );
                (range.start, specs[range.start..range.end].to_vec())
            }
        }
    };
    eprintln!(
        "[joss_sweep] running {} specs on {} threads...",
        specs.len(),
        threads
    );
    let mut jsonl_sink = out_jsonl
        .as_ref()
        .map(|p| JsonlSink::create(p).expect("create JSONL file"));
    let mut csv_sink = out_csv
        .as_ref()
        .map(|p| CsvSink::create(p).expect("create CSV file"));
    // Stream: each record is serialized to the sinks and reduced to one
    // summary point the moment it flushes out of the reorder window, then
    // dropped — the full grid (reports, opted-in traces) never accumulates.
    let mut points: Vec<MetricPoint> = Vec::with_capacity(specs.len());
    // Tag the campaign's spec spans with one fresh trace id, so a
    // --telemetry-out snapshot groups into a single trace.
    joss_telemetry::trace::set_current(joss_telemetry::trace::new_trace_id());
    Campaign::with_threads(threads).run_streaming_indexed(&ctx, index_base, specs, |record| {
        if let Some(sink) = &mut jsonl_sink {
            sink.write(&record).expect("write JSONL record");
        }
        if let Some(sink) = &mut csv_sink {
            sink.write(&record).expect("write CSV record");
        }
        points.push(MetricPoint::from_record(&record, |r| r.report.total_j()));
    });
    if let (Some(sink), Some(path)) = (jsonl_sink, &out_jsonl) {
        let n = sink.finish().expect("flush JSONL");
        eprintln!("[joss_sweep] wrote {n} records to {path}");
    }
    if let (Some(sink), Some(path)) = (csv_sink, &out_csv) {
        let n = sink.finish().expect("flush CSV");
        eprintln!("[joss_sweep] wrote {n} records to {path}");
    }
    if let Some(path) = &telemetry_out {
        std::fs::write(path, joss_telemetry::snapshot_jsonl()).expect("write telemetry snapshot");
        eprintln!("[joss_sweep] wrote telemetry snapshot to {path}");
    }

    // Summary: total energy normalized to the first scheduler column. A
    // shard may cut a workload's scheduler row in half, so sharded runs
    // skip the table — the merged file is the unit that gets summarized.
    if shard.is_some() {
        eprintln!("[joss_sweep] sharded run: summary table skipped (concatenate shards first)");
        return;
    }
    let baseline = points[0].scheduler.clone();
    let rows = normalize_points(&points, &baseline);
    println!("# campaign summary — total energy normalized to {baseline}");
    print!("{:<18}", "workload");
    for (name, _) in &rows[0].values {
        print!(" {name:>15}");
    }
    println!();
    for row in &rows {
        print!("{:<18}", row.workload);
        for (_, v) in &row.values {
            print!(" {v:>15.3}");
        }
        println!();
    }
    print!("{:<18}", "Geo.Mean");
    for (_, g) in geo_means_per_scheduler(&rows) {
        print!(" {g:>15.3}");
    }
    println!();
}
