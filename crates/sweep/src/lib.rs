//! # joss-sweep — declarative campaign sweeps
//!
//! The paper's evaluation is a grid — {21 benchmark instances} × {6
//! schedulers} × {knob ablations, speedup constraints, seeds} — and every
//! interesting new scenario is another point set in that space. This crate
//! makes the whole grid one data structure away:
//!
//! * [`spec`] — [`RunSpec`] (workload × scheduler × engine config × seed)
//!   and the cartesian [`SpecGrid`] builder;
//! * [`scheduler`] — [`SchedulerKind`], the canonical scheduler factory
//!   (every paper policy plus the pinned-config instrument), with stable
//!   `Display` names and a `FromStr` CLI syntax;
//! * [`campaign`] — [`Campaign`], the executor: fans specs out across OS
//!   threads (the same crossbeam work-stealing machinery as
//!   `joss_core::native`), sharing the one-time [`ExperimentContext`]
//!   across workers;
//! * [`pool`] — [`ordered_parallel_map`] and the streaming
//!   [`ordered_parallel_stream`], the underlying deterministic ordered
//!   fan-out, reused by the non-engine experiments too;
//! * [`record`] — the uniform [`RunRecord`] artifact with JSONL/CSV
//!   writers;
//! * [`json`] — the shared hand-rolled JSON machinery (escaping for the
//!   writers, a parser for the wire protocol; the vendored `serde` is a
//!   no-op, so this is the one place JSON is spelled out);
//! * [`desc`] — [`GridDesc`], the round-trippable wire description of a
//!   grid (canonical JSON, `spec_hash`, optional shard range), used by the
//!   `joss-serve` daemon and the `joss-fleet` coordinator;
//! * [`shard`] — [`ShardPlan`], the contiguous cost-balanced partition of
//!   a grid's spec-index space behind `joss_sweep --shard i/n` and fleet
//!   dispatch: shard outputs concatenate byte-identically into the
//!   unsharded JSONL;
//! * [`sink`] — the [`RecordSink`] abstraction and buffered streaming file
//!   sinks ([`JsonlSink`], [`CsvSink`]) pairing with
//!   [`Campaign::run_streaming`]/[`Campaign::run_to_sink`], so large grids
//!   write to disk (or a network stream) with a flat memory footprint;
//! * [`agg`] — post-processing: grouping, baseline normalization,
//!   geometric means.
//!
//! Results are **deterministic and thread-count invariant**: each run owns
//! its seeded RNG, and records are ordered by spec index, not completion
//! order — `Campaign::with_threads(1)` and `::with_threads(n)` produce
//! byte-identical record files.
//!
//! ```
//! use joss_sweep::{Campaign, ExperimentContext, SchedulerKind, SpecGrid, Workload};
//! use joss_workloads::Scale;
//!
//! let ctx = ExperimentContext::with_reps(42, 1); // fast doctest training
//! let specs = SpecGrid::new()
//!     .workload(Workload::new(joss_workloads::matmul::matmul(256, 4, Scale::Divided(400))))
//!     .schedulers([SchedulerKind::Grws, SchedulerKind::Joss])
//!     .seeds([42])
//!     .build();
//! let records = Campaign::with_threads(2).run(&ctx, specs);
//! assert_eq!(records.len(), 2);
//! assert!(records[1].report.total_j() <= records[0].report.total_j());
//! ```

pub mod agg;
pub mod campaign;
pub mod context;
pub mod desc;
pub mod json;
pub mod pool;
pub mod record;
pub mod scheduler;
pub mod shard;
pub mod sink;
pub mod spec;

pub use agg::{
    geo_mean, geo_means_per_scheduler, group_by_workload, normalize_points, normalize_to_baseline,
    MetricPoint, NormalizedRow,
};
pub use campaign::{records_per_workload, rows_by_workload, run_spec, Campaign};
pub use context::ExperimentContext;
pub use desc::{GridDesc, DEFAULT_SCALE};
pub use pool::{default_threads, ordered_parallel_map, ordered_parallel_stream};
pub use record::{to_csv, to_jsonl, RunRecord, RECORD_SCHEMA};
pub use scheduler::{run_one, SchedulerKind};
pub use shard::{grid_costs, plan_grid, ShardPlan, SpecRange};
pub use sink::{CsvSink, JsonlSink, RecordSink};
pub use spec::{EngineSpec, RunSpec, SpecGrid, Workload, DEFAULT_SEED};
