//! Declarative run specifications and the cartesian grid builder.

use crate::scheduler::SchedulerKind;
use joss_core::engine::EngineConfig;
use joss_dag::TaskGraph;
use joss_workloads::BenchInstance;
use std::sync::Arc;

/// Seed used when a grid does not specify any.
pub const DEFAULT_SEED: u64 = 42;

/// A labelled task graph, shareable across specs and worker threads.
///
/// Grids typically cross one workload with many schedulers and seeds; the
/// [`Arc`] makes those specs share a single graph allocation.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Label used in records (defaults to the graph's own name).
    pub label: String,
    /// The task graph.
    pub graph: Arc<TaskGraph>,
}

impl Workload {
    /// Wrap a graph, labelling it with its own name.
    pub fn new(graph: TaskGraph) -> Self {
        Workload {
            label: graph.name().to_string(),
            graph: Arc::new(graph),
        }
    }

    /// Wrap an already-shared graph under an explicit label.
    pub fn shared(label: impl Into<String>, graph: Arc<TaskGraph>) -> Self {
        Workload {
            label: label.into(),
            graph,
        }
    }
}

impl From<BenchInstance> for Workload {
    fn from(b: BenchInstance) -> Self {
        Workload {
            label: b.label,
            graph: Arc::new(b.graph),
        }
    }
}

/// Per-run engine configuration subset a spec may override.
///
/// Everything not listed here stays at [`EngineConfig::default`]. In
/// particular `record_trace` is **off** unless the spec opts in: traces grow
/// with task count, and a campaign holds every record in memory at once, so
/// an accidental trace on a large grid multiplies the campaign's footprint
/// by the task count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSpec {
    /// Engine RNG seed (core selection, steal-victim order). Every run owns
    /// its own RNG seeded from this, which is what makes campaign results
    /// independent of worker count.
    pub seed: u64,
    /// Opt-in full execution trace for this run only.
    pub record_trace: bool,
}

impl EngineSpec {
    /// Spec with the given seed and tracing off.
    pub fn seeded(seed: u64) -> Self {
        EngineSpec {
            seed,
            record_trace: false,
        }
    }

    /// Lower into the engine's config. The executor calls this for every
    /// run, so tracing is forced to the spec's (default off) choice.
    pub fn to_config(self) -> EngineConfig {
        EngineConfig {
            record_trace: self.record_trace,
            ..EngineConfig::with_seed(self.seed)
        }
    }
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec::seeded(DEFAULT_SEED)
    }
}

/// One fully-specified run: workload × scheduler × engine config × seed.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// What to run.
    pub workload: Workload,
    /// Which policy runs it.
    pub scheduler: SchedulerKind,
    /// Engine overrides (seed, tracing).
    pub engine: EngineSpec,
}

impl RunSpec {
    /// Human-readable spec label: `workload/scheduler/seedN`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/seed{}",
            self.workload.label, self.scheduler, self.engine.seed
        )
    }
}

/// Cartesian grid builder: workloads × schedulers × seeds.
///
/// `build()` emits specs workload-major, then scheduler, then seed — the
/// order every consumer (normalization, per-workload chunking, record
/// files) relies on, and the order records come back in regardless of how
/// many threads executed them.
#[derive(Debug, Clone, Default)]
pub struct SpecGrid {
    workloads: Vec<Workload>,
    schedulers: Vec<SchedulerKind>,
    seeds: Vec<u64>,
    record_trace: bool,
}

impl SpecGrid {
    /// Empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one workload.
    pub fn workload(mut self, w: impl Into<Workload>) -> Self {
        self.workloads.push(w.into());
        self
    }

    /// Add many workloads (e.g. a whole benchmark suite).
    pub fn workloads<I, W>(mut self, ws: I) -> Self
    where
        I: IntoIterator<Item = W>,
        W: Into<Workload>,
    {
        self.workloads.extend(ws.into_iter().map(Into::into));
        self
    }

    /// Add one scheduler column.
    pub fn scheduler(mut self, s: SchedulerKind) -> Self {
        self.schedulers.push(s);
        self
    }

    /// Add many scheduler columns.
    pub fn schedulers(mut self, ss: impl IntoIterator<Item = SchedulerKind>) -> Self {
        self.schedulers.extend(ss);
        self
    }

    /// Add seeds (one run per seed per cell; defaults to [`DEFAULT_SEED`]).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Opt every spec of this grid into execution-trace recording. Use only
    /// for small grids; see [`EngineSpec::record_trace`].
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Number of specs `build()` will emit.
    pub fn len(&self) -> usize {
        let seeds = self.seeds.len().max(1);
        self.workloads.len() * self.schedulers.len() * seeds
    }

    /// True when the grid has no workloads or no schedulers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Emit the cartesian product, workload-major, then scheduler, then seed.
    pub fn build(self) -> Vec<RunSpec> {
        let seeds = if self.seeds.is_empty() {
            vec![DEFAULT_SEED]
        } else {
            self.seeds
        };
        let mut specs = Vec::with_capacity(self.workloads.len() * self.schedulers.len());
        for w in &self.workloads {
            for &s in &self.schedulers {
                for &seed in &seeds {
                    specs.push(RunSpec {
                        workload: w.clone(),
                        scheduler: s,
                        engine: EngineSpec {
                            seed,
                            record_trace: self.record_trace,
                        },
                    });
                }
            }
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joss_dag::{generators, KernelSpec};
    use joss_platform::TaskShape;

    fn tiny(name: &str) -> TaskGraph {
        generators::independent(name, KernelSpec::new("k", TaskShape::new(0.001, 0.0)), 4)
    }

    #[test]
    fn grid_is_workload_major_then_scheduler_then_seed() {
        let specs = SpecGrid::new()
            .workload(Workload::new(tiny("a")))
            .workload(Workload::new(tiny("b")))
            .schedulers([SchedulerKind::Grws, SchedulerKind::Joss])
            .seeds([1, 2])
            .build();
        assert_eq!(specs.len(), 8);
        let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels[0], "a/GRWS/seed1");
        assert_eq!(labels[1], "a/GRWS/seed2");
        assert_eq!(labels[2], "a/JOSS/seed1");
        assert_eq!(labels[4], "b/GRWS/seed1");
        assert_eq!(labels[7], "b/JOSS/seed2");
    }

    #[test]
    fn seeds_default_and_traces_stay_off() {
        let grid = SpecGrid::new()
            .workload(Workload::new(tiny("a")))
            .scheduler(SchedulerKind::Grws);
        assert_eq!(grid.len(), 1);
        let specs = grid.build();
        assert_eq!(specs[0].engine.seed, DEFAULT_SEED);
        assert!(!specs[0].engine.record_trace);
        assert!(!specs[0].engine.to_config().record_trace);
    }

    #[test]
    fn workloads_share_one_graph_allocation() {
        let specs = SpecGrid::new()
            .workload(Workload::new(tiny("a")))
            .schedulers([SchedulerKind::Grws, SchedulerKind::Joss])
            .seeds([1, 2, 3])
            .build();
        for s in &specs[1..] {
            assert!(Arc::ptr_eq(&specs[0].workload.graph, &s.workload.graph));
        }
    }
}
