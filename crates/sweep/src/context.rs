//! Shared experiment context: the platform and its one-time
//! characterization, reused across all experiments and campaign workers.

use joss_models::{ModelSet, TrainingConfig};
use joss_platform::{ConfigSpace, MachineModel};
use std::sync::Arc;

/// Platform + trained models, built once per experiment session.
///
/// Training is the expensive one-time step (install-time characterization in
/// the paper); a [`Campaign`](crate::Campaign) shares one context across all
/// of its worker threads, and the model set is behind an [`Arc`] so every
/// scheduler instance clones a handle, not the tables.
pub struct ExperimentContext {
    /// The simulated TX2.
    pub machine: MachineModel,
    /// Its configuration space.
    pub space: ConfigSpace,
    /// The trained MPR model set (install-time characterization).
    pub models: Arc<ModelSet>,
}

impl ExperimentContext {
    /// Build with the paper's 10 profiling repetitions.
    pub fn new(seed: u64) -> Self {
        Self::with_reps(seed, 10)
    }

    /// Build with reduced profiling repetitions (fast tests).
    pub fn with_reps(seed: u64, reps: u32) -> Self {
        let machine = MachineModel::tx2(seed);
        let space = ConfigSpace::from_spec(&machine.spec);
        let mut cfg = TrainingConfig::tx2_default(&space);
        cfg.reps = reps;
        let models = Arc::new(ModelSet::train(&machine, cfg));
        ExperimentContext {
            machine,
            space,
            models,
        }
    }
}
