//! Shared hand-rolled JSON machinery: escaping for the writers, a small
//! recursive-descent parser for the wire protocol.
//!
//! The vendored `serde` is a no-op stand-in, so every JSON boundary in the
//! workspace is explicit. This module is the single home for that code:
//! the record/sink writers ([`crate::record`]) escape through [`escape`],
//! and the serve daemon's request path parses through [`parse`]. Numbers
//! keep their raw source text so integer fields (seeds, indices) round-trip
//! exactly — no detour through `f64`.

use std::fmt::Write as _;

/// Escape a string for embedding in a JSON document (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Escape and quote a string as a JSON string literal.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// A parsed JSON value. Object member order is preserved (insertion order),
/// and numbers keep their raw text so `u64`s survive untouched.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Raw number text as it appeared in the source (validated shape).
    Number(String),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as a float, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Nesting depth cap: the wire protocol needs 2 levels; 64 leaves headroom
/// while keeping hostile inputs from overflowing the parse stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err(self.error("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.error(&format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("invalid utf8"))?;
                    let c = s.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.error("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.error("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.error("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.error("expected exponent digits"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        Ok(Value::Number(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(quote("x"), "\"x\"");
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::Number("42".into()));
        assert_eq!(parse("-1.5e3").unwrap().as_f64(), Some(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
        let arr = parse("[1, 2 ,3]").unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 3);
        let obj = parse("{\"a\": 1, \"b\": [true]}").unwrap();
        assert_eq!(obj.get("a").and_then(Value::as_u64), Some(1));
        assert!(obj.get("b").unwrap().as_array().is_some());
        assert!(obj.get("missing").is_none());
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let big = u64::MAX;
        let v = parse(&format!("{{\"seed\":{big}}}")).unwrap();
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(big));
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["", "plain", "q\"b", "tab\tnl\n", "uni\u{2603}", "\u{1}"] {
            let doc = quote(s);
            assert_eq!(parse(&doc).unwrap().as_str(), Some(s), "{doc}");
        }
        // Escaped surrogate pair.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "nul",
            "01x",
            "\"unterminated",
            "\"\\q\"",
            "\"\\ud800\"",
            "1 2",
            "{\"a\" 1}",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_cap_rejects_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }
}
