//! Uniform per-run artifacts: one [`RunRecord`] per executed spec, plus
//! JSONL and CSV writers.
//!
//! The JSONL schema (one object per line, stable key order) is:
//!
//! ```json
//! {"index":0,"workload":"MM_256_dop4","scheduler":"JOSS","seed":42,
//!  "cpu_j":1.25,"mem_j":0.75,"total_j":2.0,"makespan_s":0.5,
//!  "tasks":130,"tasks_big":80,"tasks_little":50,"steals":3,
//!  "dvfs_transitions":12,"dvfs_serialized":1,
//!  "sampling_fraction":0.008,"search_evaluations":96}
//! ```
//!
//! `index` is the spec's position in its campaign (records are emitted in
//! spec order, not completion order); `scheduler` is the engine-reported
//! name. The CSV writer emits the same fields in the same order.

use crate::json;
use crate::scheduler::SchedulerKind;
use joss_core::metrics::RunReport;
use std::fmt::Write as _;

/// Version tag of the record wire schema (the JSONL key set above). The
/// serve daemon surfaces it in `/healthz` and the fleet coordinator
/// refuses backends whose schema differs — bump it whenever
/// [`RunRecord::columns`] changes shape, so mixed-version fleets fail
/// loudly instead of merging incompatible records.
pub const RECORD_SCHEMA: &str = "joss-run-record/v1";

/// The outcome of one spec: identity plus the full measurement report.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Position of the spec in its campaign (defines record order).
    pub index: usize,
    /// Workload label.
    pub workload: String,
    /// Scheduler name as the engine reported it.
    pub scheduler: String,
    /// The scheduler spec that produced this run.
    pub kind: SchedulerKind,
    /// Engine seed of this run.
    pub seed: u64,
    /// Full measurement report.
    pub report: RunReport,
}

impl RunRecord {
    /// The flat metric tuple serialized by both writers, in column order.
    fn columns(&self) -> [(&'static str, String); 16] {
        let r = &self.report;
        [
            ("index", self.index.to_string()),
            ("workload", json::quote(&self.workload)),
            ("scheduler", json::quote(&self.scheduler)),
            ("seed", self.seed.to_string()),
            ("cpu_j", r.energy.cpu_j.to_string()),
            ("mem_j", r.energy.mem_j.to_string()),
            ("total_j", r.total_j().to_string()),
            ("makespan_s", r.energy.makespan_s.to_string()),
            ("tasks", r.tasks.to_string()),
            ("tasks_big", r.tasks_per_type[0].to_string()),
            ("tasks_little", r.tasks_per_type[1].to_string()),
            ("steals", r.steals.to_string()),
            ("dvfs_transitions", r.dvfs_transitions.to_string()),
            ("dvfs_serialized", r.dvfs_serialized.to_string()),
            ("sampling_fraction", r.sampling_fraction().to_string()),
            ("search_evaluations", r.search_evaluations.to_string()),
        ]
    }

    /// One JSON object (one JSONL line, without the newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, val)) in self.columns().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{key}\":{val}");
        }
        out.push('}');
        out
    }

    /// One CSV row (without the newline), column order matching
    /// [`RunRecord::csv_header`].
    pub fn to_csv_row(&self) -> String {
        let mut out = String::new();
        for (i, (_, val)) in self.columns().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(val);
        }
        out
    }

    /// The CSV header row (without the newline).
    pub fn csv_header() -> &'static str {
        "index,workload,scheduler,seed,cpu_j,mem_j,total_j,makespan_s,tasks,tasks_big,\
         tasks_little,steals,dvfs_transitions,dvfs_serialized,sampling_fraction,\
         search_evaluations"
    }
}

/// Serialize records as JSON Lines (one object per record, spec order).
pub fn to_jsonl(records: &[RunRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Serialize records as CSV with a header row. String fields are quoted
/// with the same escaping as the JSON writer (labels contain no commas or
/// quotes in practice).
pub fn to_csv(records: &[RunRecord]) -> String {
    let mut out = String::new();
    if !records.is_empty() {
        out.push_str(RunRecord::csv_header());
        out.push('\n');
    }
    for r in records {
        out.push_str(&r.to_csv_row());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use joss_platform::EnergyAccount;
    use std::collections::BTreeMap;

    fn record(index: usize, workload: &str, scheduler: &str) -> RunRecord {
        RunRecord {
            index,
            workload: workload.into(),
            scheduler: scheduler.into(),
            kind: SchedulerKind::Joss,
            seed: 42,
            report: RunReport {
                scheduler: scheduler.into(),
                benchmark: workload.into(),
                energy: EnergyAccount {
                    cpu_j: 1.25,
                    mem_j: 0.75,
                    cpu_sampled_j: 1.2,
                    mem_sampled_j: 0.8,
                    makespan_s: 0.5,
                },
                tasks: 130,
                tasks_per_type: [80, 50],
                steals: 3,
                mold_timeouts: 0,
                dvfs_transitions: 12,
                dvfs_serialized: 1,
                sampling_time_s: 0.004,
                total_task_time_s: 0.5,
                search_evaluations: 96,
                selected_configs: BTreeMap::new(),
                trace: None,
            },
        }
    }

    #[test]
    fn jsonl_has_stable_keys_and_values() {
        let line = record(0, "MM_256_dop4", "JOSS").to_json();
        assert!(line.starts_with("{\"index\":0,\"workload\":\"MM_256_dop4\""));
        assert!(line.contains("\"total_j\":2"));
        assert!(line.contains("\"sampling_fraction\":0.008"));
        assert!(line.ends_with("\"search_evaluations\":96}"));
    }

    #[test]
    fn record_lines_parse_back_through_the_shared_json_module() {
        // The writer and the wire parser live in `crate::json`; a record
        // line must survive the round trip with its identity intact.
        let line = record(3, "odd \"label\"\n", "JOSS").to_json();
        let v = json::parse(&line).expect("record line is valid JSON");
        assert_eq!(v.get("index").and_then(json::Value::as_u64), Some(3));
        assert_eq!(
            v.get("workload").and_then(json::Value::as_str),
            Some("odd \"label\"\n")
        );
        assert_eq!(v.get("seed").and_then(json::Value::as_u64), Some(42));
    }

    #[test]
    fn csv_header_matches_rows() {
        let recs = vec![record(0, "a", "GRWS"), record(1, "b", "JOSS")];
        let csv = to_csv(&recs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("index,workload,scheduler,seed,cpu_j"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and row column counts must agree"
        );
        assert!(lines[2].starts_with("1,\"b\",\"JOSS\",42"));
    }

    #[test]
    fn empty_record_sets_serialize_to_empty_strings() {
        assert_eq!(to_jsonl(&[]), "");
        assert_eq!(to_csv(&[]), "");
    }

    #[test]
    fn csv_header_matches_column_names() {
        let cols = record(0, "w", "s").columns();
        let names: Vec<&str> = cols.iter().map(|(k, _)| *k).collect();
        assert_eq!(RunRecord::csv_header(), names.join(","));
    }
}
