//! Post-processing helpers over ordered [`RunRecord`] lists: grouping,
//! baseline normalization, and the geometric mean the paper's figures use.

use crate::record::RunRecord;

/// Geometric mean of strictly positive values (1.0 for an empty slice).
pub fn geo_mean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = vals.iter().map(|v| v.ln()).sum();
    (log_sum / vals.len() as f64).exp()
}

/// Group records by workload label, preserving first-appearance order
/// (which is spec order for campaign output).
pub fn group_by_workload(records: &[RunRecord]) -> Vec<(&str, Vec<&RunRecord>)> {
    let mut groups: Vec<(&str, Vec<&RunRecord>)> = Vec::new();
    for r in records {
        match groups.iter_mut().find(|(w, _)| *w == r.workload.as_str()) {
            Some((_, v)) => v.push(r),
            None => groups.push((r.workload.as_str(), vec![r])),
        }
    }
    groups
}

/// One workload's metric values normalized to a baseline scheduler.
#[derive(Debug, Clone)]
pub struct NormalizedRow {
    /// Workload label.
    pub workload: String,
    /// `(scheduler, metric / baseline_metric)` in record order.
    pub values: Vec<(String, f64)>,
}

/// One scalar metric extracted from a record: the slim summary unit a
/// streaming campaign keeps after the full [`RunRecord`] (report, trace,
/// selected configs) has gone to its sink.
#[derive(Debug, Clone)]
pub struct MetricPoint {
    /// Workload label.
    pub workload: String,
    /// Scheduler name.
    pub scheduler: String,
    /// The metric value.
    pub value: f64,
}

impl MetricPoint {
    /// Extract a metric from a record.
    pub fn from_record(r: &RunRecord, metric: impl Fn(&RunRecord) -> f64) -> Self {
        MetricPoint {
            workload: r.workload.clone(),
            scheduler: r.scheduler.clone(),
            value: metric(r),
        }
    }
}

/// Normalize metric points per workload to the named baseline scheduler's
/// value, preserving first-appearance workload order (spec order for
/// campaign output).
///
/// Panics if a workload group has no point for `baseline` (grids that
/// include the baseline scheduler always do) or a baseline value of zero.
pub fn normalize_points(points: &[MetricPoint], baseline: &str) -> Vec<NormalizedRow> {
    let mut groups: Vec<(&str, Vec<&MetricPoint>)> = Vec::new();
    for p in points {
        match groups.iter_mut().find(|(w, _)| *w == p.workload.as_str()) {
            Some((_, v)) => v.push(p),
            None => groups.push((p.workload.as_str(), vec![p])),
        }
    }
    groups
        .into_iter()
        .map(|(workload, group)| {
            let base = group
                .iter()
                .find(|p| p.scheduler == baseline)
                .unwrap_or_else(|| panic!("no {baseline:?} record for workload {workload:?}"));
            let base_v = base.value;
            assert!(base_v != 0.0, "zero baseline metric for {workload:?}");
            NormalizedRow {
                workload: workload.to_string(),
                values: group
                    .iter()
                    .map(|p| (p.scheduler.clone(), p.value / base_v))
                    .collect(),
            }
        })
        .collect()
}

/// Normalize `metric` per workload to the named baseline scheduler's value.
///
/// Panics if a workload group has no record for `baseline` (grids that
/// include the baseline scheduler always do) or a baseline metric of zero.
pub fn normalize_to_baseline(
    records: &[RunRecord],
    baseline: &str,
    metric: impl Fn(&RunRecord) -> f64,
) -> Vec<NormalizedRow> {
    let points: Vec<MetricPoint> = records
        .iter()
        .map(|r| MetricPoint::from_record(r, &metric))
        .collect();
    normalize_points(&points, baseline)
}

/// Per-scheduler geometric means over normalized rows (column order of the
/// first row; every row must share it, as grid-built campaigns do).
pub fn geo_means_per_scheduler(rows: &[NormalizedRow]) -> Vec<(String, f64)> {
    let Some(first) = rows.first() else {
        return Vec::new();
    };
    first
        .values
        .iter()
        .enumerate()
        .map(|(col, (name, _))| {
            let vals: Vec<f64> = rows.iter().map(|r| r.values[col].1).collect();
            (name.clone(), geo_mean(&vals))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerKind;
    use joss_core::metrics::RunReport;
    use joss_platform::EnergyAccount;
    use std::collections::BTreeMap;

    fn record(index: usize, workload: &str, scheduler: &str, total_j: f64) -> RunRecord {
        RunRecord {
            index,
            workload: workload.into(),
            scheduler: scheduler.into(),
            kind: SchedulerKind::Joss,
            seed: 1,
            report: RunReport {
                scheduler: scheduler.into(),
                benchmark: workload.into(),
                energy: EnergyAccount {
                    cpu_j: total_j,
                    mem_j: 0.0,
                    cpu_sampled_j: total_j,
                    mem_sampled_j: 0.0,
                    makespan_s: 1.0,
                },
                tasks: 1,
                tasks_per_type: [1, 0],
                steals: 0,
                mold_timeouts: 0,
                dvfs_transitions: 0,
                dvfs_serialized: 0,
                sampling_time_s: 0.0,
                total_task_time_s: 1.0,
                search_evaluations: 0,
                selected_configs: BTreeMap::new(),
                trace: None,
            },
        }
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[]) - 1.0).abs() < 1e-12);
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_groups_and_divides() {
        let records = vec![
            record(0, "a", "GRWS", 10.0),
            record(1, "a", "JOSS", 5.0),
            record(2, "b", "GRWS", 4.0),
            record(3, "b", "JOSS", 3.0),
        ];
        let rows = normalize_to_baseline(&records, "GRWS", |r| r.report.total_j());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].workload, "a");
        assert!((rows[0].values[1].1 - 0.5).abs() < 1e-12);
        assert!((rows[1].values[1].1 - 0.75).abs() < 1e-12);
        let geo = geo_means_per_scheduler(&rows);
        assert_eq!(geo[0].0, "GRWS");
        assert!((geo[0].1 - 1.0).abs() < 1e-12);
        assert!((geo[1].1 - (0.5f64 * 0.75).sqrt()).abs() < 1e-12);
    }
}
