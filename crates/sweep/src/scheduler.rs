//! The canonical scheduler factory: every policy a sweep can run, as one
//! value type with stable names and a string syntax for CLIs.

use crate::context::ExperimentContext;
use joss_core::engine::SimEngine;
use joss_core::metrics::RunReport;
use joss_core::sched::{AequitasSched, EraseSched, FixedSched, GrwsSched, ModelSched, Scheduler};
use joss_dag::TaskGraph;
use joss_platform::{Duration, KnobConfig};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

/// Which scheduler to run (the paper's six, the Fig. 9 variants, and the
/// pinned-configuration instrument behind Figs. 1 and 2).
///
/// `Display` renders the same name the instantiated scheduler reports, so
/// record labels never drift from engine output; `FromStr` accepts the CLI
/// syntax documented on [`SchedulerKind::parse_help`].
#[derive(Debug, Clone, Copy)]
pub enum SchedulerKind {
    /// Greedy random work stealing (baseline).
    Grws,
    /// ERASE comparator.
    Erase,
    /// Aequitas comparator. The field is the DVFS time-slice in seconds
    /// (1.0 in the paper; smaller for scaled-down runs).
    Aequitas(f64),
    /// STEER comparator.
    Steer,
    /// JOSS (minimum total energy, all four knobs).
    Joss,
    /// JOSS with the memory-DVFS knob removed.
    JossNoMemDvfs,
    /// JOSS under a per-task speedup constraint.
    JossSpeedup(f64),
    /// JOSS maximizing per-task performance.
    JossMaxPerf,
    /// Every task pinned to one `<TC,NC,fC,fM>` point — the measurement
    /// instrument behind the Fig. 1/2 exhaustive configuration sweeps.
    Fixed(KnobConfig),
}

// Equality compares `f64` payloads (Aequitas slice, speedup target) by bit
// pattern, exactly like `Hash` below. That makes `Eq`'s reflexivity hold
// unconditionally — even for a hand-constructed NaN payload — so the type
// is safe as a `HashMap`/`HashSet` key. (In practice payloads are finite:
// the parser rejects anything else.)
impl PartialEq for SchedulerKind {
    fn eq(&self, other: &Self) -> bool {
        use SchedulerKind::*;
        match (self, other) {
            (Grws, Grws)
            | (Erase, Erase)
            | (Steer, Steer)
            | (Joss, Joss)
            | (JossNoMemDvfs, JossNoMemDvfs)
            | (JossMaxPerf, JossMaxPerf) => true,
            (Aequitas(a), Aequitas(b)) | (JossSpeedup(a), JossSpeedup(b)) => {
                a.to_bits() == b.to_bits()
            }
            (Fixed(a), Fixed(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for SchedulerKind {}

impl Hash for SchedulerKind {
    fn hash<H: Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            SchedulerKind::Aequitas(s) | SchedulerKind::JossSpeedup(s) => {
                s.to_bits().hash(state);
            }
            SchedulerKind::Fixed(c) => c.hash(state),
            _ => {}
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerKind::Grws => write!(f, "GRWS"),
            SchedulerKind::Erase => write!(f, "ERASE"),
            SchedulerKind::Aequitas(_) => write!(f, "Aequitas"),
            SchedulerKind::Steer => write!(f, "STEER"),
            SchedulerKind::Joss => write!(f, "JOSS"),
            SchedulerKind::JossNoMemDvfs => write!(f, "JOSS_NoMemDVFS"),
            SchedulerKind::JossSpeedup(s) => write!(f, "JOSS+{s}X"),
            SchedulerKind::JossMaxPerf => write!(f, "JOSS+MAXP"),
            SchedulerKind::Fixed(c) => {
                write!(f, "Fixed<{:?},{},{},{}>", c.tc, c.nc.0, c.fc.0, c.fm.0)
            }
        }
    }
}

impl FromStr for SchedulerKind {
    type Err = String;

    /// Parse the CLI spelling of a scheduler; see [`SchedulerKind::parse_help`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim().to_ascii_lowercase();
        let finite = |v: f64, what: &str| {
            if v.is_finite() && v > 0.0 {
                Ok(v)
            } else {
                Err(format!("{what} must be a positive finite number: {s:?}"))
            }
        };
        match t.as_str() {
            "grws" => Ok(SchedulerKind::Grws),
            "erase" => Ok(SchedulerKind::Erase),
            "aequitas" => Ok(SchedulerKind::Aequitas(1.0)),
            "steer" => Ok(SchedulerKind::Steer),
            "joss" => Ok(SchedulerKind::Joss),
            "joss-nomem" | "joss_nomemdvfs" | "nomem" => Ok(SchedulerKind::JossNoMemDvfs),
            "maxp" | "joss+maxp" => Ok(SchedulerKind::JossMaxPerf),
            _ => {
                if let Some(rest) = t.strip_prefix("aequitas:") {
                    let v = rest
                        .parse::<f64>()
                        .map_err(|e| format!("bad Aequitas slice {rest:?}: {e}"))?;
                    return Ok(SchedulerKind::Aequitas(finite(v, "Aequitas slice")?));
                }
                if let Some(rest) = t.strip_prefix("speedup:") {
                    let v = rest
                        .parse::<f64>()
                        .map_err(|e| format!("bad speedup target {rest:?}: {e}"))?;
                    return Ok(SchedulerKind::JossSpeedup(finite(v, "speedup target")?));
                }
                if let Some(mid) = t.strip_prefix("joss+").and_then(|r| r.strip_suffix('x')) {
                    let v = mid
                        .parse::<f64>()
                        .map_err(|e| format!("bad speedup target {mid:?}: {e}"))?;
                    return Ok(SchedulerKind::JossSpeedup(finite(v, "speedup target")?));
                }
                if let Some(rest) = t.strip_prefix("fixed:") {
                    return parse_fixed(rest).map(SchedulerKind::Fixed);
                }
                Err(format!(
                    "unknown scheduler {s:?}; expected one of {}",
                    SchedulerKind::parse_help()
                ))
            }
        }
    }
}

/// Parse the `fixed:` payload: `<big|little>:<nc>:<fc>:<fm>` (raw knob
/// indices, the same numbers `Display` shows for `Fixed`).
fn parse_fixed(rest: &str) -> Result<KnobConfig, String> {
    use joss_platform::{CoreType, FreqIndex, NcIndex};
    let parts: Vec<&str> = rest.split(':').collect();
    if parts.len() != 4 {
        return Err(format!(
            "bad fixed config {rest:?}: expected fixed:<big|little>:<nc>:<fc>:<fm>"
        ));
    }
    let tc = match parts[0] {
        "big" => CoreType::Big,
        "little" => CoreType::Little,
        other => return Err(format!("bad core type {other:?}: expected big or little")),
    };
    let idx = |s: &str, what: &str| {
        s.parse::<usize>()
            .map_err(|e| format!("bad {what} index {s:?}: {e}"))
    };
    Ok(KnobConfig::new(
        tc,
        NcIndex(idx(parts[1], "nc")?),
        FreqIndex(idx(parts[2], "fc")?),
        FreqIndex(idx(parts[3], "fm")?),
    ))
}

impl SchedulerKind {
    /// The accepted `FromStr` spellings, for CLI usage messages.
    pub fn parse_help() -> &'static str {
        "grws, erase, aequitas[:slice_s], steer, joss, joss-nomem, joss+<S>x (e.g. joss+1.2x), \
         speedup:<S>, maxp, fixed:<big|little>:<nc>:<fc>:<fm>"
    }

    /// The canonical `FromStr`-parseable spelling of this scheduler — the
    /// inverse of [`FromStr`], used by the wire protocol
    /// ([`crate::desc::GridDesc`]) so every variant (including payloads)
    /// survives a serialize/parse round trip bit-for-bit.
    pub fn to_cli_string(self) -> String {
        match self {
            SchedulerKind::Grws => "grws".into(),
            SchedulerKind::Erase => "erase".into(),
            SchedulerKind::Aequitas(s) => format!("aequitas:{s}"),
            SchedulerKind::Steer => "steer".into(),
            SchedulerKind::Joss => "joss".into(),
            SchedulerKind::JossNoMemDvfs => "joss-nomem".into(),
            SchedulerKind::JossSpeedup(s) => format!("speedup:{s}"),
            SchedulerKind::JossMaxPerf => "maxp".into(),
            SchedulerKind::Fixed(c) => {
                let tc = match c.tc {
                    joss_platform::CoreType::Big => "big",
                    joss_platform::CoreType::Little => "little",
                };
                format!("fixed:{tc}:{}:{}:{}", c.nc.0, c.fc.0, c.fm.0)
            }
        }
    }

    /// Check this scheduler against a platform's configuration space.
    ///
    /// `FromStr` can only check shape — `fixed:` knob *indices* are raw
    /// table positions whose bounds the parser cannot know — but pinning a
    /// task to an out-of-range index would panic deep inside the engine.
    /// Anything accepting schedulers from an untrusted source (the
    /// `joss-serve` wire path) must validate against the serving platform
    /// first and turn errors into a client fault.
    pub fn validate(&self, space: &joss_platform::ConfigSpace) -> Result<(), String> {
        if let SchedulerKind::Fixed(c) = self {
            let nc_limit = space.n_nc(c.tc);
            if c.nc.0 >= nc_limit {
                return Err(format!(
                    "fixed nc index {} out of range (platform has {nc_limit} core-count \
                     options for {:?})",
                    c.nc.0, c.tc
                ));
            }
            if c.fc.0 >= space.cpu_freqs_ghz.len() {
                return Err(format!(
                    "fixed fc index {} out of range (platform has {} CPU frequencies)",
                    c.fc.0,
                    space.cpu_freqs_ghz.len()
                ));
            }
            if c.fm.0 >= space.mem_freqs_ghz.len() {
                return Err(format!(
                    "fixed fm index {} out of range (platform has {} memory frequencies)",
                    c.fm.0,
                    space.mem_freqs_ghz.len()
                ));
            }
        }
        Ok(())
    }

    /// The six Fig. 8 schedulers in the paper's legend order.
    pub fn fig8_set(aequitas_slice_s: f64) -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Grws,
            SchedulerKind::Erase,
            SchedulerKind::Aequitas(aequitas_slice_s),
            SchedulerKind::Steer,
            SchedulerKind::Joss,
            SchedulerKind::JossNoMemDvfs,
        ]
    }

    /// Instantiate the scheduler.
    pub fn build(self, ctx: &ExperimentContext) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Grws => Box::new(GrwsSched::new()),
            SchedulerKind::Erase => Box::new(EraseSched::new(ctx.models.clone())),
            SchedulerKind::Aequitas(slice) => {
                Box::new(AequitasSched::new().with_slice(Duration::from_secs_f64(slice)))
            }
            SchedulerKind::Steer => Box::new(ModelSched::steer(ctx.models.clone())),
            SchedulerKind::Joss => Box::new(ModelSched::joss(ctx.models.clone())),
            SchedulerKind::JossNoMemDvfs => {
                Box::new(ModelSched::joss_no_mem_dvfs(ctx.models.clone()))
            }
            SchedulerKind::JossSpeedup(s) => {
                Box::new(ModelSched::joss_with_speedup(ctx.models.clone(), s))
            }
            SchedulerKind::JossMaxPerf => Box::new(ModelSched::joss_maxp(ctx.models.clone())),
            SchedulerKind::Fixed(cfg) => Box::new(FixedSched::new(cfg)),
        }
    }
}

/// Run one benchmark under one scheduler.
pub fn run_one(
    ctx: &ExperimentContext,
    kind: SchedulerKind,
    graph: &TaskGraph,
    seed: u64,
) -> RunReport {
    let mut sched = kind.build(ctx);
    SimEngine::run(
        &ctx.machine,
        graph,
        sched.as_mut(),
        joss_core::engine::EngineConfig::with_seed(seed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_matches_engine_names() {
        // These strings are what the instantiated schedulers report as
        // `Scheduler::name()`; record labels rely on the match.
        assert_eq!(SchedulerKind::Grws.to_string(), "GRWS");
        assert_eq!(SchedulerKind::Erase.to_string(), "ERASE");
        assert_eq!(SchedulerKind::Aequitas(0.5).to_string(), "Aequitas");
        assert_eq!(SchedulerKind::Steer.to_string(), "STEER");
        assert_eq!(SchedulerKind::Joss.to_string(), "JOSS");
        assert_eq!(SchedulerKind::JossNoMemDvfs.to_string(), "JOSS_NoMemDVFS");
        assert_eq!(SchedulerKind::JossSpeedup(1.2).to_string(), "JOSS+1.2X");
        assert_eq!(SchedulerKind::JossMaxPerf.to_string(), "JOSS+MAXP");
        // Fixed must match FixedSched's reported name too.
        use joss_core::sched::Scheduler as _;
        use joss_platform::{CoreType, FreqIndex, NcIndex};
        let cfg = KnobConfig::new(CoreType::Big, NcIndex(2), FreqIndex(5), FreqIndex(1));
        assert_eq!(
            SchedulerKind::Fixed(cfg).to_string(),
            FixedSched::new(cfg).name()
        );
    }

    #[test]
    fn eq_is_reflexive_even_for_nan_payloads() {
        let nan = SchedulerKind::JossSpeedup(f64::NAN);
        assert_eq!(nan, nan);
        let set: HashSet<SchedulerKind> = [nan, nan].into_iter().collect();
        assert_eq!(set.len(), 1);
        assert!(set.contains(&nan));
    }

    #[test]
    fn parse_round_trips() {
        for (text, kind) in [
            ("grws", SchedulerKind::Grws),
            ("ERASE", SchedulerKind::Erase),
            ("aequitas", SchedulerKind::Aequitas(1.0)),
            ("aequitas:0.005", SchedulerKind::Aequitas(0.005)),
            ("steer", SchedulerKind::Steer),
            ("joss", SchedulerKind::Joss),
            ("joss-nomem", SchedulerKind::JossNoMemDvfs),
            ("joss+1.2x", SchedulerKind::JossSpeedup(1.2)),
            ("speedup:1.8", SchedulerKind::JossSpeedup(1.8)),
            ("maxp", SchedulerKind::JossMaxPerf),
        ] {
            assert_eq!(text.parse::<SchedulerKind>().unwrap(), kind, "{text}");
        }
        assert!("frobnicate".parse::<SchedulerKind>().is_err());
        assert!("joss+nanx".parse::<SchedulerKind>().is_err());
        assert!("speedup:-1".parse::<SchedulerKind>().is_err());
    }

    #[test]
    fn cli_string_is_the_exact_inverse_of_parse() {
        use joss_platform::{CoreType, FreqIndex, NcIndex};
        let kinds = [
            SchedulerKind::Grws,
            SchedulerKind::Erase,
            SchedulerKind::Aequitas(1.0),
            SchedulerKind::Aequitas(0.005),
            SchedulerKind::Steer,
            SchedulerKind::Joss,
            SchedulerKind::JossNoMemDvfs,
            SchedulerKind::JossSpeedup(1.2),
            SchedulerKind::JossMaxPerf,
            SchedulerKind::Fixed(KnobConfig::new(
                CoreType::Little,
                NcIndex(2),
                FreqIndex(5),
                FreqIndex(1),
            )),
        ];
        for kind in kinds {
            let text = kind.to_cli_string();
            assert_eq!(text.parse::<SchedulerKind>().unwrap(), kind, "{text}");
        }
    }

    #[test]
    fn fixed_parse_rejects_malformed_configs() {
        assert!("fixed:big:2:5:1".parse::<SchedulerKind>().is_ok());
        assert!("fixed:huge:2:5:1".parse::<SchedulerKind>().is_err());
        assert!("fixed:big:2:5".parse::<SchedulerKind>().is_err());
        assert!("fixed:big:2:5:x".parse::<SchedulerKind>().is_err());
    }

    #[test]
    fn validate_bounds_fixed_knob_indices_to_the_platform() {
        use joss_platform::{ConfigSpace, MachineModel};
        let machine = MachineModel::tx2(1);
        let space = ConfigSpace::from_spec(&machine.spec);
        // Every non-Fixed scheduler is platform-independent.
        for kind in [
            SchedulerKind::Grws,
            SchedulerKind::Aequitas(0.5),
            SchedulerKind::JossSpeedup(1.2),
        ] {
            assert!(kind.validate(&space).is_ok());
        }
        let good: SchedulerKind = "fixed:big:0:0:0".parse().unwrap();
        assert!(good.validate(&space).is_ok());
        for (bad, what) in [
            ("fixed:big:99:0:0", "nc"),
            ("fixed:big:0:99:0", "fc"),
            ("fixed:big:0:0:99", "fm"),
        ] {
            let kind: SchedulerKind = bad.parse().unwrap();
            let err = kind.validate(&space).unwrap_err();
            assert!(err.contains(what), "{bad}: {err}");
        }
    }

    #[test]
    fn eq_hash_distinguish_payloads() {
        let set: HashSet<SchedulerKind> = [
            SchedulerKind::Joss,
            SchedulerKind::JossSpeedup(1.2),
            SchedulerKind::JossSpeedup(1.4),
            SchedulerKind::JossSpeedup(1.2),
            SchedulerKind::Aequitas(1.0),
            SchedulerKind::Aequitas(0.005),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 5);
        assert!(set.contains(&SchedulerKind::JossSpeedup(1.4)));
    }
}
