//! The wire-format grid description: a [`SpecGrid`] as pure data.
//!
//! A [`SpecGrid`] holds instantiated task graphs, so it cannot itself cross
//! a process boundary. [`GridDesc`] is its round-trippable description —
//! workloads by Fig. 8 suite label, schedulers in their canonical CLI
//! spelling, seeds, scale — with a **canonical JSON form**: fixed key
//! order (`workloads`, `schedulers`, `seeds`, `scale`, `record_trace`), no
//! whitespace. [`GridDesc::from_json`] accepts any key order and
//! whitespace; [`GridDesc::spec_hash`] hashes the canonical form, so the
//! hash is invariant under reordering/reformatting — that is what makes it
//! usable as a results-cache key in the serve daemon.
//!
//! `parse(print(desc)) == desc` and the hash invariance are enforced by
//! `crates/sweep/tests/wire_roundtrip.rs`.

use crate::json::{self, Value};
use crate::scheduler::SchedulerKind;
use crate::spec::{SpecGrid, Workload};
use joss_workloads::{fig8_bench, fig8_labels, Scale};
use std::fmt::Write as _;

/// Declarative, serializable description of a [`SpecGrid`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridDesc {
    /// Fig. 8 suite labels (resolved against [`fig8_suite`] at `scale`).
    pub workloads: Vec<String>,
    /// Scheduler columns.
    pub schedulers: Vec<SchedulerKind>,
    /// Seeds (empty means the grid default, [`crate::spec::DEFAULT_SEED`]).
    pub seeds: Vec<u64>,
    /// Workload scale shared by every spec.
    pub scale: Scale,
    /// Opt every spec into execution-trace recording.
    pub record_trace: bool,
}

impl Default for GridDesc {
    fn default() -> Self {
        GridDesc {
            workloads: Vec::new(),
            schedulers: Vec::new(),
            seeds: Vec::new(),
            scale: DEFAULT_SCALE,
            record_trace: false,
        }
    }
}

/// Scale assumed when a request omits it (matches the `joss_sweep` CLI).
pub const DEFAULT_SCALE: Scale = Scale::Divided(100);

impl GridDesc {
    /// Number of specs [`GridDesc::resolve`]'s grid will emit.
    pub fn spec_count(&self) -> usize {
        self.workloads.len() * self.schedulers.len() * self.seeds.len().max(1)
    }

    /// The canonical JSON form: fixed key order, no whitespace. Two
    /// descriptions are equal iff their canonical strings are equal.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::from("{\"workloads\":[");
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::quote(w));
        }
        out.push_str("],\"schedulers\":[");
        for (i, s) in self.schedulers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::quote(&s.to_cli_string()));
        }
        out.push_str("],\"seeds\":[");
        for (i, seed) in self.seeds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{seed}");
        }
        out.push_str("],\"scale\":");
        match self.scale {
            Scale::Full => out.push_str("\"full\""),
            Scale::Divided(d) => {
                let _ = write!(out, "{d}");
            }
        }
        let _ = write!(out, ",\"record_trace\":{}}}", self.record_trace);
        out
    }

    /// Parse a description from JSON (any key order/whitespace). Unknown
    /// keys are rejected so protocol typos fail loudly instead of silently
    /// running a different grid.
    pub fn from_json(text: &str) -> Result<GridDesc, String> {
        let root = json::parse(text)?;
        let members = root
            .as_object()
            .ok_or_else(|| "grid description must be a JSON object".to_string())?;
        let mut desc = GridDesc::default();
        for (key, value) in members {
            match key.as_str() {
                "workloads" => {
                    desc.workloads = string_array(value, "workloads")?;
                }
                "schedulers" => {
                    desc.schedulers = string_array(value, "schedulers")?
                        .iter()
                        .map(|s| s.parse())
                        .collect::<Result<_, _>>()?;
                }
                "seeds" => {
                    let items = value
                        .as_array()
                        .ok_or_else(|| "\"seeds\" must be an array".to_string())?;
                    desc.seeds = items
                        .iter()
                        .map(|v| {
                            v.as_u64()
                                .ok_or_else(|| "seeds must be unsigned integers".to_string())
                        })
                        .collect::<Result<_, _>>()?;
                }
                "scale" => {
                    desc.scale = match value {
                        Value::String(s) if s == "full" => Scale::Full,
                        v => {
                            let d = v.as_u64().ok_or_else(|| {
                                "\"scale\" must be \"full\" or a positive divisor".to_string()
                            })?;
                            let d = u32::try_from(d)
                                .map_err(|_| "scale divisor too large".to_string())?;
                            if d == 0 {
                                return Err("scale divisor must be >= 1".to_string());
                            }
                            Scale::Divided(d)
                        }
                    };
                }
                "record_trace" => {
                    desc.record_trace = value
                        .as_bool()
                        .ok_or_else(|| "\"record_trace\" must be a boolean".to_string())?;
                }
                other => return Err(format!("unknown grid description key {other:?}")),
            }
        }
        if desc.workloads.is_empty() {
            return Err("grid description needs a non-empty \"workloads\" array".to_string());
        }
        if desc.schedulers.is_empty() {
            return Err("grid description needs a non-empty \"schedulers\" array".to_string());
        }
        Ok(desc)
    }

    /// Stable 64-bit key for this grid: FNV-1a over the canonical JSON, so
    /// it is invariant under JSON key order and whitespace by construction.
    pub fn spec_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.to_canonical_json().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Instantiate the described grid, resolving workload labels against
    /// the Fig. 8 suite at this description's scale.
    ///
    /// Only the *named* workloads are constructed ([`fig8_bench`] builds
    /// one instance, not the suite) — this runs on the serve daemon's miss
    /// path while an admission permit is held, so a one-workload grid must
    /// not pay for 21 full-scale graph builds.
    pub fn resolve(&self) -> Result<SpecGrid, String> {
        if self.workloads.is_empty() || self.schedulers.is_empty() {
            return Err("grid needs at least one workload and one scheduler".to_string());
        }
        let workloads: Vec<Workload> = self
            .workloads
            .iter()
            .map(|label| {
                fig8_bench(label, self.scale)
                    .map(Workload::from)
                    .ok_or_else(|| {
                        format!(
                            "unknown workload {label:?}; available: {}",
                            fig8_labels().join(", ")
                        )
                    })
            })
            .collect::<Result<_, _>>()?;
        Ok(SpecGrid::new()
            .workloads(workloads)
            .schedulers(self.schedulers.iter().copied())
            .seeds(self.seeds.iter().copied())
            .record_trace(self.record_trace))
    }
}

fn string_array(value: &Value, what: &str) -> Result<Vec<String>, String> {
    let items = value
        .as_array()
        .ok_or_else(|| format!("{what:?} must be an array of strings"))?;
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{what:?} must contain only strings"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GridDesc {
        GridDesc {
            workloads: vec!["DP".into(), "MM_256_dop4".into()],
            schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
            seeds: vec![42, 7],
            scale: Scale::Divided(400),
            record_trace: false,
        }
    }

    #[test]
    fn canonical_json_has_the_documented_shape() {
        assert_eq!(
            sample().to_canonical_json(),
            "{\"workloads\":[\"DP\",\"MM_256_dop4\"],\
             \"schedulers\":[\"grws\",\"joss\"],\
             \"seeds\":[42,7],\"scale\":400,\"record_trace\":false}"
        );
    }

    #[test]
    fn parse_accepts_any_key_order_and_defaults() {
        let desc = GridDesc::from_json(
            "{ \"scale\": \"full\", \"schedulers\": [\"joss\"], \"workloads\": [\"DP\"] }",
        )
        .unwrap();
        assert_eq!(desc.scale, Scale::Full);
        assert!(desc.seeds.is_empty());
        assert!(!desc.record_trace);
        assert_eq!(desc.spec_count(), 1);
    }

    #[test]
    fn parse_rejects_bad_descriptions() {
        for bad in [
            "[]",
            "{}",
            "{\"workloads\":[\"DP\"]}",
            "{\"workloads\":[],\"schedulers\":[\"joss\"]}",
            "{\"workloads\":[\"DP\"],\"schedulers\":[\"nope\"]}",
            "{\"workloads\":[\"DP\"],\"schedulers\":[\"joss\"],\"scale\":0}",
            "{\"workloads\":[\"DP\"],\"schedulers\":[\"joss\"],\"seeds\":[-1]}",
            "{\"workloads\":[\"DP\"],\"schedulers\":[\"joss\"],\"surprise\":1}",
            "{\"workloads\":[1],\"schedulers\":[\"joss\"]}",
        ] {
            assert!(GridDesc::from_json(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn resolve_builds_the_described_grid() {
        let grid = sample().resolve().unwrap();
        assert_eq!(grid.len(), sample().spec_count());
        let specs = grid.build();
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[0].label(), "DP/GRWS/seed42");
        assert_eq!(specs[7].label(), "MM_256_dop4/JOSS/seed7");
    }

    #[test]
    fn resolve_reports_unknown_workloads() {
        let mut desc = sample();
        desc.workloads.push("NOPE".into());
        let err = desc.resolve().unwrap_err();
        assert!(err.contains("NOPE") && err.contains("DP"), "{err}");
    }

    #[test]
    fn hash_distinguishes_grids_and_ignores_formatting() {
        let a = sample();
        let reformatted = GridDesc::from_json(
            "{\n  \"seeds\": [42, 7],\n  \"scale\": 400,\n  \"record_trace\": false,\n  \
             \"schedulers\": [\"grws\", \"joss\"],\n  \
             \"workloads\": [\"DP\", \"MM_256_dop4\"]\n}",
        )
        .unwrap();
        assert_eq!(a, reformatted);
        assert_eq!(a.spec_hash(), reformatted.spec_hash());
        let mut b = a.clone();
        b.seeds = vec![42];
        assert_ne!(a.spec_hash(), b.spec_hash());
    }
}
