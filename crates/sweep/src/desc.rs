//! The wire-format grid description: a [`SpecGrid`] as pure data.
//!
//! A [`SpecGrid`] holds instantiated task graphs, so it cannot itself cross
//! a process boundary. [`GridDesc`] is its round-trippable description —
//! workloads by Fig. 8 suite label, schedulers in their canonical CLI
//! spelling, seeds, scale — with a **canonical JSON form**: fixed key
//! order (`workloads`, `schedulers`, `seeds`, `scale`, `record_trace`,
//! then `shard` only when present), no whitespace. [`GridDesc::from_json`] accepts any key order and
//! whitespace; [`GridDesc::spec_hash`] hashes the canonical form, so the
//! hash is invariant under reordering/reformatting — that is what makes it
//! usable as a results-cache key in the serve daemon.
//!
//! `parse(print(desc)) == desc` and the hash invariance are enforced by
//! `crates/sweep/tests/wire_roundtrip.rs`.

use crate::json::{self, Value};
use crate::scheduler::SchedulerKind;
use crate::shard::SpecRange;
use crate::spec::{EngineSpec, RunSpec, SpecGrid, Workload, DEFAULT_SEED};
use joss_workloads::{fig8_bench, fig8_labels, Scale};
use std::fmt::Write as _;

/// Declarative, serializable description of a [`SpecGrid`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridDesc {
    /// Fig. 8 suite labels (resolved against [`fig8_suite`] at `scale`).
    pub workloads: Vec<String>,
    /// Scheduler columns.
    pub schedulers: Vec<SchedulerKind>,
    /// Seeds (empty means the grid default, [`crate::spec::DEFAULT_SEED`]).
    pub seeds: Vec<u64>,
    /// Workload scale shared by every spec.
    pub scale: Scale,
    /// Opt every spec into execution-trace recording.
    pub record_trace: bool,
    /// Run only this contiguous range of the grid's global spec indices
    /// (`None` runs the whole grid). The described *grid* is unchanged —
    /// records of a sharded run carry their **global** spec indices, which
    /// is what lets shard outputs concatenate byte-identically into the
    /// unsharded JSONL (see [`crate::shard`]).
    pub shard: Option<SpecRange>,
}

impl Default for GridDesc {
    fn default() -> Self {
        GridDesc {
            workloads: Vec::new(),
            schedulers: Vec::new(),
            seeds: Vec::new(),
            scale: DEFAULT_SCALE,
            record_trace: false,
            shard: None,
        }
    }
}

/// Scale assumed when a request omits it (matches the `joss_sweep` CLI).
pub const DEFAULT_SCALE: Scale = Scale::Divided(100);

impl GridDesc {
    /// Number of specs in the **full** described grid, shard or not.
    pub fn spec_count(&self) -> usize {
        self.workloads.len() * self.schedulers.len() * self.seeds.len().max(1)
    }

    /// Number of specs this description will actually *run*: the shard's
    /// length when sharded, the full grid otherwise.
    pub fn run_count(&self) -> usize {
        self.shard.map_or_else(|| self.spec_count(), |r| r.len())
    }

    /// Global index of the first record this description emits.
    pub fn index_base(&self) -> usize {
        self.shard.map_or(0, |r| r.start)
    }

    /// The same grid restricted to one contiguous spec-index range (the
    /// sub-grid a fleet coordinator dispatches to one backend).
    pub fn with_shard(&self, range: SpecRange) -> GridDesc {
        GridDesc {
            shard: Some(range),
            ..self.clone()
        }
    }

    /// Err unless the shard range (if any) is a valid, non-empty sub-range
    /// of the full grid.
    pub fn validate_shard(&self) -> Result<(), String> {
        if let Some(r) = self.shard {
            if r.start >= r.end {
                return Err(format!("shard range {r} is empty"));
            }
            if r.end > self.spec_count() {
                return Err(format!(
                    "shard range {r} exceeds the grid's {} specs",
                    self.spec_count()
                ));
            }
        }
        Ok(())
    }

    /// The canonical JSON form: fixed key order, no whitespace. Two
    /// descriptions are equal iff their canonical strings are equal.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::from("{\"workloads\":[");
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::quote(w));
        }
        out.push_str("],\"schedulers\":[");
        for (i, s) in self.schedulers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json::quote(&s.to_cli_string()));
        }
        out.push_str("],\"seeds\":[");
        for (i, seed) in self.seeds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{seed}");
        }
        out.push_str("],\"scale\":");
        match self.scale {
            Scale::Full => out.push_str("\"full\""),
            Scale::Divided(d) => {
                let _ = write!(out, "{d}");
            }
        }
        let _ = write!(out, ",\"record_trace\":{}", self.record_trace);
        // The shard key appears only when present, so unsharded grids keep
        // the canonical form (and spec hash) they had before sharding
        // existed — a shard is a different cache entry than its full grid.
        if let Some(r) = self.shard {
            let _ = write!(out, ",\"shard\":[{},{}]", r.start, r.end);
        }
        out.push('}');
        out
    }

    /// The canonical JSON of the **base grid** — this description with any
    /// shard restriction stripped. Every shard cut of the same grid shares
    /// one base canonical (and base [`GridDesc::spec_hash`]), which is
    /// what lets a per-spec result store recognize overlapping ranges of
    /// the same grid regardless of how the ranges were cut.
    pub fn to_base_canonical_json(&self) -> String {
        match self.shard {
            None => self.to_canonical_json(),
            Some(_) => GridDesc {
                shard: None,
                ..self.clone()
            }
            .to_canonical_json(),
        }
    }

    /// Parse a description from JSON (any key order/whitespace). Unknown
    /// keys are rejected so protocol typos fail loudly instead of silently
    /// running a different grid.
    pub fn from_json(text: &str) -> Result<GridDesc, String> {
        let root = json::parse(text)?;
        let members = root
            .as_object()
            .ok_or_else(|| "grid description must be a JSON object".to_string())?;
        let mut desc = GridDesc::default();
        for (key, value) in members {
            match key.as_str() {
                "workloads" => {
                    desc.workloads = string_array(value, "workloads")?;
                }
                "schedulers" => {
                    desc.schedulers = string_array(value, "schedulers")?
                        .iter()
                        .map(|s| s.parse())
                        .collect::<Result<_, _>>()?;
                }
                "seeds" => {
                    let items = value
                        .as_array()
                        .ok_or_else(|| "\"seeds\" must be an array".to_string())?;
                    desc.seeds = items
                        .iter()
                        .map(|v| {
                            v.as_u64()
                                .ok_or_else(|| "seeds must be unsigned integers".to_string())
                        })
                        .collect::<Result<_, _>>()?;
                }
                "scale" => {
                    desc.scale = match value {
                        Value::String(s) if s == "full" => Scale::Full,
                        v => {
                            let d = v.as_u64().ok_or_else(|| {
                                "\"scale\" must be \"full\" or a positive divisor".to_string()
                            })?;
                            let d = u32::try_from(d)
                                .map_err(|_| "scale divisor too large".to_string())?;
                            if d == 0 {
                                return Err("scale divisor must be >= 1".to_string());
                            }
                            Scale::Divided(d)
                        }
                    };
                }
                "record_trace" => {
                    desc.record_trace = value
                        .as_bool()
                        .ok_or_else(|| "\"record_trace\" must be a boolean".to_string())?;
                }
                "shard" => {
                    let items = value
                        .as_array()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| "\"shard\" must be a [start,end] pair".to_string())?;
                    let bound = |v: &Value| {
                        v.as_u64()
                            .and_then(|n| usize::try_from(n).ok())
                            .ok_or_else(|| "shard bounds must be unsigned integers".to_string())
                    };
                    desc.shard = Some(SpecRange {
                        start: bound(&items[0])?,
                        end: bound(&items[1])?,
                    });
                }
                other => return Err(format!("unknown grid description key {other:?}")),
            }
        }
        if desc.workloads.is_empty() {
            return Err("grid description needs a non-empty \"workloads\" array".to_string());
        }
        if desc.schedulers.is_empty() {
            return Err("grid description needs a non-empty \"schedulers\" array".to_string());
        }
        desc.validate_shard()?;
        Ok(desc)
    }

    /// Stable 64-bit key for this grid: FNV-1a over the canonical JSON, so
    /// it is invariant under JSON key order and whitespace by construction.
    pub fn spec_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in self.to_canonical_json().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Instantiate the described grid, resolving workload labels against
    /// the Fig. 8 suite at this description's scale.
    ///
    /// Only the *named* workloads are constructed ([`fig8_bench`] builds
    /// one instance, not the suite) — this runs on the serve daemon's miss
    /// path while an admission permit is held, so a one-workload grid must
    /// not pay for 21 full-scale graph builds.
    pub fn resolve(&self) -> Result<SpecGrid, String> {
        if self.workloads.is_empty() || self.schedulers.is_empty() {
            return Err("grid needs at least one workload and one scheduler".to_string());
        }
        if self.shard.is_some() {
            // A shard is not a cartesian grid; the full-grid builder would
            // silently run everything. Force callers through the
            // shard-aware path.
            return Err("sharded description: use resolve_specs()".to_string());
        }
        let workloads: Vec<Workload> = self
            .workloads
            .iter()
            .map(|label| self.build_workload(label))
            .collect::<Result<_, _>>()?;
        Ok(SpecGrid::new()
            .workloads(workloads)
            .schedulers(self.schedulers.iter().copied())
            .seeds(self.seeds.iter().copied())
            .record_trace(self.record_trace))
    }

    /// Instantiate the spec list this description *runs*, plus the global
    /// index of its first spec: the whole grid for an unsharded
    /// description, exactly the shard's slice (in global spec order) for a
    /// sharded one.
    ///
    /// Only workloads whose spec blocks intersect the shard are built —
    /// spec order is workload-major, so a shard touches a contiguous run
    /// of workloads and a backend serving one shard of a 21-workload grid
    /// builds only its share of the graphs. The slice is exactly what
    /// [`SpecGrid::build`] would emit at those indices, which is what
    /// makes sharded records byte-identical to the full run's.
    pub fn resolve_specs(&self) -> Result<(usize, Vec<RunSpec>), String> {
        self.validate_shard()?;
        let range = match self.shard {
            None => return Ok((0, self.resolve()?.build())),
            Some(range) => range,
        };
        let seeds: Vec<u64> = if self.seeds.is_empty() {
            vec![DEFAULT_SEED]
        } else {
            self.seeds.clone()
        };
        let block = self.schedulers.len() * seeds.len(); // specs per workload
        let first_w = range.start / block;
        let last_w = (range.end - 1) / block;
        let built: Vec<Workload> = (first_w..=last_w)
            .map(|wi| self.build_workload(&self.workloads[wi]))
            .collect::<Result<_, _>>()?;
        let mut specs = Vec::with_capacity(range.len());
        for index in range.start..range.end {
            let rem = index % block;
            specs.push(RunSpec {
                workload: built[index / block - first_w].clone(),
                scheduler: self.schedulers[rem / seeds.len()],
                engine: EngineSpec {
                    seed: seeds[rem % seeds.len()],
                    record_trace: self.record_trace,
                },
            });
        }
        Ok((range.start, specs))
    }

    /// Build one labelled workload at this description's scale.
    fn build_workload(&self, label: &str) -> Result<Workload, String> {
        fig8_bench(label, self.scale)
            .map(Workload::from)
            .ok_or_else(|| {
                format!(
                    "unknown workload {label:?}; available: {}",
                    fig8_labels().join(", ")
                )
            })
    }
}

fn string_array(value: &Value, what: &str) -> Result<Vec<String>, String> {
    let items = value
        .as_array()
        .ok_or_else(|| format!("{what:?} must be an array of strings"))?;
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{what:?} must contain only strings"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GridDesc {
        GridDesc {
            workloads: vec!["DP".into(), "MM_256_dop4".into()],
            schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
            seeds: vec![42, 7],
            scale: Scale::Divided(400),
            record_trace: false,
            shard: None,
        }
    }

    #[test]
    fn canonical_json_has_the_documented_shape() {
        assert_eq!(
            sample().to_canonical_json(),
            "{\"workloads\":[\"DP\",\"MM_256_dop4\"],\
             \"schedulers\":[\"grws\",\"joss\"],\
             \"seeds\":[42,7],\"scale\":400,\"record_trace\":false}"
        );
    }

    #[test]
    fn parse_accepts_any_key_order_and_defaults() {
        let desc = GridDesc::from_json(
            "{ \"scale\": \"full\", \"schedulers\": [\"joss\"], \"workloads\": [\"DP\"] }",
        )
        .unwrap();
        assert_eq!(desc.scale, Scale::Full);
        assert!(desc.seeds.is_empty());
        assert!(!desc.record_trace);
        assert_eq!(desc.spec_count(), 1);
    }

    #[test]
    fn parse_rejects_bad_descriptions() {
        for bad in [
            "[]",
            "{}",
            "{\"workloads\":[\"DP\"]}",
            "{\"workloads\":[],\"schedulers\":[\"joss\"]}",
            "{\"workloads\":[\"DP\"],\"schedulers\":[\"nope\"]}",
            "{\"workloads\":[\"DP\"],\"schedulers\":[\"joss\"],\"scale\":0}",
            "{\"workloads\":[\"DP\"],\"schedulers\":[\"joss\"],\"seeds\":[-1]}",
            "{\"workloads\":[\"DP\"],\"schedulers\":[\"joss\"],\"surprise\":1}",
            "{\"workloads\":[1],\"schedulers\":[\"joss\"]}",
        ] {
            assert!(GridDesc::from_json(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn resolve_builds_the_described_grid() {
        let grid = sample().resolve().unwrap();
        assert_eq!(grid.len(), sample().spec_count());
        let specs = grid.build();
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[0].label(), "DP/GRWS/seed42");
        assert_eq!(specs[7].label(), "MM_256_dop4/JOSS/seed7");
    }

    #[test]
    fn resolve_reports_unknown_workloads() {
        let mut desc = sample();
        desc.workloads.push("NOPE".into());
        let err = desc.resolve().unwrap_err();
        assert!(err.contains("NOPE") && err.contains("DP"), "{err}");
    }

    #[test]
    fn shard_round_trips_and_is_validated() {
        let sharded = sample().with_shard(SpecRange::new(2, 7));
        let json = sharded.to_canonical_json();
        assert!(json.ends_with(",\"shard\":[2,7]}"), "{json}");
        assert_eq!(GridDesc::from_json(&json).unwrap(), sharded);
        // Sharding changes the cache identity but not the base canonical
        // form, which stays exactly what it was before shards existed.
        assert_ne!(sharded.spec_hash(), sample().spec_hash());
        assert!(!sample().to_canonical_json().contains("shard"));
        // Out-of-range or empty shards are rejected loudly.
        for bad in ["[3,3]", "[5,2]", "[0,9]", "[1]", "\"x\"", "[0,-1]"] {
            let text = format!(
                "{{\"workloads\":[\"DP\",\"MM_256_dop4\"],\"schedulers\":[\"grws\",\"joss\"],\
                 \"seeds\":[42,7],\"scale\":400,\"record_trace\":false,\"shard\":{bad}}}"
            );
            assert!(GridDesc::from_json(&text).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn resolve_specs_slices_match_the_full_grid() {
        let desc = sample();
        let full = desc.resolve().unwrap().build();
        let (base, all) = desc.resolve_specs().unwrap();
        assert_eq!(base, 0);
        assert_eq!(all.len(), full.len());
        for (start, end) in [(0, 8), (2, 7), (3, 4), (0, 1), (7, 8), (1, 6)] {
            let (base, slice) = desc
                .with_shard(SpecRange::new(start, end))
                .resolve_specs()
                .unwrap();
            assert_eq!(base, start);
            assert_eq!(slice.len(), end - start);
            for (offset, spec) in slice.iter().enumerate() {
                assert_eq!(spec.label(), full[start + offset].label());
            }
        }
        // The full-grid builder refuses sharded descriptions.
        assert!(desc.with_shard(SpecRange::new(0, 2)).resolve().is_err());
    }

    #[test]
    fn hash_distinguishes_grids_and_ignores_formatting() {
        let a = sample();
        let reformatted = GridDesc::from_json(
            "{\n  \"seeds\": [42, 7],\n  \"scale\": 400,\n  \"record_trace\": false,\n  \
             \"schedulers\": [\"grws\", \"joss\"],\n  \
             \"workloads\": [\"DP\", \"MM_256_dop4\"]\n}",
        )
        .unwrap();
        assert_eq!(a, reformatted);
        assert_eq!(a.spec_hash(), reformatted.spec_hash());
        let mut b = a.clone();
        b.seeds = vec![42];
        assert_ne!(a.spec_hash(), b.spec_hash());
    }
}
