//! Sharding: partition a grid's spec-index space into contiguous,
//! cost-balanced ranges.
//!
//! Every [`RunSpec`](crate::RunSpec) of a grid is independent, so a
//! campaign parallelizes at the grid level too: split the spec-index space
//! `0..n` into contiguous ranges, run each range anywhere (another
//! process, another machine), and **concatenate the outputs in range
//! order** — because records carry global spec indices and specs are pure
//! functions of `(index, spec, context)`, the concatenation is
//! byte-identical to the unsharded run. That property is what both the
//! `joss_sweep --shard i/n` offline mode and the `joss-fleet` coordinator
//! lean on, and `crates/sweep/tests/shard_plan.rs` asserts it.
//!
//! Ranges must be *contiguous* (not strided) so each shard's output is a
//! contiguous byte range of the full JSONL. But a naive even split is a
//! poor plan: the Fig. 8 suite mixes ~40-task and ~14k-task instances, and
//! spec order is workload-major, so equal-*count* shards can differ by
//! orders of magnitude in work. [`ShardPlan::weighted`] therefore solves
//! the classic contiguous-partition minimax problem over per-spec costs
//! (task counts are the cost model — simulation time is near-linear in
//! events, which scale with tasks), keeping the heaviest shard within
//! `max_item` of the mean: whenever no single spec exceeds the mean shard
//! cost, no shard exceeds twice the mean.

use crate::desc::GridDesc;
use joss_workloads::fig8_bench;
use std::fmt;

/// A half-open, contiguous range of global spec indices, `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecRange {
    /// First spec index in the range.
    pub start: usize,
    /// One past the last spec index.
    pub end: usize,
}

impl SpecRange {
    /// The range `start..end`; panics if empty or inverted.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start < end, "spec range {start}..{end} is empty");
        SpecRange { start, end }
    }

    /// Number of specs in the range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Always false: [`SpecRange::new`] rejects empty ranges.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether `index` falls inside the range.
    pub fn contains(&self, index: usize) -> bool {
        (self.start..self.end).contains(&index)
    }
}

impl fmt::Display for SpecRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A partition of `0..n_specs` into contiguous, non-empty, ascending
/// ranges — one per shard.
///
/// Invariants (enforced by construction, proptested in
/// `crates/sweep/tests/shard_plan.rs`): every shard is non-empty, shards
/// are pairwise disjoint, consecutive shards are adjacent
/// (`shard[i].end == shard[i+1].start`), the first starts at 0 and the
/// last ends at `n_specs` — so concatenating shard outputs in plan order
/// reproduces the full grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    ranges: Vec<SpecRange>,
}

impl ShardPlan {
    /// How many micro-ranges an elastic (work-stealing) coordinator cuts
    /// per backend: enough granularity that a straggler never holds more
    /// than ~1/4 of its fair share hostage in a single range, small enough
    /// that per-range dispatch overhead (one HTTP exchange each) stays
    /// negligible against millisecond-scale campaign ranges.
    pub const MICRO_FACTOR: usize = 4;

    /// Cost-weighted micro-range plan for an elastic fleet: like
    /// [`ShardPlan::weighted`] but targeting `backends * MICRO_FACTOR`
    /// ranges, so a work-stealing coordinator always has spare ranges to
    /// hand an idle backend. Same partition invariants as every plan:
    /// ranges are non-empty, disjoint, adjacent, and union to
    /// `0..costs.len()`.
    pub fn micro(costs: &[f64], backends: usize) -> ShardPlan {
        ShardPlan::weighted(costs, backends.max(1) * Self::MICRO_FACTOR)
    }

    /// Split `0..n_specs` into (up to) `shards` ranges of near-equal
    /// *count*. The shard count is clamped to `n_specs` (shards are never
    /// empty) and to at least 1. `n_specs` must be non-zero.
    pub fn uniform(n_specs: usize, shards: usize) -> ShardPlan {
        assert!(n_specs > 0, "cannot shard an empty grid");
        let shards = shards.clamp(1, n_specs);
        let base = n_specs / shards;
        let extra = n_specs % shards; // first `extra` shards get one more
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0;
        for s in 0..shards {
            let len = base + usize::from(s < extra);
            ranges.push(SpecRange::new(start, start + len));
            start += len;
        }
        ShardPlan { ranges }
    }

    /// Split `0..costs.len()` into (up to) `shards` contiguous ranges
    /// minimizing the maximum per-shard cost sum (the linear-partition
    /// minimax problem, solved by binary search over the shard capacity
    /// with a greedy feasibility check).
    ///
    /// Guarantee: the heaviest shard costs at most `mean + max_item`
    /// (within float tolerance), where `mean = total / shards`. In
    /// particular, when no single item costs more than the mean — i.e.
    /// when splits *can* balance the load — no shard exceeds twice the
    /// mean. Non-positive costs are floored at a tiny epsilon so
    /// zero-cost runs still occupy an index.
    pub fn weighted(costs: &[f64], shards: usize) -> ShardPlan {
        assert!(!costs.is_empty(), "cannot shard an empty grid");
        let shards = shards.clamp(1, costs.len());
        if shards == 1 {
            return ShardPlan {
                ranges: vec![SpecRange::new(0, costs.len())],
            };
        }
        let costs: Vec<f64> = costs.iter().map(|&c| c.max(1e-12)).collect();
        let total: f64 = costs.iter().sum();
        let max_item = costs.iter().cloned().fold(0.0, f64::max);

        // Feasibility: can a greedy fill pack everything into `shards`
        // bins of capacity `cap`? (Greedy is optimal for the contiguous
        // feasibility question.)
        let bins_needed = |cap: f64| -> usize {
            let mut bins = 1usize;
            let mut load = 0.0;
            for &c in &costs {
                if load + c > cap {
                    bins += 1;
                    load = c;
                } else {
                    load += c;
                }
            }
            bins
        };

        let mut lo = max_item;
        let mut hi = total;
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if bins_needed(mid) <= shards {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        // `hi` is feasible; pad a hair so re-running the greedy fill below
        // cannot flip a boundary on float round-off.
        let cap = hi * (1.0 + 1e-9);

        // Greedy fill at the found capacity, forcing exactly `shards`
        // non-empty bins: never leave fewer items than remaining bins.
        let n = costs.len();
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        for bin in 0..shards {
            let bins_left_after = shards - bin - 1;
            let mut end = start + 1; // non-empty
            let mut load = costs[start];
            while end < n - bins_left_after && load + costs[end] <= cap {
                load += costs[end];
                end += 1;
            }
            if bin + 1 == shards {
                end = n; // last bin takes the tail (greedy fit guarantees cap)
            }
            ranges.push(SpecRange::new(start, end));
            start = end;
        }
        debug_assert_eq!(start, n);
        ShardPlan { ranges }
    }

    /// Number of shards in the plan.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Always false: plans have at least one shard.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The plan's ranges, ascending and adjacent.
    pub fn ranges(&self) -> &[SpecRange] {
        &self.ranges
    }

    /// Range of shard `i`; panics when out of range.
    pub fn shard(&self, i: usize) -> SpecRange {
        self.ranges[i]
    }

    /// Total number of specs covered (`== n_specs`).
    pub fn n_specs(&self) -> usize {
        self.ranges.last().map_or(0, |r| r.end)
    }
}

/// Per-spec simulation-cost estimates for a described grid, in spec order.
///
/// The cost model is the workload's task count at the grid's scale —
/// engine time is near-linear in events, which scale with tasks — so the
/// cost of a spec is independent of its scheduler and seed. Each distinct
/// workload label is built exactly once. Fails like
/// [`GridDesc::resolve`] on unknown labels.
pub fn grid_costs(desc: &GridDesc) -> Result<Vec<f64>, String> {
    let per_workload: Vec<f64> = desc
        .workloads
        .iter()
        .map(|label| {
            fig8_bench(label, desc.scale)
                .map(|b| b.graph.n_tasks() as f64)
                .ok_or_else(|| format!("unknown workload {label:?}"))
        })
        .collect::<Result<_, _>>()?;
    let runs_per_workload = desc.schedulers.len() * desc.seeds.len().max(1);
    let mut costs = Vec::with_capacity(desc.spec_count());
    for &c in &per_workload {
        costs.extend(std::iter::repeat_n(c, runs_per_workload));
    }
    Ok(costs)
}

/// Convenience: a cost-weighted plan for a described grid (the planner the
/// `joss_sweep --shard i/n` CLI and the `joss-fleet` coordinator share, so
/// both agree on shard boundaries for the same grid).
pub fn plan_grid(desc: &GridDesc, shards: usize) -> Result<ShardPlan, String> {
    Ok(ShardPlan::weighted(&grid_costs(desc)?, shards))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(plan: &ShardPlan, n: usize) {
        assert!(!plan.is_empty());
        assert_eq!(plan.ranges()[0].start, 0);
        assert_eq!(plan.n_specs(), n);
        for pair in plan.ranges().windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "shards must be adjacent");
        }
        for r in plan.ranges() {
            assert!(!r.is_empty(), "shards must be non-empty");
        }
    }

    #[test]
    fn uniform_split_covers_and_balances_counts() {
        for (n, k) in [(10, 3), (7, 7), (5, 9), (1, 1), (100, 8)] {
            let plan = ShardPlan::uniform(n, k);
            assert_eq!(plan.len(), k.min(n));
            assert_partition(&plan, n);
            let lens: Vec<usize> = plan.ranges().iter().map(SpecRange::len).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            assert!(
                max - min <= 1,
                "uniform shards differ by more than 1: {lens:?}"
            );
        }
    }

    #[test]
    fn weighted_split_isolates_the_heavy_prefix() {
        // One huge item followed by many light ones: the minimax plan puts
        // the huge item alone and spreads the rest.
        let mut costs = vec![1000.0];
        costs.extend(std::iter::repeat_n(1.0, 30));
        let plan = ShardPlan::weighted(&costs, 4);
        assert_partition(&plan, costs.len());
        assert_eq!(plan.shard(0), SpecRange::new(0, 1));
        let shard_cost = |r: SpecRange| costs[r.start..r.end].iter().sum::<f64>();
        for r in &plan.ranges()[1..] {
            assert!(shard_cost(*r) <= 1000.0);
        }
    }

    #[test]
    fn weighted_bound_holds_against_mean_plus_max() {
        let costs: Vec<f64> = (0..57).map(|i| 1.0 + (i * 37 % 19) as f64).collect();
        for k in 1..=12 {
            let plan = ShardPlan::weighted(&costs, k);
            assert_partition(&plan, costs.len());
            let total: f64 = costs.iter().sum();
            let mean = total / plan.len() as f64;
            let max_item = costs.iter().cloned().fold(0.0, f64::max);
            for r in plan.ranges() {
                let cost: f64 = costs[r.start..r.end].iter().sum();
                assert!(
                    cost <= mean + max_item + 1e-6,
                    "shard {r} cost {cost} above mean {mean} + max {max_item}"
                );
            }
        }
    }

    #[test]
    fn degenerate_shard_counts_clamp() {
        let plan = ShardPlan::weighted(&[3.0, 1.0], 16);
        assert_eq!(plan.len(), 2);
        assert_partition(&plan, 2);
        let plan = ShardPlan::uniform(4, 0);
        assert_eq!(plan.len(), 1);
        assert_partition(&plan, 4);
    }
}
