//! Buffered record sinks: write [`RunRecord`]s to JSONL/CSV files as a
//! streaming campaign produces them.
//!
//! Pairs with [`Campaign::run_streaming`](crate::Campaign::run_streaming):
//! records are serialized and written the moment they flush out of the
//! reorder window, so the whole-grid `to_jsonl`/`to_csv` strings (and the
//! record list itself) never exist.
//! Both sinks wrap the file in a [`BufWriter`]; call `finish()` to flush
//! and surface any I/O error instead of losing it in `Drop`.

use crate::record::RunRecord;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Anything that can consume a stream of [`RunRecord`]s in spec order.
///
/// Both file sinks implement it, as does any closure-style consumer built
/// over a `Write` (a TCP response stream in `joss-serve`, an in-memory
/// buffer in tests). Pairs with
/// [`Campaign::run_to_sink`](crate::Campaign::run_to_sink), which
/// propagates the first write error instead of panicking mid-campaign.
pub trait RecordSink {
    /// Consume one record; errors stop further writes.
    fn write(&mut self, record: &RunRecord) -> io::Result<()>;
}

impl<W: Write> RecordSink for JsonlSink<W> {
    fn write(&mut self, record: &RunRecord) -> io::Result<()> {
        JsonlSink::write(self, record)
    }
}

impl<W: Write> RecordSink for CsvSink<W> {
    fn write(&mut self, record: &RunRecord) -> io::Result<()> {
        CsvSink::write(self, record)
    }
}

/// Streaming JSON-Lines writer (one record object per line, spec order).
pub struct JsonlSink<W: Write> {
    out: BufWriter<W>,
    written: usize,
}

impl JsonlSink<File> {
    /// Create (truncate) a JSONL file sink.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(File::create(path)?))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wrap any writer (buffered here; do not double-buffer).
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: BufWriter::new(out),
            written: 0,
        }
    }

    /// Append one record as one JSONL line.
    pub fn write(&mut self, record: &RunRecord) -> io::Result<()> {
        self.out.write_all(record.to_json().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flush and return the record count.
    pub fn finish(mut self) -> io::Result<usize> {
        self.out.flush()?;
        Ok(self.written)
    }

    /// Flush and unwrap the underlying writer (in-memory/test use).
    pub fn into_inner(self) -> io::Result<W> {
        self.out.into_inner().map_err(|e| e.into_error())
    }
}

/// Streaming CSV writer; the header row is emitted before the first record.
pub struct CsvSink<W: Write> {
    out: BufWriter<W>,
    written: usize,
}

impl CsvSink<File> {
    /// Create (truncate) a CSV file sink.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(File::create(path)?))
    }
}

impl<W: Write> CsvSink<W> {
    /// Wrap any writer (buffered here; do not double-buffer).
    pub fn new(out: W) -> Self {
        CsvSink {
            out: BufWriter::new(out),
            written: 0,
        }
    }

    /// Append one record row (plus the header if this is the first).
    pub fn write(&mut self, record: &RunRecord) -> io::Result<()> {
        if self.written == 0 {
            self.out.write_all(RunRecord::csv_header().as_bytes())?;
            self.out.write_all(b"\n")?;
        }
        self.out.write_all(record.to_csv_row().as_bytes())?;
        self.out.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flush and return the record count.
    pub fn finish(mut self) -> io::Result<usize> {
        self.out.flush()?;
        Ok(self.written)
    }

    /// Flush and unwrap the underlying writer (in-memory/test use).
    pub fn into_inner(self) -> io::Result<W> {
        self.out.into_inner().map_err(|e| e.into_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{to_csv, to_jsonl};
    use crate::scheduler::SchedulerKind;
    use joss_core::metrics::RunReport;
    use joss_platform::EnergyAccount;
    use std::collections::BTreeMap;

    fn record(index: usize) -> RunRecord {
        RunRecord {
            index,
            workload: format!("w{index}"),
            scheduler: "GRWS".into(),
            kind: SchedulerKind::Grws,
            seed: 7,
            report: RunReport {
                scheduler: "GRWS".into(),
                benchmark: format!("w{index}"),
                energy: EnergyAccount {
                    cpu_j: 1.0 + index as f64,
                    mem_j: 0.5,
                    cpu_sampled_j: 1.0,
                    mem_sampled_j: 0.5,
                    makespan_s: 0.25,
                },
                tasks: 10,
                tasks_per_type: [4, 6],
                steals: 1,
                mold_timeouts: 0,
                dvfs_transitions: 0,
                dvfs_serialized: 0,
                sampling_time_s: 0.0,
                total_task_time_s: 0.2,
                search_evaluations: 0,
                selected_configs: BTreeMap::new(),
                trace: None,
            },
        }
    }

    #[test]
    fn streamed_output_matches_batch_serializers() {
        let records: Vec<RunRecord> = (0..5).map(record).collect();
        let mut jsonl = JsonlSink::new(Vec::new());
        let mut csv = CsvSink::new(Vec::new());
        for r in &records {
            jsonl.write(r).unwrap();
            csv.write(r).unwrap();
        }
        let jsonl_bytes = jsonl.into_inner().unwrap();
        let csv_bytes = csv.into_inner().unwrap();
        assert_eq!(String::from_utf8(jsonl_bytes).unwrap(), to_jsonl(&records));
        assert_eq!(String::from_utf8(csv_bytes).unwrap(), to_csv(&records));
    }

    #[test]
    fn record_sink_trait_objects_match_the_inherent_writers() {
        let records: Vec<RunRecord> = (0..3).map(record).collect();
        let mut jsonl = JsonlSink::new(Vec::new());
        let mut csv = CsvSink::new(Vec::new());
        {
            let sinks: [&mut dyn RecordSink; 2] = [&mut jsonl, &mut csv];
            for sink in sinks {
                for r in &records {
                    sink.write(r).unwrap();
                }
            }
        }
        let jsonl_bytes = jsonl.into_inner().unwrap();
        let csv_bytes = csv.into_inner().unwrap();
        assert_eq!(String::from_utf8(jsonl_bytes).unwrap(), to_jsonl(&records));
        assert_eq!(String::from_utf8(csv_bytes).unwrap(), to_csv(&records));
    }

    #[test]
    fn finish_reports_counts() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.write(&record(0)).unwrap();
        sink.write(&record(1)).unwrap();
        assert_eq!(sink.written(), 2);
        assert_eq!(sink.finish().unwrap(), 2);
        let empty = CsvSink::new(Vec::new());
        assert_eq!(empty.finish().unwrap(), 0);
    }
}
