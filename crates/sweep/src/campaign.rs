//! The campaign executor: fan a list of [`RunSpec`]s out across OS threads
//! and collect one [`RunRecord`] per spec, in spec order.

use crate::context::ExperimentContext;
use crate::pool::{default_threads, ordered_parallel_map, ordered_parallel_stream};
use crate::record::RunRecord;
use crate::spec::RunSpec;
use joss_core::engine::SimEngine;
use joss_core::metrics::RunReport;
use joss_core::EngineArena;
use std::cell::RefCell;

/// Parallel executor for spec lists.
///
/// The expensive one-time [`ExperimentContext`] (machine + trained model
/// set) is shared across all workers — schedulers clone the `Arc`'d model
/// set, never the tables. Results are deterministic and thread-count
/// invariant: each run owns its RNG (seeded from its spec), and records come
/// back ordered by spec index, not completion order.
#[derive(Debug, Clone)]
pub struct Campaign {
    threads: usize,
}

impl Campaign {
    /// Executor using every available core.
    pub fn new() -> Self {
        Campaign {
            threads: default_threads(),
        }
    }

    /// Executor with an explicit worker count (>= 1).
    pub fn with_threads(threads: usize) -> Self {
        Campaign {
            threads: threads.max(1),
        }
    }

    /// Worker count this campaign will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute every spec; records come back in spec order.
    ///
    /// Holds every record of the grid in memory at once — fine for grids
    /// whose records are post-processed together. For large grids (or any
    /// grid with traces opted in) whose records go straight to disk, use
    /// [`Campaign::run_streaming`] instead.
    pub fn run(&self, ctx: &ExperimentContext, specs: Vec<RunSpec>) -> Vec<RunRecord> {
        let tid = campaign_started();
        let records = ordered_parallel_map(self.threads, &specs, |index, spec| {
            run_spec_traced(ctx, tid, index, spec)
        });
        joss_platform::noise::release_thread_memo();
        records
    }

    /// Execute every spec, handing each record to `sink` **in spec order**
    /// as workers finish.
    ///
    /// Only records that have finished but not yet flushed to the sink are
    /// buffered — O(threads) in practice when the sink keeps pace with the
    /// workers — so a grid's memory footprint does not scale with its spec
    /// count. This is the streaming path the `joss_sweep` CLI uses to write
    /// JSONL/CSV files. The sink runs on the calling thread and is not
    /// backpressured; keep it cheap (buffered writes), or a sink slower
    /// than all workers combined will grow the backlog.
    pub fn run_streaming(
        &self,
        ctx: &ExperimentContext,
        specs: Vec<RunSpec>,
        sink: impl FnMut(RunRecord),
    ) {
        self.run_streaming_indexed(ctx, 0, specs, sink);
    }

    /// [`Campaign::run_streaming`], with record indices offset by
    /// `index_base` — the sharded-execution entry point: a shard running
    /// specs `base..base+len` of a larger grid emits records carrying
    /// their **global** spec indices, so shard outputs concatenate
    /// byte-identically into the unsharded run (see
    /// [`crate::shard`] and [`crate::GridDesc::resolve_specs`]).
    pub fn run_streaming_indexed(
        &self,
        ctx: &ExperimentContext,
        index_base: usize,
        specs: Vec<RunSpec>,
        mut sink: impl FnMut(RunRecord),
    ) {
        let tid = campaign_started();
        ordered_parallel_stream(
            self.threads,
            &specs,
            |index, spec| run_spec_traced(ctx, tid, index_base + index, spec),
            |_, record| sink(record),
        );
        // Single-worker campaigns ran inline on this thread; hand the
        // noise memo back so the next campaign (possibly on another
        // executor thread) adopts it instead of faulting in its own.
        joss_platform::noise::release_thread_memo();
    }

    /// [`Campaign::run_streaming`], with an **explicit global index per
    /// spec** — the entry point for gap-filling execution: a server that
    /// already holds some of a range's records (a content-addressed store
    /// hit) simulates only the missing specs, passing their original
    /// global indices here. `indices` must be the same length as `specs`;
    /// records stream back in `specs` order carrying `indices[i]`. A
    /// record's bytes depend on its index only through the emitted
    /// `index` field — the simulation itself is a pure function of
    /// `(spec, context)` — so records produced here are byte-identical to
    /// the same specs run via [`Campaign::run_streaming_indexed`].
    pub fn run_streaming_at(
        &self,
        ctx: &ExperimentContext,
        indices: &[usize],
        specs: Vec<RunSpec>,
        mut sink: impl FnMut(RunRecord),
    ) {
        assert_eq!(
            indices.len(),
            specs.len(),
            "one global index per spec required"
        );
        let tid = campaign_started();
        ordered_parallel_stream(
            self.threads,
            &specs,
            |index, spec| run_spec_traced(ctx, tid, indices[index], spec),
            |_, record| sink(record),
        );
        joss_platform::noise::release_thread_memo();
    }

    /// Execute every spec, streaming records into a fallible
    /// [`RecordSink`](crate::sink::RecordSink) in spec order.
    ///
    /// The campaign itself cannot be cancelled mid-flight (workers finish
    /// their specs), but after the first sink error no further writes are
    /// attempted and that error is returned — the behaviour a network
    /// response stream needs when its client disconnects. Returns the
    /// number of records written on success.
    pub fn run_to_sink(
        &self,
        ctx: &ExperimentContext,
        specs: Vec<RunSpec>,
        sink: &mut impl crate::sink::RecordSink,
    ) -> std::io::Result<usize> {
        let mut first_err: Option<std::io::Error> = None;
        let mut written = 0usize;
        self.run_streaming(ctx, specs, |record| {
            if first_err.is_none() {
                match sink.write(&record) {
                    Ok(()) => written += 1,
                    Err(e) => first_err = Some(e),
                }
            }
        });
        match first_err {
            Some(e) => Err(e),
            None => Ok(written),
        }
    }
}

impl Default for Campaign {
    fn default() -> Self {
        Campaign::new()
    }
}

thread_local! {
    /// Per-worker engine arena, recycled across every spec the thread runs.
    ///
    /// [`SimEngine::run_with_arena`] resets the arena at the start of each
    /// run, so recycling is behaviorally identical to building a fresh
    /// engine per spec (asserted byte-for-byte by the campaign determinism
    /// test) — it just keeps grid sweeps free of per-spec allocation.
    static ARENA: RefCell<EngineArena> = RefCell::new(EngineArena::new());
}

/// Count a campaign start and capture the calling thread's trace id so
/// worker closures (which run on pool threads without the thread-local)
/// can tag their spec spans with it. Returns 0 (untraced) when telemetry
/// is disabled — [`run_spec_traced`] skips span capture entirely then.
fn campaign_started() -> u64 {
    if joss_telemetry::enabled() {
        joss_telemetry::catalog::SWEEP_CAMPAIGNS.inc();
        joss_telemetry::trace::current()
    } else {
        0
    }
}

/// [`run_spec`] wrapped in spec-lifecycle telemetry: a `spec` span under
/// the campaign's trace, the per-spec latency histogram, and the spec
/// counter. Zero extra work when telemetry is disabled.
fn run_spec_traced(ctx: &ExperimentContext, tid: u64, index: usize, spec: &RunSpec) -> RunRecord {
    if !joss_telemetry::enabled() {
        return run_spec(ctx, index, spec);
    }
    let span = joss_telemetry::trace::Span::with_trace(tid, "spec", format!("spec={index}"));
    let record = run_spec(ctx, index, spec);
    joss_telemetry::catalog::SWEEP_SPECS.inc();
    joss_telemetry::catalog::SWEEP_SPEC_SECONDS.record_duration(span.elapsed());
    record
}

/// Execute one spec (the campaign's per-worker body, also usable serially).
pub fn run_spec(ctx: &ExperimentContext, index: usize, spec: &RunSpec) -> RunRecord {
    let mut sched = spec.scheduler.build(ctx);
    let report = ARENA.with(|arena| {
        SimEngine::run_with_arena(
            &ctx.machine,
            &spec.workload.graph,
            sched.as_mut(),
            spec.engine.to_config(),
            &mut arena.borrow_mut(),
            &ctx.models.idle,
        )
    });
    RunRecord {
        index,
        workload: spec.workload.label.clone(),
        scheduler: report.scheduler.clone(),
        kind: spec.scheduler,
        seed: spec.engine.seed,
        report,
    }
}

/// Convenience: run a whole grid's specs and chunk the records per workload
/// (requires the grid order [`crate::spec::SpecGrid::build`] guarantees).
pub fn records_per_workload(
    records: Vec<RunRecord>,
    runs_per_workload: usize,
) -> Vec<Vec<RunRecord>> {
    assert!(runs_per_workload > 0);
    assert_eq!(records.len() % runs_per_workload, 0);
    let mut out = Vec::with_capacity(records.len() / runs_per_workload);
    let mut it = records.into_iter();
    loop {
        let chunk: Vec<RunRecord> = it.by_ref().take(runs_per_workload).collect();
        if chunk.is_empty() {
            return out;
        }
        out.push(chunk);
    }
}

/// Split grid-ordered records into per-workload `(label, reports)` rows,
/// returning the scheduler column names from the first workload's records —
/// the figure-table shape every suite × scheduler grid post-processes into.
pub fn rows_by_workload(
    records: Vec<RunRecord>,
    runs_per_workload: usize,
) -> (Vec<String>, Vec<(String, Vec<RunReport>)>) {
    let schedulers = records
        .iter()
        .take(runs_per_workload)
        .map(|r| r.scheduler.clone())
        .collect();
    let rows = records_per_workload(records, runs_per_workload)
        .into_iter()
        .map(|chunk| {
            (
                chunk[0].workload.clone(),
                chunk.into_iter().map(|r| r.report).collect(),
            )
        })
        .collect();
    (schedulers, rows)
}
