//! Wire-format guarantees for [`GridDesc`]: `from_json(to_canonical_json(g))
//! == g` over random grids (including hostile workload labels), and
//! `spec_hash` invariance under JSON key reordering and whitespace.

use joss_platform::{CoreType, FreqIndex, KnobConfig, NcIndex};
use joss_sweep::{GridDesc, SchedulerKind};
use joss_workloads::Scale;
use proptest::prelude::*;

/// Label alphabet stressing the JSON escaper: quotes, backslashes,
/// controls, non-ASCII.
const LABEL_CHARS: [char; 12] = [
    'a', 'Z', '0', '_', ' ', '"', '\\', '\n', '\t', '\u{1}', 'é', '\u{2603}',
];

fn label_from(bits: u64) -> String {
    // 1..=8 chars driven by the sampled bits.
    let len = 1 + (bits % 8) as usize;
    let mut bits = bits;
    (0..len)
        .map(|_| {
            bits = bits.rotate_left(7).wrapping_mul(0x9e3779b97f4a7c15);
            LABEL_CHARS[(bits % LABEL_CHARS.len() as u64) as usize]
        })
        .collect()
}

fn scheduler_from(idx: u64, payload: f64) -> SchedulerKind {
    match idx % 10 {
        0 => SchedulerKind::Grws,
        1 => SchedulerKind::Erase,
        2 => SchedulerKind::Aequitas(payload),
        3 => SchedulerKind::Steer,
        4 => SchedulerKind::Joss,
        5 => SchedulerKind::JossNoMemDvfs,
        6 => SchedulerKind::JossSpeedup(payload),
        7 => SchedulerKind::JossMaxPerf,
        8 => SchedulerKind::Fixed(KnobConfig::new(
            CoreType::Big,
            NcIndex((idx / 10 % 3) as usize),
            FreqIndex((idx / 30 % 12) as usize),
            FreqIndex((idx / 360 % 4) as usize),
        )),
        _ => SchedulerKind::Fixed(KnobConfig::new(
            CoreType::Little,
            NcIndex((idx / 10 % 3) as usize),
            FreqIndex((idx / 30 % 12) as usize),
            FreqIndex((idx / 360 % 4) as usize),
        )),
    }
}

fn desc_from(
    workload_bits: &[u64],
    sched_bits: &[(u64, f64)],
    seeds: &[u64],
    scale_code: u64,
    record_trace: bool,
) -> GridDesc {
    GridDesc {
        workloads: workload_bits.iter().copied().map(label_from).collect(),
        schedulers: sched_bits
            .iter()
            .map(|&(i, p)| scheduler_from(i, p))
            .collect(),
        seeds: seeds.to_vec(),
        scale: match scale_code % 5 {
            0 => Scale::Full,
            c => Scale::Divided((c * 100) as u32),
        },
        record_trace,
        shard: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse(print(grid)) == grid, for grids with hostile labels and every
    /// scheduler variant (payloads must survive bit-for-bit).
    #[test]
    fn canonical_json_round_trips(
        workload_bits in proptest::collection::vec(proptest::any::<u64>(), 1..5),
        sched_bits in proptest::collection::vec(
            (proptest::any::<u64>(), 0.001f64..16.0), 1..5),
        seeds in proptest::collection::vec(proptest::any::<u64>(), 0..4),
        scale_code in proptest::any::<u64>(),
        record_trace in proptest::any::<bool>(),
        shard_bits in proptest::any::<u64>(),
    ) {
        let mut desc = desc_from(&workload_bits, &sched_bits, &seeds, scale_code, record_trace);
        // A third of sampled grids carry a (valid, random) shard range.
        if shard_bits.is_multiple_of(3) {
            let count = desc.spec_count() as u64;
            let start = (shard_bits / 3) % count;
            let end = start + 1 + (shard_bits / 7) % (count - start);
            desc = desc.with_shard(joss_sweep::SpecRange::new(start as usize, end as usize));
        }
        let printed = desc.to_canonical_json();
        let parsed = GridDesc::from_json(&printed).expect("canonical form must parse");
        prop_assert_eq!(&parsed, &desc);
        // Canonical form is a fixed point: printing the parse is identical.
        prop_assert_eq!(parsed.to_canonical_json(), printed);
    }

    /// The spec hash keys the serve results cache, so it must not depend on
    /// JSON key order or whitespace — only on the described grid.
    #[test]
    fn spec_hash_ignores_key_order_and_whitespace(
        workload_bits in proptest::collection::vec(proptest::any::<u64>(), 1..4),
        sched_bits in proptest::collection::vec(
            (proptest::any::<u64>(), 0.001f64..16.0), 1..4),
        seeds in proptest::collection::vec(proptest::any::<u64>(), 0..3),
        scale_code in proptest::any::<u64>(),
        shuffle_seed in proptest::any::<u64>(),
    ) {
        let desc = desc_from(&workload_bits, &sched_bits, &seeds, scale_code, true);

        // Rebuild the JSON with shuffled member order and erratic spacing.
        let canonical = desc.to_canonical_json();
        let parsed = joss_sweep::json::parse(&canonical).expect("canonical parses");
        let members = parsed.as_object().expect("object").to_vec();
        let mut order: Vec<usize> = (0..members.len()).collect();
        let mut bits = shuffle_seed;
        for i in (1..order.len()).rev() {
            bits = bits.rotate_left(11).wrapping_mul(0x9e3779b97f4a7c15);
            order.swap(i, (bits % (i as u64 + 1)) as usize);
        }
        let pad = ["", " ", "\n", "\t  "];
        let mut scrambled = String::from("{");
        for (pos, &idx) in order.iter().enumerate() {
            if pos > 0 {
                scrambled.push(',');
            }
            let (key, value) = &members[idx];
            bits = bits.rotate_left(5).wrapping_add(pos as u64);
            scrambled.push_str(pad[(bits % 4) as usize]);
            scrambled.push_str(&joss_sweep::json::quote(key));
            scrambled.push_str(pad[(bits / 4 % 4) as usize]);
            scrambled.push(':');
            scrambled.push_str(pad[(bits / 16 % 4) as usize]);
            scrambled.push_str(&render(value));
        }
        scrambled.push_str("\n}");

        let reparsed = GridDesc::from_json(&scrambled)
            .unwrap_or_else(|e| panic!("scrambled form must parse: {e}\n{scrambled}"));
        prop_assert_eq!(&reparsed, &desc);
        prop_assert_eq!(reparsed.spec_hash(), desc.spec_hash());
    }
}

/// Re-render a parsed JSON value compactly (enough for scrambling tests).
fn render(v: &joss_sweep::json::Value) -> String {
    use joss_sweep::json::Value;
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Number(raw) => raw.clone(),
        Value::String(s) => joss_sweep::json::quote(s),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(" , "))
        }
        Value::Object(members) => {
            let inner: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("{}: {}", joss_sweep::json::quote(k), render(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

/// A described grid and its resolved form agree on shape, and equal
/// descriptions resolve to byte-identical spec lists (label check).
#[test]
fn resolve_matches_description_shape() {
    let desc = GridDesc {
        workloads: vec!["DP".into(), "FB".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Aequitas(0.005)],
        seeds: vec![1, 2, 3],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    };
    let specs = desc.resolve().expect("resolves").build();
    assert_eq!(specs.len(), desc.spec_count());
    assert_eq!(specs[0].label(), "DP/GRWS/seed1");
    let again = desc.resolve().expect("resolves").build();
    let labels: Vec<String> = specs.iter().map(|s| s.label()).collect();
    let labels2: Vec<String> = again.iter().map(|s| s.label()).collect();
    assert_eq!(labels, labels2);
}
