//! Campaign determinism: the same spec list must produce byte-identical
//! ordered records no matter how many worker threads execute it.

use joss_sweep::{
    to_csv, to_jsonl, Campaign, ExperimentContext, SchedulerKind, SpecGrid, Workload,
};
use joss_workloads::{fig8_suite, Scale};
use proptest::prelude::*;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::with_reps(42, 1))
}

/// A small pool of cheap workloads for grid sampling.
fn workload_pool() -> Vec<Workload> {
    fig8_suite(Scale::Divided(400))
        .into_iter()
        .take(6)
        .map(Workload::from)
        .collect()
}

fn scheduler_pool() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Grws,
        SchedulerKind::Erase,
        SchedulerKind::Aequitas(0.005),
        SchedulerKind::Steer,
        SchedulerKind::Joss,
        SchedulerKind::JossNoMemDvfs,
        SchedulerKind::JossSpeedup(1.4),
        SchedulerKind::JossMaxPerf,
    ]
}

#[test]
fn one_thread_and_many_threads_agree_byte_for_byte() {
    let grid = || {
        SpecGrid::new()
            .workloads(workload_pool().into_iter().take(3))
            .schedulers([
                SchedulerKind::Grws,
                SchedulerKind::Joss,
                SchedulerKind::Aequitas(0.005),
            ])
            .seeds([42, 7])
            .build()
    };
    let serial = Campaign::with_threads(1).run(ctx(), grid());
    assert_eq!(serial.len(), 18);
    for threads in [2, 4, 8] {
        let parallel = Campaign::with_threads(threads).run(ctx(), grid());
        assert_eq!(
            to_jsonl(&serial),
            to_jsonl(&parallel),
            "JSONL diverged at {threads} threads"
        );
        assert_eq!(
            to_csv(&serial),
            to_csv(&parallel),
            "CSV diverged at {threads} threads"
        );
    }
}

#[test]
fn streaming_matches_batch_byte_for_byte() {
    use joss_sweep::JsonlSink;
    let grid = || {
        SpecGrid::new()
            .workloads(workload_pool().into_iter().take(3))
            .schedulers([SchedulerKind::Grws, SchedulerKind::Joss])
            .seeds([42, 7])
            .build()
    };
    let batch = to_jsonl(&Campaign::with_threads(1).run(ctx(), grid()));
    for threads in [1, 4] {
        let mut sink = JsonlSink::new(Vec::new());
        let mut seen = 0usize;
        Campaign::with_threads(threads).run_streaming(ctx(), grid(), |record| {
            assert_eq!(record.index, seen, "sink must observe spec order");
            seen += 1;
            sink.write(&record).expect("in-memory write");
        });
        assert_eq!(seen, 12);
        let streamed = String::from_utf8(sink.into_inner().expect("flush")).expect("utf8");
        assert_eq!(
            streamed, batch,
            "streamed JSONL diverged at {threads} threads"
        );
    }
}

/// A single worker recycling one arena across a whole grid must emit the
/// same bytes as a fresh engine (fresh arena, fresh idle tables) per spec:
/// arena reuse is a pure allocation optimization, never state leakage.
#[test]
fn recycled_arena_matches_fresh_engines_byte_for_byte() {
    use joss_core::engine::SimEngine;
    use joss_sweep::RunRecord;

    let grid = || {
        SpecGrid::new()
            .workloads(workload_pool().into_iter().take(3))
            .schedulers([
                SchedulerKind::Grws,
                SchedulerKind::Joss,
                SchedulerKind::Erase,
                SchedulerKind::Aequitas(0.005),
            ])
            .seeds([42, 7])
            .build()
    };
    // One worker thread: every spec reuses that thread's recycled arena.
    let recycled = Campaign::with_threads(1).run(ctx(), grid());
    // Reference: a brand-new engine per spec via the convenience entry point.
    let fresh: Vec<RunRecord> = grid()
        .iter()
        .enumerate()
        .map(|(index, spec)| {
            let mut sched = spec.scheduler.build(ctx());
            let report = SimEngine::run(
                &ctx().machine,
                &spec.workload.graph,
                sched.as_mut(),
                spec.engine.to_config(),
            );
            RunRecord {
                index,
                workload: spec.workload.label.clone(),
                scheduler: report.scheduler.clone(),
                kind: spec.scheduler,
                seed: spec.engine.seed,
                report,
            }
        })
        .collect();
    assert_eq!(recycled.len(), 24);
    assert_eq!(
        to_jsonl(&recycled),
        to_jsonl(&fresh),
        "arena recycling must be invisible in the output bytes"
    );
}

#[test]
fn records_are_ordered_by_spec_index_and_labelled() {
    let specs = SpecGrid::new()
        .workloads(workload_pool().into_iter().take(2))
        .schedulers([SchedulerKind::Grws, SchedulerKind::Joss])
        .seeds([1])
        .build();
    let expect: Vec<(String, String)> = specs
        .iter()
        .map(|s| (s.workload.label.clone(), s.scheduler.to_string()))
        .collect();
    let records = Campaign::with_threads(4).run(ctx(), specs);
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.index, i);
        assert_eq!(r.workload, expect[i].0);
        assert_eq!(r.scheduler, expect[i].1, "Display must match engine name");
        assert_eq!(r.report.benchmark, expect[i].0);
    }
}

#[test]
fn traces_stay_off_unless_a_spec_opts_in() {
    let base = SpecGrid::new()
        .workloads(workload_pool().into_iter().take(1))
        .scheduler(SchedulerKind::Grws)
        .seeds([1]);
    let off = Campaign::with_threads(2).run(ctx(), base.clone().build());
    assert!(off[0].report.trace.is_none(), "tracing must default off");
    let on = Campaign::with_threads(2).run(ctx(), base.record_trace(true).build());
    let trace = on[0].report.trace.as_ref().expect("opted-in trace");
    assert_eq!(trace.tasks.len(), on[0].report.tasks);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random small grids are thread-count invariant.
    #[test]
    fn random_grids_are_thread_invariant(
        n_workloads in 1usize..4,
        n_scheds in 1usize..5,
        seed in 0u64..1000,
        threads in 2usize..6,
    ) {
        let grid = || {
            SpecGrid::new()
                .workloads(workload_pool().into_iter().take(n_workloads))
                .schedulers(scheduler_pool().into_iter().take(n_scheds))
                .seeds([seed])
                .build()
        };
        let serial = Campaign::with_threads(1).run(ctx(), grid());
        let parallel = Campaign::with_threads(threads).run(ctx(), grid());
        assert_eq!(serial.len(), n_workloads * n_scheds);
        assert_eq!(to_jsonl(&serial), to_jsonl(&parallel));
    }
}
