//! Shard-plan guarantees: partition invariants and weighted balance over
//! random grids and shard counts, plus the property the whole
//! distribution layer leans on — **concatenating shard outputs in shard
//! order is byte-identical to the unsharded JSONL**.

use joss_sweep::{
    grid_costs, plan_grid, Campaign, ExperimentContext, GridDesc, JsonlSink, SchedulerKind,
    ShardPlan, SpecRange,
};
use joss_workloads::Scale;
use proptest::prelude::*;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::with_reps(42, 1))
}

/// Partition invariants every plan must satisfy: non-empty shards,
/// pairwise disjoint, covering `0..n`, in ascending spec order.
fn assert_partition(plan: &ShardPlan, n: usize) {
    assert!(!plan.is_empty());
    assert_eq!(plan.ranges().first().unwrap().start, 0, "must start at 0");
    assert_eq!(plan.n_specs(), n, "must cover all specs");
    for r in plan.ranges() {
        assert!(!r.is_empty(), "shard {r} is empty");
    }
    for pair in plan.ranges().windows(2) {
        // Adjacency gives disjointness AND ascending order in one shot.
        assert_eq!(
            pair[0].end, pair[1].start,
            "shards {} and {} are not adjacent",
            pair[0], pair[1]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For random cost vectors and any shard count: the partition
    /// invariants hold, and the weighted balancer keeps every shard at or
    /// below 2x the mean cost whenever splits allow it (no single item
    /// above the mean).
    #[test]
    fn weighted_plans_partition_and_balance(
        costs in proptest::collection::vec(1.0f64..1000.0, 1..120),
        shards in proptest::any::<u64>(),
    ) {
        let shards = 1 + (shards % 24) as usize;
        let plan = ShardPlan::weighted(&costs, shards);
        prop_assert_eq!(plan.len(), shards.min(costs.len()));
        assert_partition(&plan, costs.len());

        let total: f64 = costs.iter().sum();
        let mean = total / plan.len() as f64;
        let max_item = costs.iter().cloned().fold(0.0, f64::max);
        for r in plan.ranges() {
            let cost: f64 = costs[r.start..r.end].iter().sum();
            // Unconditional guarantee: mean + heaviest single item.
            prop_assert!(
                cost <= mean + max_item + 1e-6,
                "shard {} cost {} above mean {} + max item {}", r, cost, mean, max_item
            );
            if max_item <= mean {
                // ... which is the 2x-mean bound whenever splitting can
                // actually balance the load.
                prop_assert!(
                    cost <= 2.0 * mean + 1e-6,
                    "shard {} cost {} above 2x mean {}", r, cost, mean
                );
            }
        }
    }

    /// The micro planner (the elastic fleet's default cut) is the
    /// weighted planner at [`ShardPlan::MICRO_FACTOR`] ranges per
    /// backend: same partition invariants — pairwise disjoint, ascending,
    /// union exactly the full spec range — at the finer granularity.
    #[test]
    fn micro_plans_partition_at_micro_factor_granularity(
        costs in proptest::collection::vec(1.0f64..1000.0, 1..120),
        backends in proptest::any::<u64>(),
    ) {
        let backends = 1 + (backends % 8) as usize;
        let plan = ShardPlan::micro(&costs, backends);
        prop_assert_eq!(
            plan.len(),
            (backends * ShardPlan::MICRO_FACTOR).min(costs.len())
        );
        assert_partition(&plan, costs.len());
        // Zero backends is treated as one, never an empty plan.
        let degenerate = ShardPlan::micro(&costs, 0);
        prop_assert_eq!(degenerate.len(), ShardPlan::MICRO_FACTOR.min(costs.len()));
        assert_partition(&degenerate, costs.len());
    }

    /// Uniform plans obey the same partition invariants with near-equal
    /// counts.
    #[test]
    fn uniform_plans_partition(
        n in 1usize..300,
        shards in proptest::any::<u64>(),
    ) {
        let shards = 1 + (shards % 32) as usize;
        let plan = ShardPlan::uniform(n, shards);
        prop_assert_eq!(plan.len(), shards.min(n));
        assert_partition(&plan, n);
        let lens: Vec<usize> = plan.ranges().iter().map(SpecRange::len).collect();
        prop_assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
    }
}

/// The planner is deterministic and grid costs have the documented shape:
/// one cost per spec, constant across a workload's scheduler x seed block.
#[test]
fn grid_costs_follow_spec_order() {
    let desc = GridDesc {
        workloads: vec!["DP".into(), "MM_256_dop4".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![1, 2, 3],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    };
    let costs = grid_costs(&desc).expect("known workloads");
    assert_eq!(costs.len(), desc.spec_count());
    let block = desc.schedulers.len() * desc.seeds.len();
    for (w, chunk) in costs.chunks(block).enumerate() {
        assert!(
            chunk.iter().all(|&c| c == chunk[0]),
            "workload {w} block has mixed costs: {chunk:?}"
        );
        assert!(chunk[0] >= 1.0, "task counts are at least 1");
    }
    assert_eq!(plan_grid(&desc, 3).unwrap(), plan_grid(&desc, 3).unwrap());
    assert!(grid_costs(&GridDesc {
        workloads: vec!["NOPE".into()],
        ..desc
    })
    .is_err());
}

/// THE sharding property: running each shard of a plan separately (with
/// global record indices) and concatenating the JSONL outputs in shard
/// order is byte-identical to the unsharded streaming run — for several
/// shard counts, including more shards than specs. This is exactly what
/// `joss_sweep --shard i/n` emits and what the fleet merge reassembles.
#[test]
fn sharded_runs_concatenate_to_the_unsharded_jsonl() {
    let desc = GridDesc {
        workloads: vec!["DP".into(), "FB".into(), "MM_256_dop4".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42, 7],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    };

    let mut reference = JsonlSink::new(Vec::new());
    let specs = desc.resolve().expect("resolves").build();
    Campaign::with_threads(2).run_streaming(ctx(), specs, |r| {
        reference.write(&r).expect("in-memory write");
    });
    let reference = reference.into_inner().expect("flush");

    for n_shards in [1, 2, 3, 5, desc.spec_count(), desc.spec_count() + 4] {
        let plan = plan_grid(&desc, n_shards).expect("plan");
        let mut concatenated: Vec<u8> = Vec::new();
        for &range in plan.ranges() {
            let (base, specs) = desc
                .with_shard(range)
                .resolve_specs()
                .expect("shard resolves");
            assert_eq!(base, range.start);
            assert_eq!(specs.len(), range.len());
            let mut sink = JsonlSink::new(Vec::new());
            // Thread count varies per shard to prove it cannot matter.
            Campaign::with_threads(1 + range.start % 3).run_streaming_indexed(
                ctx(),
                base,
                specs,
                |r| sink.write(&r).expect("in-memory write"),
            );
            concatenated.extend_from_slice(&sink.into_inner().expect("flush"));
        }
        assert_eq!(
            concatenated, reference,
            "shard concatenation diverged at {n_shards} shards"
        );
    }
}
