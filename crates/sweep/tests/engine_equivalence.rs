//! Behavior-preservation guardrail for engine optimizations.
//!
//! The engine's hot path is aggressively optimized (incremental scheduler
//! context, indexed core sets, scratch buffers — see `docs/PERF.md`), and
//! every optimization must be *exactly* behavior-preserving: same RNG
//! consumption, same floating-point operation order, same reports. This
//! suite locks that in two ways:
//!
//! 1. a **golden fixture** (`golden_engine_behavior.jsonl`) captured from
//!    the pre-optimization engine over a fixed grid that exercises the
//!    steal path (untyped GRWS placements over a wide task bag) and the
//!    moldable gather/timeout path (width-4 kernels pinned to the 4-core
//!    little cluster under contention). The engine must still reproduce it
//!    byte for byte;
//! 2. **property tests** over random graphs, schedulers, and seeds
//!    asserting run-to-run determinism and that trace recording (which
//!    gates several allocations) never changes the measured report.
//!
//! Regenerate the fixture only when a *deliberate* behavior change lands:
//!
//! ```text
//! cargo test -p joss-sweep --test engine_equivalence -- --ignored regenerate
//! ```

use joss_dag::{generators, KernelSpec, TaskGraph};
use joss_platform::{CoreType, FreqIndex, KnobConfig, NcIndex, TaskShape};
use joss_sweep::{
    to_jsonl, Campaign, ExperimentContext, RunRecord, SchedulerKind, SpecGrid, Workload,
};
use joss_workloads::{fig8_suite, Scale};
use proptest::prelude::*;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::with_reps(42, 1))
}

/// A bag of tasks with no structure: under GRWS everything is stealable.
fn steal_bag() -> TaskGraph {
    generators::chain_bundle(
        "steal_bag",
        KernelSpec::new("kb", TaskShape::new(0.004, 0.002)),
        300,
        16,
    )
}

/// Width-4 moldable kernels: pinned to the 4-core little cluster these must
/// gather every little core, so under contention the mold-timeout path runs.
fn mold_bag() -> TaskGraph {
    generators::independent(
        "mold_bag",
        KernelSpec::new("km", TaskShape::new(0.006, 0.003)).with_max_width(4),
        48,
    )
}

/// Moldable fork-join: joins serialize, fans contend for cores.
fn mold_fork_join() -> TaskGraph {
    generators::fork_join(
        "mold_fj",
        &[KernelSpec::new("kf", TaskShape::new(0.003, 0.002)).with_max_width(4)],
        KernelSpec::new("kj", TaskShape::new(0.002, 0.001)),
        8,
        10,
    )
}

/// Irregular dependencies, seeded (deterministic).
fn layered() -> TaskGraph {
    generators::random_layered(
        "layered",
        KernelSpec::new("kl", TaskShape::new(0.004, 0.001)).with_max_width(2),
        24,
        6,
        7,
    )
}

/// The fixed grid behind the golden fixture: every scheduler family, plus
/// workloads chosen to force steals and mold gathering/timeouts.
fn golden_specs() -> Vec<joss_sweep::RunSpec> {
    let mut workloads: Vec<Workload> = fig8_suite(Scale::Divided(400))
        .into_iter()
        .take(3)
        .map(Workload::from)
        .collect();
    workloads.push(Workload::new(steal_bag()));
    workloads.push(Workload::new(mold_bag()));
    workloads.push(Workload::new(mold_fork_join()));
    workloads.push(Workload::new(layered()));
    SpecGrid::new()
        .workloads(workloads)
        .schedulers([
            SchedulerKind::Grws,
            SchedulerKind::Erase,
            SchedulerKind::Aequitas(0.005),
            SchedulerKind::Steer,
            SchedulerKind::Joss,
            SchedulerKind::JossNoMemDvfs,
            SchedulerKind::JossSpeedup(1.4),
            SchedulerKind::JossMaxPerf,
            // The measurement instrument: molds on both clusters.
            SchedulerKind::Fixed(KnobConfig::new(
                CoreType::Big,
                NcIndex(1),
                FreqIndex(2),
                FreqIndex(1),
            )),
            SchedulerKind::Fixed(KnobConfig::new(
                CoreType::Little,
                NcIndex(2),
                FreqIndex(1),
                FreqIndex(0),
            )),
        ])
        .seeds([1, 42])
        .build()
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden_engine_behavior.jsonl")
}

fn run_golden_grid() -> Vec<RunRecord> {
    Campaign::with_threads(1).run(ctx(), golden_specs())
}

/// Regenerates the fixture. Run explicitly (`-- --ignored regenerate`) and
/// only for deliberate behavior changes; commit the diff with the change
/// that caused it.
#[test]
#[ignore = "fixture regenerator, run explicitly"]
fn regenerate_golden_fixture() {
    let records = run_golden_grid();
    std::fs::write(golden_path(), to_jsonl(&records)).expect("write golden fixture");
}

#[test]
fn engine_reproduces_seed_behavior_byte_for_byte() {
    let expected = std::fs::read_to_string(golden_path()).expect(
        "golden fixture missing; run \
         `cargo test -p joss-sweep --test engine_equivalence -- --ignored regenerate`",
    );
    let records = run_golden_grid();
    let actual = to_jsonl(&records);
    if expected != actual {
        // Line-level diff beats a 120-line string mismatch dump.
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            assert_eq!(e, a, "golden record {i} diverged");
        }
        assert_eq!(
            expected.lines().count(),
            actual.lines().count(),
            "record count diverged"
        );
        unreachable!("strings differ but no line did");
    }
    // The fixture must actually exercise the paths it claims to cover.
    let steals: u64 = records.iter().map(|r| r.report.steals).sum();
    assert!(steals > 0, "golden grid never exercised the steal path");
    let molds: u64 = records.iter().map(|r| r.report.mold_timeouts).sum();
    assert!(
        molds > 0,
        "golden grid never exercised the mold-timeout path"
    );
}

/// One small random-graph run under one scheduler.
fn run_once(kind: SchedulerKind, graph: &TaskGraph, seed: u64, trace: bool) -> RunRecord {
    let spec = SpecGrid::new()
        .workload(Workload::new(graph.clone()))
        .scheduler(kind)
        .seeds([seed])
        .record_trace(trace)
        .build();
    Campaign::with_threads(1).run(ctx(), spec).remove(0)
}

fn scheduler_pool() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Grws,
        SchedulerKind::Erase,
        SchedulerKind::Aequitas(0.005),
        SchedulerKind::Steer,
        SchedulerKind::Joss,
        SchedulerKind::JossSpeedup(1.4),
        SchedulerKind::Fixed(KnobConfig::new(
            CoreType::Little,
            NcIndex(2),
            FreqIndex(1),
            FreqIndex(1),
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random graphs x schedulers x seeds: re-running is bit-identical, and
    /// trace recording (which gates the hot path's allocation elisions)
    /// never changes any measured quantity.
    #[test]
    fn reports_invariant_under_rerun_and_tracing(
        n_tasks in 8usize..40,
        width in 1usize..5,
        layers in 2usize..5,
        graph_seed in 0u64..100,
        sched_idx in 0usize..7,
        engine_seed in 0u64..1000,
    ) {
        let kernel =
            KernelSpec::new("kp", TaskShape::new(0.004, 0.002)).with_max_width(width);
        let graph = generators::random_layered(
            "prop", kernel, n_tasks, n_tasks.div_ceil(layers).max(1), graph_seed,
        );
        let kind = scheduler_pool()[sched_idx];
        let plain = run_once(kind, &graph, engine_seed, false);
        let rerun = run_once(kind, &graph, engine_seed, false);
        prop_assert_eq!(plain.to_json(), rerun.to_json(), "rerun diverged");
        let traced = run_once(kind, &graph, engine_seed, true);
        prop_assert_eq!(
            plain.to_json(),
            traced.to_json(),
            "trace recording changed the measured report"
        );
        prop_assert!(traced.report.trace.is_some());
        prop_assert_eq!(plain.report.tasks, graph.n_tasks());
    }
}
