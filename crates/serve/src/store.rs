//! Content-addressed per-spec result store: the sub-range complement to
//! the whole-body [`ResultsCache`](crate::cache::ResultsCache).
//!
//! The results cache keys finished response bodies by their full
//! (possibly sharded) canonical JSON — useful only when the *exact same
//! range* comes back. But records are pure functions of
//! `(global index, spec, context)`, so any two requests over the same
//! **base grid** (the description with its shard restriction stripped)
//! produce byte-identical lines wherever their index ranges overlap, no
//! matter how the ranges were cut. [`RangeStore`] exploits that: it maps
//! `base canonical JSON → (global spec index → record line)` and is
//!
//! * **filled** as the executor streams records (every miss deposits its
//!   lines, one by one, while the response is still in flight),
//! * **consulted** before simulation — fully-covered ranges are served
//!   straight from the store by the reactor, partially-covered ranges
//!   let the executor simulate only the missing specs and splice the
//!   stored lines back in, in index order.
//!
//! Overlapping campaigns across clients, re-issued stolen ranges from an
//! elastic fleet, and shard plans that slice one grid two different ways
//! all hit the same entries.
//!
//! Keys are the canonical JSON **string**, not the 64-bit spec hash —
//! same collision stance as the results cache: a hash collision must
//! never serve the wrong grid's records. Lines are stored without their
//! trailing newline and shared as `Arc<str>`, so a hit costs one clone
//! of a pointer, not of a record.
//!
//! Bounds: a global line budget (`max_lines`). When an insert pushes the
//! total over budget, least-recently-used *grids* are evicted whole;
//! if the inserting grid alone exceeds the budget its lowest-indexed
//! lines are dropped first (most recent ranges stay warm). `max_lines: 0`
//! disables the store entirely.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// One grid's stored record lines, keyed by global spec index.
struct GridLines {
    lines: BTreeMap<usize, Arc<str>>,
    last_used: u64,
}

struct StoreInner {
    grids: HashMap<String, GridLines>,
    total_lines: usize,
    tick: u64,
}

/// Bounded, concurrency-safe store of per-spec record lines, keyed by
/// base-grid canonical JSON. See the module docs for semantics.
pub struct RangeStore {
    max_lines: usize,
    inner: Mutex<StoreInner>,
}

impl RangeStore {
    /// A store holding at most `max_lines` record lines across all grids
    /// (0 disables storing and lookups entirely).
    pub fn new(max_lines: usize) -> RangeStore {
        RangeStore {
            max_lines,
            inner: Mutex::new(StoreInner {
                grids: HashMap::new(),
                total_lines: 0,
                tick: 0,
            }),
        }
    }

    /// Whether the store accepts lines at all.
    pub fn enabled(&self) -> bool {
        self.max_lines > 0
    }

    /// Total record lines currently stored (the `/stats` gauge).
    pub fn lines(&self) -> usize {
        self.inner.lock().unwrap().total_lines
    }

    /// Number of distinct base grids with stored lines.
    pub fn grids(&self) -> usize {
        self.inner.lock().unwrap().grids.len()
    }

    /// Deposit one record line (without its trailing newline) for global
    /// spec index `index` of the grid with this base canonical JSON.
    /// Evicts per the bound policy; re-inserting an existing index is a
    /// no-op (records are deterministic, the bytes are already right).
    pub fn insert_line(&self, base_canonical: &str, index: usize, line: &str) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.grids.contains_key(base_canonical) {
            inner.grids.insert(
                base_canonical.to_string(),
                GridLines {
                    lines: BTreeMap::new(),
                    last_used: tick,
                },
            );
        }
        let grid = inner.grids.get_mut(base_canonical).expect("just inserted");
        grid.last_used = tick;
        let fresh = grid.lines.insert(index, Arc::<str>::from(line)).is_none();
        if fresh {
            inner.total_lines += 1;
        }
        self.evict_over_budget(&mut inner, base_canonical);
    }

    /// Every stored line for `start..end` of this grid, or `None` unless
    /// the store covers the **whole** range — the reactor's serve-a-hit
    /// path, which needs a complete body or nothing.
    pub fn lookup_range(
        &self,
        base_canonical: &str,
        start: usize,
        end: usize,
    ) -> Option<Vec<Arc<str>>> {
        let snapshot = self.snapshot_range(base_canonical, start, end)?;
        snapshot.into_iter().collect()
    }

    /// Per-index view of `start..end` for this grid: `Some(line)` where a
    /// record is stored, `None` where it must be simulated. Returns `None`
    /// when the store is disabled or holds nothing for the grid (callers
    /// then run the whole range without a splice cursor). Bumps the
    /// grid's recency.
    pub fn snapshot_range(
        &self,
        base_canonical: &str,
        start: usize,
        end: usize,
    ) -> Option<Vec<Option<Arc<str>>>> {
        if !self.enabled() || start >= end {
            return None;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let grid = inner.grids.get_mut(base_canonical)?;
        grid.last_used = tick;
        let mut out = vec![None; end - start];
        for (&index, line) in grid.lines.range(start..end) {
            out[index - start] = Some(Arc::clone(line));
        }
        Some(out)
    }

    /// Evict until back under `max_lines`: whole least-recently-used
    /// grids first (never `keep`, which was just touched); if `keep`
    /// alone still exceeds the budget, drop its lowest-indexed lines.
    fn evict_over_budget(&self, inner: &mut StoreInner, keep: &str) {
        while inner.total_lines > self.max_lines {
            let victim = inner
                .grids
                .iter()
                .filter(|(key, _)| key.as_str() != keep)
                .min_by_key(|(_, grid)| grid.last_used)
                .map(|(key, _)| key.clone());
            match victim {
                Some(key) => {
                    if let Some(grid) = inner.grids.remove(&key) {
                        inner.total_lines -= grid.lines.len();
                    }
                }
                None => {
                    let excess = inner.total_lines - self.max_lines;
                    let grid = inner.grids.get_mut(keep).expect("inserting grid present");
                    let mut removed = 0usize;
                    while removed < excess && grid.lines.pop_first().is_some() {
                        removed += 1;
                    }
                    let empty = grid.lines.is_empty();
                    inner.total_lines -= removed;
                    if empty {
                        inner.grids.remove(keep);
                    }
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_lines_and_reports_partial_coverage() {
        let store = RangeStore::new(64);
        assert!(store.lookup_range("g", 0, 2).is_none());
        store.insert_line("g", 3, "three");
        store.insert_line("g", 5, "five");
        assert_eq!(store.lines(), 2);
        // Full coverage only for lookup_range.
        assert!(store.lookup_range("g", 3, 6).is_none());
        let hit = store.lookup_range("g", 3, 4).unwrap();
        assert_eq!(&*hit[0], "three");
        // Snapshot exposes the gaps.
        let snap = store.snapshot_range("g", 3, 6).unwrap();
        assert_eq!(snap[0].as_deref(), Some("three"));
        assert!(snap[1].is_none());
        assert_eq!(snap[2].as_deref(), Some("five"));
        // Different base grid, different namespace.
        assert!(store.snapshot_range("other", 3, 6).is_none());
    }

    #[test]
    fn duplicate_inserts_are_idempotent() {
        let store = RangeStore::new(8);
        store.insert_line("g", 0, "zero");
        store.insert_line("g", 0, "zero");
        assert_eq!(store.lines(), 1);
    }

    #[test]
    fn evicts_lru_grids_whole_then_trims_the_writer() {
        let store = RangeStore::new(4);
        for i in 0..3 {
            store.insert_line("old", i, "x");
        }
        store.insert_line("new", 0, "y");
        assert_eq!(store.lines(), 4);
        // One more line for "new" pushes over budget: "old" goes entirely.
        store.insert_line("new", 1, "y");
        assert_eq!(store.grids(), 1);
        assert_eq!(store.lines(), 2);
        assert!(store.lookup_range("old", 0, 1).is_none());
        // A single grid larger than the budget sheds its lowest indices.
        for i in 0..8 {
            store.insert_line("new", i, "y");
        }
        assert_eq!(store.lines(), 4);
        assert!(store.lookup_range("new", 0, 1).is_none());
        assert!(store.lookup_range("new", 4, 8).is_some());
    }

    #[test]
    fn zero_budget_disables_the_store() {
        let store = RangeStore::new(0);
        store.insert_line("g", 0, "zero");
        assert_eq!(store.lines(), 0);
        assert!(!store.enabled());
        assert!(store.snapshot_range("g", 0, 1).is_none());
    }
}
