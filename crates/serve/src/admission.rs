//! Admission control: a bounded in-flight-campaign counter.
//!
//! Every simulated campaign fans out across the host's cores via the sweep
//! pool, so running more campaigns concurrently than the configured bound
//! oversubscribes the simulation pool without making anything finish
//! sooner. The daemon instead **sheds load**: when no permit is available
//! the request is answered `503 Service Unavailable` + `Retry-After`
//! immediately (cache hits and health/stats never need a permit). This is
//! a try-acquire-only semaphore — nothing ever blocks on it — with RAII
//! release so a panicking handler cannot leak a permit.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Try-acquire-only counting semaphore.
pub struct Admission {
    available: AtomicUsize,
    limit: usize,
}

impl Admission {
    /// Allow up to `limit` concurrent in-flight campaigns.
    pub fn new(limit: usize) -> Self {
        Admission {
            available: AtomicUsize::new(limit),
            limit,
        }
    }

    /// The configured bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Permits currently free.
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Relaxed)
    }

    /// Claim a permit if one is free; never blocks.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut current = self.available.load(Ordering::Relaxed);
        loop {
            if current == 0 {
                return None;
            }
            match self.available.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(Permit { owner: self }),
                Err(seen) => current = seen,
            }
        }
    }
}

/// RAII permit; dropping it releases the slot.
pub struct Permit<'a> {
    owner: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.owner.available.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_are_bounded_and_released_on_drop() {
        let adm = Admission::new(2);
        assert_eq!(adm.limit(), 2);
        let a = adm.try_acquire().expect("first permit");
        let b = adm.try_acquire().expect("second permit");
        assert!(adm.try_acquire().is_none(), "limit reached");
        assert_eq!(adm.available(), 0);
        drop(a);
        assert_eq!(adm.available(), 1);
        let _c = adm.try_acquire().expect("released permit is reusable");
        drop(b);
        assert_eq!(adm.available(), 1);
    }

    #[test]
    fn zero_limit_rejects_everything() {
        let adm = Admission::new(0);
        assert!(adm.try_acquire().is_none());
    }

    #[test]
    fn panicking_holder_still_releases() {
        let adm = Admission::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = adm.try_acquire().expect("permit");
            panic!("handler died");
        }));
        assert!(result.is_err());
        assert_eq!(adm.available(), 1, "unwind must return the permit");
    }
}
