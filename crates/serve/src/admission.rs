//! Admission control: a bounded in-flight-campaign counter.
//!
//! Every simulated campaign fans out across the host's cores via the sweep
//! pool, so running more campaigns concurrently than the configured bound
//! oversubscribes the simulation pool without making anything finish
//! sooner. The daemon instead **sheds load**: when no permit is available
//! the request is answered `503 Service Unavailable` + `Retry-After`
//! immediately (cache hits and health/stats never need a permit). This is
//! a try-acquire-only semaphore — nothing ever blocks on it — with RAII
//! release so a panicking handler cannot leak a permit. Permits own an
//! `Arc` to the semaphore rather than borrowing it, so a permit can ride
//! inside a queued `'static` job (the event loop acquires on admission,
//! the executor pool releases when the stream finishes).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Try-acquire-only counting semaphore.
pub struct Admission {
    available: AtomicUsize,
    limit: usize,
}

impl Admission {
    /// Allow up to `limit` concurrent in-flight campaigns.
    pub fn new(limit: usize) -> Self {
        Admission {
            available: AtomicUsize::new(limit),
            limit,
        }
    }

    /// The configured bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Permits currently free.
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Relaxed)
    }

    /// Claim a permit if one is free; never blocks. The permit is
    /// self-contained (`'static`) and releases its slot on drop, wherever
    /// that happens.
    pub fn try_acquire(self: &Arc<Self>) -> Option<Permit> {
        let mut current = self.available.load(Ordering::Relaxed);
        loop {
            if current == 0 {
                return None;
            }
            match self.available.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(Permit {
                        owner: Arc::clone(self),
                    })
                }
                Err(seen) => current = seen,
            }
        }
    }
}

/// RAII permit; dropping it releases the slot.
pub struct Permit {
    owner: Arc<Admission>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.owner.available.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permits_are_bounded_and_released_on_drop() {
        let adm = Arc::new(Admission::new(2));
        assert_eq!(adm.limit(), 2);
        let a = adm.try_acquire().expect("first permit");
        let b = adm.try_acquire().expect("second permit");
        assert!(adm.try_acquire().is_none(), "limit reached");
        assert_eq!(adm.available(), 0);
        drop(a);
        assert_eq!(adm.available(), 1);
        let _c = adm.try_acquire().expect("released permit is reusable");
        drop(b);
        assert_eq!(adm.available(), 1);
    }

    #[test]
    fn zero_limit_rejects_everything() {
        let adm = Arc::new(Admission::new(0));
        assert!(adm.try_acquire().is_none());
    }

    #[test]
    fn permits_outlive_the_acquiring_scope() {
        // A permit moved into a queued job keeps its slot until the job
        // drops it — even after the acquiring reference is gone.
        let adm = Arc::new(Admission::new(1));
        let permit = adm.try_acquire().expect("permit");
        let moved = std::thread::spawn(move || permit).join().expect("join");
        assert_eq!(adm.available(), 0, "slot held across threads");
        drop(moved);
        assert_eq!(adm.available(), 1);
    }

    #[test]
    fn panicking_holder_still_releases() {
        let adm = Arc::new(Admission::new(1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = adm.try_acquire().expect("permit");
            panic!("handler died");
        }));
        assert!(result.is_err());
        assert_eq!(adm.available(), 1, "unwind must return the permit");
    }
}
