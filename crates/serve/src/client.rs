//! Minimal blocking HTTP client for the serve protocol — what the
//! `joss_loadgen` tool, the integration tests, and the `remote_sweep`
//! example talk through. One request per connection, mirroring the
//! daemon's `Connection: close` framing.

use crate::http::{self, RequestError, Response};
use joss_sweep::GridDesc;
use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Turn a protocol error into an `io::Error` (the client's only error
/// type; malformed responses from a daemon are I/O-level failures here).
fn to_io(err: RequestError) -> io::Error {
    match err {
        RequestError::Io(e) => e,
        other => io::Error::other(format!("{other:?}")),
    }
}

/// One exchange: connect, send, read the full response.
fn exchange(
    addr: &str,
    request_head: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(request_head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    http::read_response(&mut reader).map_err(to_io)
}

/// `GET` an endpoint (e.g. `/healthz`, `/stats`).
pub fn get(addr: &str, path: &str, timeout: Duration) -> io::Result<Response> {
    let head = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n");
    exchange(addr, &head, b"", timeout)
}

/// `POST` a raw body to a path (used by tests probing the error paths).
pub fn post(addr: &str, path: &str, body: &[u8], timeout: Duration) -> io::Result<Response> {
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    exchange(addr, &head, body, timeout)
}

/// Submit a campaign: the description goes up as canonical JSON, the
/// response body is the streamed `RunRecord` JSONL (or a JSON error).
pub fn run_campaign(addr: &str, desc: &GridDesc, timeout: Duration) -> io::Result<Response> {
    post(
        addr,
        "/v1/campaign",
        desc.to_canonical_json().as_bytes(),
        timeout,
    )
}

/// Poll `/healthz` until the daemon answers, up to `wait`. Returns the
/// first successful response, or the last error once time is up.
pub fn wait_ready(addr: &str, wait: Duration) -> io::Result<Response> {
    let deadline = std::time::Instant::now() + wait;
    loop {
        match get(addr, "/healthz", Duration::from_secs(2)) {
            Ok(resp) if resp.status == 200 => return Ok(resp),
            Ok(resp) => {
                if std::time::Instant::now() >= deadline {
                    return Err(io::Error::other(format!(
                        "daemon answered /healthz with {}",
                        resp.status
                    )));
                }
            }
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(e);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Verify a streamed campaign body against its description: the expected
/// number of JSONL lines, each parsing as a record object with the right
/// `index`. Returns the record count or a description of the first
/// malformation — the check `joss_loadgen --verify` applies to every
/// response.
pub fn verify_body(desc: &GridDesc, body: &[u8]) -> Result<usize, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let expected = desc.spec_count();
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        let value = joss_sweep::json::parse(line)
            .map_err(|e| format!("record {i} is not valid JSON: {e}"))?;
        let index = value
            .get("index")
            .and_then(joss_sweep::json::Value::as_u64)
            .ok_or_else(|| format!("record {i} is missing its index"))?;
        if index != i as u64 {
            return Err(format!("record {i} carries index {index}: order broken"));
        }
        for key in ["workload", "scheduler", "seed", "total_j", "makespan_s"] {
            if value.get(key).is_none() {
                return Err(format!("record {i} is missing {key:?}"));
            }
        }
        count += 1;
    }
    if count != expected {
        return Err(format!("expected {expected} records, got {count}"));
    }
    if !text.is_empty() && !text.ends_with('\n') {
        return Err("body does not end with a newline".to_string());
    }
    Ok(count)
}
