//! Minimal blocking HTTP client for the serve protocol — what the
//! `joss_loadgen` tool, the fleet coordinator, the integration tests, and
//! the `remote_sweep` example talk through.
//!
//! Two shapes:
//!
//! * [`Conn`] — a **persistent keep-alive connection**: one TCP session
//!   carries many exchanges. Responses are `Content-Length` or chunked
//!   framed, so the stream stays aligned between requests; the connection
//!   reports [`Conn::is_reusable`] `false` once the daemon signals
//!   `Connection: close` or a response had to be read to EOF.
//! * The free functions ([`get`], [`post`], [`run_campaign`],
//!   [`stream_campaign`]) — **one request per connection**: they send
//!   `Connection: close` and read to the daemon's close. Dial-per-request
//!   is the right shape for probes through flaky transports and for A/B
//!   baselines against the keep-alive path.

use crate::http::{self, ChunkedReader, RequestError, Response};
use joss_sweep::GridDesc;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Turn a protocol error into an `io::Error` (the client's only error
/// type; malformed responses from a daemon are I/O-level failures here).
fn to_io(err: RequestError) -> io::Error {
    match err {
        RequestError::Io(e) => e,
        other => io::Error::other(format!("{other:?}")),
    }
}

/// The `X-Joss-Trace` header line for a request head (empty when the
/// caller has no trace to propagate).
fn trace_line(trace: Option<&str>) -> String {
    match trace {
        Some(id) => format!("X-Joss-Trace: {id}\r\n"),
        None => String::new(),
    }
}

/// The request head of a JSON `POST`.
fn post_head(addr: &str, path: &str, body_len: usize, close: bool, trace: Option<&str>) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {body_len}\r\n{}{}\r\n",
        trace_line(trace),
        if close { "Connection: close\r\n" } else { "" }
    )
}

/// The request head of a `GET`.
fn get_head(addr: &str, path: &str, close: bool, trace: Option<&str>) -> String {
    format!(
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\n{}{}\r\n",
        trace_line(trace),
        if close { "Connection: close\r\n" } else { "" }
    )
}

/// How a streamed campaign exchange ended (see [`Conn::stream_campaign`]).
#[derive(Debug)]
pub enum StreamOutcome {
    /// 200: the stream completed cleanly after `lines` record lines.
    Done {
        /// Record lines delivered to the callback.
        lines: usize,
    },
    /// The daemon answered with a non-200 status and this (JSON) body —
    /// a shed (503) or a client fault (4xx), not a transport failure.
    Rejected {
        /// HTTP status code.
        status: u16,
        /// Response headers (lowercased names).
        headers: Vec<(String, String)>,
        /// Full response body.
        body: String,
    },
    /// The *caller* stopped the stream mid-body (a
    /// [`Conn::stream_campaign_ctl`] callback returned `false`) after
    /// `lines` record lines. The rest of the response is abandoned
    /// unread, so the connection is no longer reusable — the elastic
    /// fleet's steal-abort path, where a victim backend's tail range has
    /// been re-issued elsewhere and reading it out would waste the pipe.
    Stopped {
        /// Record lines delivered to the callback before the stop.
        lines: usize,
    },
}

/// A persistent client connection to one daemon.
pub struct Conn {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    reusable: bool,
    /// Trace id (16-hex) sent as `X-Joss-Trace` on every request this
    /// connection carries; the daemon adopts it so its request spans and
    /// `X-Joss-Request-Id` echoes stitch into the caller's trace.
    trace_hex: Option<String>,
}

impl Conn {
    /// Dial `addr` with `timeout` applied to connect, reads, and writes.
    pub fn connect(addr: &str, timeout: Duration) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Conn {
            addr: addr.to_string(),
            reader: BufReader::new(stream),
            writer,
            reusable: true,
            trace_hex: None,
        })
    }

    /// The address this connection was dialed to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Propagate `trace` (a 16-hex trace id) as `X-Joss-Trace` on every
    /// subsequent request; `None` clears it.
    pub fn set_trace(&mut self, trace: Option<String>) {
        self.trace_hex = trace;
    }

    /// Whether the connection can carry another request. `false` after
    /// the daemon signaled `Connection: close` or a response had no
    /// self-delimiting framing — callers should drop and redial.
    pub fn is_reusable(&self) -> bool {
        self.reusable
    }

    fn send(&mut self, head: &str, body: &[u8]) -> io::Result<()> {
        if !self.reusable {
            return Err(io::Error::other(
                "connection is not reusable; dial a new one",
            ));
        }
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()
    }

    /// Note framing facts from a response head: a `Connection: close`
    /// makes this exchange the connection's last.
    fn note_connection(&mut self, headers: &[(String, String)]) {
        let close = headers.iter().any(|(name, value)| {
            name == "connection"
                && value
                    .split(',')
                    .any(|token| token.trim().eq_ignore_ascii_case("close"))
        });
        if close {
            self.reusable = false;
        }
    }

    fn read_full_response(&mut self) -> io::Result<Response> {
        let (status, headers) = http::read_response_head(&mut self.reader).map_err(to_io)?;
        self.note_connection(&headers);
        let mut body = Vec::new();
        if http::is_chunked(&headers) {
            ChunkedReader::new(&mut self.reader).read_to_end(&mut body)?;
        } else if let Some(len) = content_length(&headers) {
            body.resize(len, 0);
            self.reader.read_exact(&mut body)?;
        } else {
            // Close-delimited: legal, but ends the session.
            self.reader.read_to_end(&mut body)?;
            self.reusable = false;
        }
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    /// `GET` an endpoint (e.g. `/healthz`, `/stats`).
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        let head = get_head(&self.addr, path, false, self.trace_hex.as_deref());
        self.send(&head, b"")?;
        self.read_full_response()
    }

    /// `POST` a raw body to a path.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<Response> {
        let head = post_head(
            &self.addr,
            path,
            body.len(),
            false,
            self.trace_hex.as_deref(),
        );
        self.send(&head, body)?;
        self.read_full_response()
    }

    /// Submit a campaign: the description goes up as canonical JSON, the
    /// response body is the streamed `RunRecord` JSONL (or a JSON error).
    pub fn run_campaign(&mut self, desc: &GridDesc) -> io::Result<Response> {
        self.post("/v1/campaign", desc.to_canonical_json().as_bytes())
    }

    /// Submit a campaign and hand each record line (without its newline)
    /// to `on_line` **as it arrives**, instead of buffering the whole body
    /// like [`Conn::run_campaign`] does. `on_line` gets the 0-based
    /// position of the line within this response.
    ///
    /// This is the fleet coordinator's fetch primitive: a shard's records
    /// flow into the global merge while the backend is still simulating,
    /// and when a backend dies mid-stream the error arrives *after* the
    /// lines that made it out — determinism makes those lines identical on
    /// retry, so the coordinator resumes by skipping what it already has.
    ///
    /// A body that ends mid-line, or a chunked stream cut before its
    /// terminator, is a truncated stream and reported as an I/O error; the
    /// partial line is never delivered.
    pub fn stream_campaign(
        &mut self,
        desc: &GridDesc,
        mut on_line: impl FnMut(usize, &str),
    ) -> io::Result<StreamOutcome> {
        self.stream_campaign_ctl(desc, |i, line| {
            on_line(i, line);
            true
        })
    }

    /// [`Conn::stream_campaign`] with flow control: the callback returns
    /// whether to **keep reading**. Returning `false` abandons the rest of
    /// the response immediately ([`StreamOutcome::Stopped`]) and marks the
    /// connection not reusable (unread body bytes are in flight) — callers
    /// redial for the next exchange. Returning `true` for every line
    /// behaves exactly like [`Conn::stream_campaign`].
    ///
    /// This is what lets an elastic fleet coordinator cut a straggler
    /// loose: once a steal moves the tail of a backend's range elsewhere,
    /// the victim's fetcher stops reading at the new effective end instead
    /// of draining records that would only be dropped as duplicates.
    pub fn stream_campaign_ctl(
        &mut self,
        desc: &GridDesc,
        on_line: impl FnMut(usize, &str) -> bool,
    ) -> io::Result<StreamOutcome> {
        let body = desc.to_canonical_json();
        let head = post_head(
            &self.addr,
            "/v1/campaign",
            body.len(),
            false,
            self.trace_hex.as_deref(),
        );
        self.send(&head, body.as_bytes())?;
        stream_response(self, on_line)
    }
}

fn content_length(headers: &[(String, String)]) -> Option<usize> {
    headers
        .iter()
        .find(|(name, _)| name == "content-length")
        .and_then(|(_, value)| value.trim().parse().ok())
}

/// Read newline-delimited record lines to EOF of `reader` (which is
/// already bounded to the response body by its framing), or until the
/// callback returns `false` (the `.1` of the result is `true` when the
/// callback stopped the read early). EOF mid-line is a truncated stream.
fn read_record_lines(
    mut reader: impl BufRead,
    on_line: &mut impl FnMut(usize, &str) -> bool,
) -> io::Result<(usize, bool)> {
    let mut lines = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Ok((lines, false));
        }
        let Some(record) = line.strip_suffix('\n') else {
            // EOF mid-line: the backend died while a record was in
            // flight. Surface it as a transport failure so the caller
            // retries — the partial line must never look like a record.
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("record stream truncated mid-line after {lines} full lines"),
            ));
        };
        let keep_going = on_line(lines, record);
        lines += 1;
        if !keep_going {
            return Ok((lines, true));
        }
    }
}

// ---------------------------------------------------------------------------
// One-shot (close-per-request) API
// ---------------------------------------------------------------------------

/// One exchange on a fresh connection, sending `Connection: close`.
fn exchange(addr: &str, head: &str, body: &[u8], timeout: Duration) -> io::Result<Response> {
    let mut conn = Conn::connect(addr, timeout)?;
    conn.send(head, body)?;
    conn.read_full_response()
}

/// `GET` an endpoint (e.g. `/healthz`, `/stats`) on a fresh connection.
pub fn get(addr: &str, path: &str, timeout: Duration) -> io::Result<Response> {
    exchange(addr, &get_head(addr, path, true, None), b"", timeout)
}

/// `POST` a raw body to a path on a fresh connection (used by tests
/// probing the error paths).
pub fn post(addr: &str, path: &str, body: &[u8], timeout: Duration) -> io::Result<Response> {
    exchange(
        addr,
        &post_head(addr, path, body.len(), true, None),
        body,
        timeout,
    )
}

/// Submit a campaign on a fresh connection.
pub fn run_campaign(addr: &str, desc: &GridDesc, timeout: Duration) -> io::Result<Response> {
    post(
        addr,
        "/v1/campaign",
        desc.to_canonical_json().as_bytes(),
        timeout,
    )
}

/// Poll `/healthz` until the daemon answers, up to `wait`. Returns the
/// first successful response, or the last error once time is up.
pub fn wait_ready(addr: &str, wait: Duration) -> io::Result<Response> {
    let deadline = std::time::Instant::now() + wait;
    loop {
        match get(addr, "/healthz", Duration::from_secs(2)) {
            Ok(resp) if resp.status == 200 => return Ok(resp),
            Ok(resp) => {
                if std::time::Instant::now() >= deadline {
                    return Err(io::Error::other(format!(
                        "daemon answered /healthz with {}",
                        resp.status
                    )));
                }
            }
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(e);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Submit a campaign on a fresh `Connection: close` connection, streaming
/// record lines — the dial-per-request twin of [`Conn::stream_campaign`].
pub fn stream_campaign(
    addr: &str,
    desc: &GridDesc,
    timeout: Duration,
    mut on_line: impl FnMut(usize, &str),
) -> io::Result<StreamOutcome> {
    let mut conn = Conn::connect(addr, timeout)?;
    let body = desc.to_canonical_json();
    let head = post_head(addr, "/v1/campaign", body.len(), true, None);
    conn.send(&head, body.as_bytes())?;
    stream_response(&mut conn, |i, line| {
        on_line(i, line);
        true
    })
}

/// Shared response-side of a campaign stream: dispatch on the body's
/// framing (chunked for executed campaigns, `Content-Length` for cache
/// hits and errors, read-to-close for legacy peers) and feed record lines
/// to the callback until it returns `false` or the body ends.
fn stream_response(
    conn: &mut Conn,
    mut on_line: impl FnMut(usize, &str) -> bool,
) -> io::Result<StreamOutcome> {
    let (status, headers) = http::read_response_head(&mut conn.reader).map_err(to_io)?;
    conn.note_connection(&headers);
    if status != 200 {
        // Error bodies are small JSON; read them with their framing so
        // the connection survives for the retry.
        let mut rejected = Vec::new();
        if http::is_chunked(&headers) {
            ChunkedReader::new(&mut conn.reader).read_to_end(&mut rejected)?;
        } else if let Some(len) = content_length(&headers) {
            rejected.resize(len, 0);
            conn.reader.read_exact(&mut rejected)?;
        } else {
            conn.reader.read_to_end(&mut rejected)?;
            conn.reusable = false;
        }
        return Ok(StreamOutcome::Rejected {
            status,
            headers,
            body: String::from_utf8_lossy(&rejected).into_owned(),
        });
    }
    let (lines, stopped) = if http::is_chunked(&headers) {
        let chunked = ChunkedReader::new(&mut conn.reader);
        read_record_lines(BufReader::new(chunked), &mut on_line)
    } else if let Some(len) = content_length(&headers) {
        let limited = (&mut conn.reader).take(len as u64);
        read_record_lines(limited, &mut on_line)
    } else {
        conn.reusable = false;
        read_record_lines(&mut conn.reader, &mut on_line)
    }?;
    if stopped {
        // The rest of the body (and any chunked terminator) is still in
        // the pipe; the stream is no longer request-aligned.
        conn.reusable = false;
        return Ok(StreamOutcome::Stopped { lines });
    }
    Ok(StreamOutcome::Done { lines })
}

/// Verify a streamed campaign body against its description: the expected
/// number of JSONL lines, each parsing as a record object with the right
/// `index` (global spec indices — a sharded description's records start
/// at the shard's first index). Returns the record count or a description
/// of the first malformation — the check `joss_loadgen --verify` applies
/// to every response.
pub fn verify_body(desc: &GridDesc, body: &[u8]) -> Result<usize, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let expected = desc.run_count();
    let base = desc.index_base() as u64;
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        let value = joss_sweep::json::parse(line)
            .map_err(|e| format!("record {i} is not valid JSON: {e}"))?;
        let index = value
            .get("index")
            .and_then(joss_sweep::json::Value::as_u64)
            .ok_or_else(|| format!("record {i} is missing its index"))?;
        if index != base + i as u64 {
            return Err(format!(
                "record {i} carries index {index}, expected {}: order broken",
                base + i as u64
            ));
        }
        for key in ["workload", "scheduler", "seed", "total_j", "makespan_s"] {
            if value.get(key).is_none() {
                return Err(format!("record {i} is missing {key:?}"));
            }
        }
        count += 1;
    }
    if count != expected {
        return Err(format!("expected {expected} records, got {count}"));
    }
    if !text.is_empty() && !text.ends_with('\n') {
        return Err("body does not end with a newline".to_string());
    }
    Ok(count)
}
