//! Minimal blocking HTTP client for the serve protocol — what the
//! `joss_loadgen` tool, the integration tests, and the `remote_sweep`
//! example talk through. One request per connection, mirroring the
//! daemon's `Connection: close` framing.

use crate::http::{self, RequestError, Response};
use joss_sweep::GridDesc;
use std::io::{self, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Turn a protocol error into an `io::Error` (the client's only error
/// type; malformed responses from a daemon are I/O-level failures here).
fn to_io(err: RequestError) -> io::Error {
    match err {
        RequestError::Io(e) => e,
        other => io::Error::other(format!("{other:?}")),
    }
}

/// Connect and send one request, returning the stream with the response
/// unread — shared by the buffered [`exchange`] and the streaming
/// [`stream_campaign`], so the two clients cannot drift apart on socket
/// setup or head formatting.
fn connect_and_send(
    addr: &str,
    request_head: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(request_head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()?;
    Ok(stream)
}

/// The request head of a JSON `POST` (shared for the same reason).
fn post_head(addr: &str, path: &str, body_len: usize) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {body_len}\r\n\r\n"
    )
}

/// One exchange: connect, send, read the full response.
fn exchange(
    addr: &str,
    request_head: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<Response> {
    let stream = connect_and_send(addr, request_head, body, timeout)?;
    let mut reader = BufReader::new(stream);
    http::read_response(&mut reader).map_err(to_io)
}

/// `GET` an endpoint (e.g. `/healthz`, `/stats`).
pub fn get(addr: &str, path: &str, timeout: Duration) -> io::Result<Response> {
    let head = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n");
    exchange(addr, &head, b"", timeout)
}

/// `POST` a raw body to a path (used by tests probing the error paths).
pub fn post(addr: &str, path: &str, body: &[u8], timeout: Duration) -> io::Result<Response> {
    exchange(addr, &post_head(addr, path, body.len()), body, timeout)
}

/// Submit a campaign: the description goes up as canonical JSON, the
/// response body is the streamed `RunRecord` JSONL (or a JSON error).
pub fn run_campaign(addr: &str, desc: &GridDesc, timeout: Duration) -> io::Result<Response> {
    post(
        addr,
        "/v1/campaign",
        desc.to_canonical_json().as_bytes(),
        timeout,
    )
}

/// Poll `/healthz` until the daemon answers, up to `wait`. Returns the
/// first successful response, or the last error once time is up.
pub fn wait_ready(addr: &str, wait: Duration) -> io::Result<Response> {
    let deadline = std::time::Instant::now() + wait;
    loop {
        match get(addr, "/healthz", Duration::from_secs(2)) {
            Ok(resp) if resp.status == 200 => return Ok(resp),
            Ok(resp) => {
                if std::time::Instant::now() >= deadline {
                    return Err(io::Error::other(format!(
                        "daemon answered /healthz with {}",
                        resp.status
                    )));
                }
            }
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(e);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Verify a streamed campaign body against its description: the expected
/// number of JSONL lines, each parsing as a record object with the right
/// `index` (global spec indices — a sharded description's records start
/// at the shard's first index). Returns the record count or a description
/// of the first malformation — the check `joss_loadgen --verify` applies
/// to every response.
pub fn verify_body(desc: &GridDesc, body: &[u8]) -> Result<usize, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let expected = desc.run_count();
    let base = desc.index_base() as u64;
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        let value = joss_sweep::json::parse(line)
            .map_err(|e| format!("record {i} is not valid JSON: {e}"))?;
        let index = value
            .get("index")
            .and_then(joss_sweep::json::Value::as_u64)
            .ok_or_else(|| format!("record {i} is missing its index"))?;
        if index != base + i as u64 {
            return Err(format!(
                "record {i} carries index {index}, expected {}: order broken",
                base + i as u64
            ));
        }
        for key in ["workload", "scheduler", "seed", "total_j", "makespan_s"] {
            if value.get(key).is_none() {
                return Err(format!("record {i} is missing {key:?}"));
            }
        }
        count += 1;
    }
    if count != expected {
        return Err(format!("expected {expected} records, got {count}"));
    }
    if !text.is_empty() && !text.ends_with('\n') {
        return Err("body does not end with a newline".to_string());
    }
    Ok(count)
}

/// How a streamed campaign exchange ended (see [`stream_campaign`]).
#[derive(Debug)]
pub enum StreamOutcome {
    /// 200: the stream completed cleanly after `lines` record lines.
    Done {
        /// Record lines delivered to the callback.
        lines: usize,
    },
    /// The daemon answered with a non-200 status and this (JSON) body —
    /// a shed (503) or a client fault (4xx), not a transport failure.
    Rejected {
        /// HTTP status code.
        status: u16,
        /// Response headers (lowercased names).
        headers: Vec<(String, String)>,
        /// Full response body.
        body: String,
    },
}

/// Submit a campaign and hand each record line (without its newline) to
/// `on_line` **as it arrives**, instead of buffering the whole body like
/// [`run_campaign`] does. `on_line` gets the 0-based position of the line
/// within this response.
///
/// This is the fleet coordinator's fetch primitive: a shard's records
/// flow into the global merge while the backend is still simulating, and
/// when a backend dies mid-stream the error arrives *after* the lines
/// that made it out — determinism makes those lines identical on retry,
/// so the coordinator resumes by skipping what it already has.
///
/// A body that ends mid-line (no trailing newline before the peer closed)
/// is a truncated stream and reported as an I/O error; the partial line
/// is never delivered.
pub fn stream_campaign(
    addr: &str,
    desc: &GridDesc,
    timeout: Duration,
    mut on_line: impl FnMut(usize, &str),
) -> io::Result<StreamOutcome> {
    let body = desc.to_canonical_json();
    let head = post_head(addr, "/v1/campaign", body.len());
    let stream = connect_and_send(addr, &head, body.as_bytes(), timeout)?;
    let mut reader = BufReader::new(stream);
    let (status, headers) = http::read_response_head(&mut reader).map_err(to_io)?;
    if status != 200 {
        // Error bodies are small length-delimited JSON; read them whole.
        let mut rejected = Vec::new();
        std::io::Read::read_to_end(&mut reader, &mut rejected)?;
        return Ok(StreamOutcome::Rejected {
            status,
            headers,
            body: String::from_utf8_lossy(&rejected).into_owned(),
        });
    }

    let mut lines = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        let n = std::io::BufRead::read_line(&mut reader, &mut line)?;
        if n == 0 {
            return Ok(StreamOutcome::Done { lines });
        }
        let Some(record) = line.strip_suffix('\n') else {
            // EOF mid-line: the backend died while a record was in
            // flight. Surface it as a transport failure so the caller
            // retries — the partial line must never look like a record.
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("record stream truncated mid-line after {lines} full lines"),
            ));
        };
        on_line(lines, record);
        lines += 1;
    }
}
