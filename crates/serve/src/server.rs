//! The daemon: a readiness-driven reactor thread plus a campaign executor
//! pool.
//!
//! Architecture (event loop + blocking simulation workers — the vendored
//! dependency set has no async runtime, and simulations are CPU-bound
//! anyway):
//!
//! ```text
//! reactor thread (epoll over nonblocking sockets; crate::reactor)
//!   ├─ accept / read / parse HTTP/1.1 (keep-alive, pipelined)
//!   ├─ in-line: health, stats, 4xx, 503 shed, zero-copy cache hits
//!   │    hit = one owned head + one Arc'd body segment → writev
//!   └─ miss ──► job queue ──► N executor threads
//!                                  │ validate, resolve, then
//!                                  │ Campaign::run_streaming (sweep pool,
//!                                  │ shared lazily-trained context)
//!                                  ▼
//!                    chunk frames → per-connection Outbound queue
//!                    (bounded: a slow client blocks only its own stream)
//!                                  │ poller.notify()
//!                                  ▼
//!                    reactor drains queue as the socket accepts bytes
//! ```
//!
//! Connections are persistent: HTTP/1.1 keep-alive by default, with
//! `Connection: close` (and HTTP/1.0) honored. Cache hits and error
//! responses are `Content-Length`-framed; executed campaigns stream with
//! `Transfer-Encoding: chunked` so the connection survives a
//! length-unknown body. The expensive per-process state is shared: **one**
//! [`ExperimentContext`] trained on first use serves every request, and
//! finished campaign bodies land in the [`ResultsCache`] keyed by the
//! grid's canonical JSON — with their raw request bytes memoized, so a
//! repeated query re-simulates nothing and re-parses nothing.

use crate::admission::{Admission, Permit};
use crate::cache::{CachedBody, ResultsCache};
use crate::http;
use crate::reactor::{self, Outbound, Seg};
use joss_sweep::{Campaign, ExperimentContext, GridDesc};
use polling::Poller;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Daemon configuration; [`ServeConfig::default`] matches the CLI defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Campaign executor threads. Only admitted cache misses occupy one;
    /// health, stats, and cache-hit traffic is answered by the reactor and
    /// never waits behind a simulation.
    pub workers: usize,
    /// Concurrent in-flight campaigns admitted before 503s (see
    /// [`Admission`]).
    pub max_inflight: usize,
    /// Results-cache capacity in campaign bodies (0 disables).
    pub cache_entries: usize,
    /// Worker threads per admitted campaign (the sweep pool's fan-out).
    pub campaign_threads: usize,
    /// Largest accepted grid, in specs.
    pub max_specs: usize,
    /// Capacity of the content-addressed per-spec result store, in record
    /// lines across all grids (0 disables). Unlike `cache_entries` (whole
    /// response bodies keyed by exact range), the store serves *overlapping*
    /// ranges of a grid: any sub-range cut differently than before — a
    /// fleet's re-issued stolen range, a second campaign over part of the
    /// same grid — reuses whatever specs are already stored and simulates
    /// only the gaps.
    pub store_specs: usize,
    /// Largest accepted request body, bytes.
    pub max_body: usize,
    /// Training seed for the shared context (must match an offline run for
    /// byte-identical records).
    pub train_seed: u64,
    /// Profiling repetitions for the one-time characterization.
    pub reps: u32,
    /// How long a half-received request may sit before the connection is
    /// dropped.
    pub read_timeout: Duration,
    /// How long queued response bytes may make zero progress (client not
    /// reading) before the connection is dropped.
    pub write_timeout: Duration,
    /// How long an idle keep-alive connection is kept before being reaped.
    pub idle_timeout: Duration,
    /// Directory flight-recorder artifacts are written to (`--flight-dir`).
    /// `None` disables persistence; `GET /debug/flight` still answers with
    /// the artifact inline.
    pub flight_dir: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7077".into(),
            workers: 8,
            max_inflight: 2,
            cache_entries: 64,
            campaign_threads: joss_sweep::default_threads(),
            max_specs: 4096,
            store_specs: 16 * 1024,
            max_body: 64 * 1024,
            train_seed: 42,
            reps: 3,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(60),
            flight_dir: None,
        }
    }
}

/// Monotonic service counters, exposed at `GET /stats`.
#[derive(Debug, Default)]
pub struct Stats {
    /// Requests whose head parsed (any method/path).
    pub requests: AtomicU64,
    /// Connections accepted (a keep-alive connection counts once however
    /// many requests it carries).
    pub connections: AtomicU64,
    /// Campaigns actually simulated (== cache misses that were admitted).
    pub campaigns_executed: AtomicU64,
    /// Campaign requests served straight from the results cache.
    pub cache_hits: AtomicU64,
    /// Campaign requests shed with 503.
    pub rejected_503: AtomicU64,
    /// Requests answered 4xx.
    pub bad_requests: AtomicU64,
    /// Records streamed by executed campaigns.
    pub records_streamed: AtomicU64,
    /// Connections dropped on transport errors or blown deadlines.
    pub io_errors: AtomicU64,
    /// Handler panics contained by the executor pool (each one is a bug —
    /// the count is surfaced so it cannot hide).
    pub handler_panics: AtomicU64,
    /// Campaign requests whose whole range was assembled from the per-spec
    /// result store without touching an executor.
    pub store_hits: AtomicU64,
    /// Individual specs an executed campaign spliced in from the store
    /// instead of re-simulating (partial-overlap reuse).
    pub store_spec_hits: AtomicU64,
}

impl Stats {
    /// Bump a per-instance `/stats` counter and its process-global
    /// catalog twin in one call. Call sites name both, so the instance
    /// view (one daemon) and the telemetry view (whole process — a fleet
    /// `--spawn` topology hosts several daemons) stay in lockstep.
    pub(crate) fn bump(counter: &AtomicU64, global: &joss_telemetry::Counter) {
        counter.fetch_add(1, Ordering::Relaxed);
        global.inc();
    }

    fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// An admitted campaign miss, queued from the reactor to the executors.
pub(crate) struct Job {
    /// Reactor key of the owning connection (for wakes).
    pub(crate) key: usize,
    pub(crate) out: Arc<Outbound>,
    pub(crate) desc: GridDesc,
    pub(crate) canonical: String,
    /// Request body bytes, memoized alongside the cache entry on success.
    pub(crate) raw_body: Vec<u8>,
    /// Formatted spec hash for the response head.
    pub(crate) hash: String,
    pub(crate) run_count: usize,
    /// Response should carry `Connection: close`.
    pub(crate) close_after: bool,
    /// Request id echoed on the response head and logged if the handler
    /// panics (satellite: panics are attributable to a request).
    pub(crate) request_id: String,
    /// Trace id adopted from `X-Joss-Trace` (0 = client sent none);
    /// installed as the executor thread's current trace for the job.
    pub(crate) trace: u64,
    /// Request carried `X-Joss-Debug-Panic`: panic at the top of the
    /// handler. The deterministic trigger the flight-recorder smoke tests
    /// (and CI's forced-dump step) use — never set by real traffic.
    pub(crate) debug_panic: bool,
    /// Admission slot, held from reactor-side admission until the job is
    /// done (dropped here even on panic, via the permit's RAII release).
    pub(crate) permit: Permit,
}

/// Blocking MPMC job queue feeding the executor pool.
#[derive(Default)]
pub(crate) struct JobQueue {
    queue: Mutex<(VecDeque<Job>, bool)>,
    ready: Condvar,
}

impl JobQueue {
    pub(crate) fn push(&self, job: Job) {
        self.queue.lock().expect("job queue").0.push_back(job);
        self.ready.notify_one();
    }

    /// Jobs admitted but not yet claimed by an executor (a `/stats`
    /// gauge: nonzero means every executor is busy and work is piling up).
    pub(crate) fn len(&self) -> usize {
        self.queue.lock().expect("job queue").0.len()
    }

    /// Next job, or `None` once the queue is closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut guard = self.queue.lock().expect("job queue");
        loop {
            if let Some(job) = guard.0.pop_front() {
                return Some(job);
            }
            if guard.1 {
                return None;
            }
            guard = self.ready.wait(guard).expect("job queue");
        }
    }

    fn close(&self) {
        self.queue.lock().expect("job queue").1 = true;
        self.ready.notify_all();
    }
}

/// Live progress of one executing campaign, registered for the duration
/// of its `run_job` and exposed in `GET /stats` as `active_campaigns` —
/// the per-campaign specs-completed / specs-total signal an elastic fleet
/// coordinator reads before stealing part of a straggler's range.
pub(crate) struct ActiveCampaign {
    /// Formatted spec hash of the (possibly sharded) request.
    pub(crate) hash: String,
    /// Specs this campaign will emit.
    pub(crate) total: usize,
    /// Specs emitted so far (monotonic, ends at `total`). Every completed
    /// spec is exactly one streamed record line, so this doubles as the
    /// campaign's records-streamed count.
    pub(crate) completed: AtomicUsize,
    /// Specs of this range spliced in from the per-spec store instead of
    /// simulated (set once the store has been consulted).
    pub(crate) store_spliced: AtomicUsize,
    /// When the executor picked the campaign up — the base of the
    /// `/v1/progress` rate and ETA derivation.
    pub(crate) started: Instant,
}

/// Shared per-process serving state.
pub(crate) struct State {
    pub(crate) config: ServeConfig,
    pub(crate) cache: ResultsCache,
    /// Content-addressed per-spec result store (see [`crate::store`]).
    pub(crate) store: crate::store::RangeStore,
    pub(crate) admission: Arc<Admission>,
    ctx: OnceLock<ExperimentContext>,
    pub(crate) stats: Stats,
    pub(crate) shutdown: AtomicBool,
    /// The reactor's poller; executors use it to wake the event loop.
    pub(crate) poller: Poller,
    pub(crate) jobs: JobQueue,
    /// Jobs admitted but not yet finished (keeps shutdown honest).
    pub(crate) active_jobs: AtomicUsize,
    /// Campaigns currently streaming records, for `/stats` progress.
    pub(crate) active_campaigns: Mutex<Vec<Arc<ActiveCampaign>>>,
    /// Connection keys with executor-side progress to flush.
    pub(crate) wakes: Mutex<Vec<usize>>,
    /// Request ids of the most recent contained handler panics (capped),
    /// surfaced in `/stats` so a panic is attributable to its request.
    pub(crate) recent_panics: Mutex<VecDeque<String>>,
    /// Request ids of the most recent routed requests (capped), dumped by
    /// the flight recorder so a post-mortem sees what the daemon was
    /// serving in the moments before an incident.
    pub(crate) recent_requests: Mutex<VecDeque<String>>,
    /// When the daemon bound its listener (`uptime_secs` everywhere).
    pub(crate) started: Instant,
}

/// How many panic request ids `/stats` retains.
const RECENT_PANICS_CAP: usize = 8;

/// How many routed request ids the flight recorder retains.
const RECENT_REQUESTS_CAP: usize = 32;

/// RAII registration of an [`ActiveCampaign`]: deregisters on drop, so a
/// panicking handler cannot leave a ghost entry in `/stats`.
struct ProgressGuard<'a> {
    state: &'a State,
    entry: Arc<ActiveCampaign>,
}

impl Drop for ProgressGuard<'_> {
    fn drop(&mut self) {
        self.state
            .active_campaigns
            .lock()
            .expect("active campaigns")
            .retain(|e| !Arc::ptr_eq(e, &self.entry));
    }
}

impl State {
    /// The shared experiment context, trained on first use (the paper's
    /// install-time characterization). Concurrent first requests block
    /// here until the one training finishes, then all share it.
    fn ctx(&self) -> &ExperimentContext {
        self.ctx
            .get_or_init(|| ExperimentContext::with_reps(self.config.train_seed, self.config.reps))
    }

    /// Ask the reactor to service connection `key` (executor-side progress:
    /// queued chunks or a finished stream).
    pub(crate) fn wake(&self, key: usize) {
        self.wakes.lock().expect("wake list").push(key);
        let _ = self.poller.notify();
    }

    /// Remember a routed request id in the flight recorder's capped window.
    pub(crate) fn note_request(&self, request_id: &str) {
        let mut recent = self.recent_requests.lock().expect("recent requests");
        if recent.len() >= RECENT_REQUESTS_CAP {
            recent.pop_front();
        }
        recent.push_back(request_id.to_string());
    }

    /// Whole seconds since the listener bound.
    pub(crate) fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The `GET /v1/progress` body: per-campaign live state with a rate
    /// and ETA derived from elapsed wall time, plus the cumulative totals
    /// an operator reads next to them. `eta_ms` is `null` until the first
    /// spec completes (no observed rate to extrapolate from).
    pub(crate) fn progress_json(&self) -> String {
        use std::fmt::Write as _;
        let mut active = String::from("[");
        for (i, entry) in self
            .active_campaigns
            .lock()
            .expect("active campaigns")
            .iter()
            .enumerate()
        {
            if i > 0 {
                active.push(',');
            }
            let completed = entry.completed.load(Ordering::Relaxed);
            let elapsed = entry.started.elapsed();
            let elapsed_ms = elapsed.as_millis().min(u64::MAX as u128) as u64;
            let secs = elapsed.as_secs_f64();
            let per_sec = if secs > 0.0 {
                completed as f64 / secs
            } else {
                0.0
            };
            let eta_ms = if completed > 0 && per_sec > 0.0 {
                let remaining = entry.total.saturating_sub(completed);
                format!("{}", (remaining as f64 / per_sec * 1e3) as u64)
            } else {
                "null".into()
            };
            let _ = write!(
                active,
                "{{\"hash\":{},\"completed\":{},\"total\":{},\"records_streamed\":{},\
                 \"store_spliced\":{},\"elapsed_ms\":{},\"specs_per_sec\":{:.3},\"eta_ms\":{}}}",
                joss_sweep::json::quote(&entry.hash),
                completed,
                entry.total,
                completed,
                entry.store_spliced.load(Ordering::Relaxed),
                elapsed_ms,
                per_sec,
                eta_ms,
            );
        }
        active.push(']');
        format!(
            "{{\"progress_schema\":1,\"uptime_secs\":{},\"executor_queue_depth\":{},\
             \"active\":{active},\
             \"totals\":{{\"campaigns_executed\":{},\"cache_hits\":{},\"store_hits\":{},\
             \"store_spec_hits\":{},\"records_streamed\":{},\"handler_panics\":{}}}}}",
            self.uptime_secs(),
            self.jobs.len(),
            Stats::get(&self.stats.campaigns_executed),
            Stats::get(&self.stats.cache_hits),
            Stats::get(&self.stats.store_hits),
            Stats::get(&self.stats.store_spec_hits),
            Stats::get(&self.stats.records_streamed),
            Stats::get(&self.stats.handler_panics),
        )
    }

    pub(crate) fn stats_json(&self) -> String {
        // Snapshot live campaign progress: `[{"hash":..,"completed":..,
        // "total":..}, ...]`, one entry per campaign an executor is
        // currently streaming.
        let mut active = String::from("[");
        for (i, entry) in self
            .active_campaigns
            .lock()
            .expect("active campaigns")
            .iter()
            .enumerate()
        {
            if i > 0 {
                active.push(',');
            }
            let _ = std::fmt::Write::write_fmt(
                &mut active,
                format_args!(
                    "{{\"hash\":{},\"completed\":{},\"total\":{}}}",
                    joss_sweep::json::quote(&entry.hash),
                    entry.completed.load(Ordering::Relaxed),
                    entry.total,
                ),
            );
        }
        active.push(']');
        // Recent panic request ids, oldest first.
        let mut panics = String::from("[");
        for (i, rid) in self
            .recent_panics
            .lock()
            .expect("recent panics")
            .iter()
            .enumerate()
        {
            if i > 0 {
                panics.push(',');
            }
            panics.push_str(&joss_sweep::json::quote(rid));
        }
        panics.push(']');
        // The fleet coordinator's steal bookkeeping, read from the
        // process-global telemetry catalog. Meaningful when the
        // coordinator shares this process (the `joss_fleet --spawn`
        // topology); all zeros when it runs elsewhere.
        let fleet = {
            use joss_telemetry::catalog as tm;
            let mut backends = String::from("[");
            for (i, (backend, tasks)) in tm::FLEET_BACKEND_TASKS.cells().iter().enumerate() {
                if i > 0 {
                    backends.push(',');
                }
                let _ = std::fmt::Write::write_fmt(
                    &mut backends,
                    format_args!(
                        "{{\"backend\":{},\"tasks\":{}}}",
                        joss_sweep::json::quote(backend),
                        tasks
                    ),
                );
            }
            backends.push(']');
            format!(
                "{{\"steal_attempts\":{},\"steals_committed\":{},\"steals_invalidated\":{},\
                 \"stolen_specs\":{},\"failovers\":{},\"sheds\":{},\"shards_planned\":{},\
                 \"tasks_completed\":{},\"backend_tasks\":{}}}",
                tm::FLEET_STEAL_ATTEMPTS.get(),
                tm::FLEET_STEALS_COMMITTED.get(),
                tm::FLEET_STEALS_INVALIDATED.get(),
                tm::FLEET_STOLEN_SPECS.get(),
                tm::FLEET_FAILOVERS.get(),
                tm::FLEET_SHEDS.get(),
                tm::FLEET_SHARDS_PLANNED.get(),
                tm::FLEET_TASKS_COMPLETED.get(),
                backends,
            )
        };
        format!(
            "{{\"stats_schema\":3,\"uptime_secs\":{},\
             \"requests\":{},\"connections\":{},\"campaigns_executed\":{},\"cache_hits\":{},\
             \"rejected_503\":{},\"bad_requests\":{},\"records_streamed\":{},\
             \"io_errors\":{},\"handler_panics\":{},\"store_hits\":{},\"store_spec_hits\":{},\
             \"store_lines\":{},\"executor_queue_depth\":{},\"active_campaigns\":{},\
             \"cached_grids\":{},\"trained\":{},\
             \"max_inflight\":{},\"available_permits\":{},\"train_seed\":{},\"reps\":{},\
             \"recent_panic_request_ids\":{panics},\"fleet\":{fleet},\
             \"schema\":{}}}",
            self.uptime_secs(),
            Stats::get(&self.stats.requests),
            Stats::get(&self.stats.connections),
            Stats::get(&self.stats.campaigns_executed),
            Stats::get(&self.stats.cache_hits),
            Stats::get(&self.stats.rejected_503),
            Stats::get(&self.stats.bad_requests),
            Stats::get(&self.stats.records_streamed),
            Stats::get(&self.stats.io_errors),
            Stats::get(&self.stats.handler_panics),
            Stats::get(&self.stats.store_hits),
            Stats::get(&self.stats.store_spec_hits),
            self.store.lines(),
            self.jobs.len(),
            active,
            self.cache.len(),
            self.ctx.get().is_some(),
            self.admission.limit(),
            self.admission.available(),
            self.config.train_seed,
            self.config.reps,
            joss_sweep::json::quote(joss_sweep::RECORD_SCHEMA),
        )
    }

    pub(crate) fn health_json(&self) -> String {
        // `telemetry` distinguishes a quiet backend ("on", nothing
        // happening) from a blind one ("compiled-out" build or runtime
        // "disabled") — `joss_top` shows it per backend.
        let telemetry = if joss_telemetry::COMPILED_OUT {
            "compiled-out"
        } else if joss_telemetry::enabled() {
            "on"
        } else {
            "disabled"
        };
        format!(
            "{{\"status\":\"ok\",\"trained\":{},\"train_seed\":{},\"reps\":{},\
             \"schema\":{},\"version\":{},\"uptime_secs\":{},\"telemetry\":\"{telemetry}\"}}",
            self.ctx.get().is_some(),
            self.config.train_seed,
            self.config.reps,
            joss_sweep::json::quote(joss_sweep::RECORD_SCHEMA),
            joss_sweep::json::quote(env!("CARGO_PKG_VERSION")),
            self.uptime_secs(),
        )
    }
}

/// A bound daemon, ready to [`Server::run`] or [`Server::spawn`].
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Bind the listener (does not accept yet, and does not train).
    pub fn bind(config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(State {
            cache: ResultsCache::new(config.cache_entries),
            store: crate::store::RangeStore::new(config.store_specs),
            admission: Arc::new(Admission::new(config.max_inflight)),
            ctx: OnceLock::new(),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            poller: Poller::new()?,
            jobs: JobQueue::default(),
            active_jobs: AtomicUsize::new(0),
            active_campaigns: Mutex::new(Vec::new()),
            wakes: Mutex::new(Vec::new()),
            recent_panics: Mutex::new(VecDeque::new()),
            recent_requests: Mutex::new(VecDeque::new()),
            started: Instant::now(),
            config,
        });
        // Feed the time-series ring for `/v1/timeseries` (idempotent; a
        // no-op thread under `telemetry-off`).
        joss_telemetry::timeseries::start_sampler(joss_telemetry::timeseries::DEFAULT_INTERVAL);
        Ok(Server { listener, state })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Train the shared context now instead of on the first campaign
    /// (`joss_serve --train-eager`): connections accepted after this
    /// returns never pay the characterization latency.
    pub fn train(&self) {
        let _ = self.state.ctx();
    }

    /// Serve until [`ServerHandle::stop`] (or a poller error). Blocks the
    /// calling thread — it becomes the reactor — and runs the executor
    /// pool on scoped threads; use [`Server::spawn`] for an owned
    /// background daemon.
    pub fn run(self) -> io::Result<()> {
        let workers = self.state.config.workers.max(1);
        let result = std::thread::scope(|scope| {
            for _ in 0..workers {
                let state = Arc::clone(&self.state);
                scope.spawn(move || executor_loop(&state));
            }
            let result = reactor::run(self.listener, Arc::clone(&self.state));
            // The reactor only exits on shutdown (or a fatal poller
            // error): release the executors.
            self.state.shutdown.store(true, Ordering::Release);
            self.state.jobs.close();
            result
        });
        result
    }

    /// Run on a background thread, returning a stop/join handle.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            state,
            thread,
        })
    }
}

/// Handle to a daemon running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flag shutdown, wake the reactor, and join. In-flight campaign
    /// streams finish and every connection is flushed and closed; no new
    /// connections are accepted.
    pub fn stop(self) -> io::Result<()> {
        self.state.shutdown.store(true, Ordering::Release);
        let _ = self.state.poller.notify();
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Executor thread: drain admitted campaign jobs until the queue closes.
fn executor_loop(state: &Arc<State>) {
    while let Some(job) = state.jobs.pop() {
        let key = job.key;
        let out = Arc::clone(&job.out);
        let request_id = job.request_id.clone();
        // Kept out of the job so the flight recorder can dump the
        // offending grid even after the handler consumed (and panicked
        // over) the job itself.
        let canonical = job.canonical.clone();
        // The job's trace becomes this thread's current trace for the
        // duration of the run, so campaign/spec spans recorded anywhere
        // below tag themselves with it; restored even on panic.
        let prev_trace = joss_telemetry::trace::set_current(job.trace);
        // Contain handler panics: the daemon must not lose an executor
        // (and eventually its whole pool) to one bad request. The
        // connection is torn down; the client sees a reset, the counter
        // sees a bug. The job's permit releases on unwind.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(state, job)));
        joss_telemetry::trace::set_current(prev_trace);
        if outcome.is_err() {
            Stats::bump(
                &state.stats.handler_panics,
                &joss_telemetry::catalog::SERVE_HANDLER_PANICS,
            );
            // Attribute the panic to its request: log the id, keep it in
            // the capped /stats window, and mark the trace.
            eprintln!("[joss_serve] handler panic; request id {request_id}");
            joss_telemetry::trace::event("handler_panic", request_id.clone());
            let mut recent = state.recent_panics.lock().expect("recent panics");
            if recent.len() >= RECENT_PANICS_CAP {
                recent.pop_front();
            }
            recent.push_back(request_id.clone());
            drop(recent);
            // The post-mortem artifact: trace tail, metrics, recent
            // request ids, and the grid that blew up, dumped while the
            // evidence is still in the rings.
            crate::flight::record(state, "panic", &request_id, Some(&canonical));
            out.close();
        }
        state.active_jobs.fetch_sub(1, Ordering::AcqRel);
        state.wake(key);
    }
}

/// Simulate one admitted campaign, streaming chunk-framed records into the
/// connection's outbound queue and (when enabled) into the results cache.
fn run_job(state: &Arc<State>, job: Job) {
    let Job {
        key,
        out,
        desc,
        canonical,
        raw_body,
        hash,
        run_count,
        close_after,
        request_id,
        trace,
        debug_panic,
        permit: _permit,
    } = job;
    if debug_panic {
        panic!("debug panic requested by {request_id}");
    }
    let span = joss_telemetry::Span::with_trace(trace, "campaign_miss", request_id.clone());

    // Train-once (first admitted campaign pays it), then validate against
    // the serving platform and resolve. Both must precede the 200 head: an
    // out-of-range `fixed:` knob index or unknown workload label is a
    // client fault, not a half-streamed response.
    let ctx = state.ctx();
    if let Err(e) = desc
        .schedulers
        .iter()
        .try_for_each(|s| s.validate(&ctx.space))
    {
        Stats::bump(
            &state.stats.bad_requests,
            &joss_telemetry::catalog::SERVE_BAD_REQUESTS,
        );
        out.push_blocking(Seg::Owned(http::json_response_with(
            400,
            &reactor::error_json(&e),
            close_after,
            &[("X-Joss-Request-Id", &request_id)],
        )));
        out.finish_stream();
        return;
    }
    // Shard-aware resolution: a sharded description builds only the
    // workloads its spec range touches and streams records carrying global
    // spec indices.
    let (index_base, specs) = match desc.resolve_specs() {
        Ok(resolved) => resolved,
        Err(e) => {
            Stats::bump(
                &state.stats.bad_requests,
                &joss_telemetry::catalog::SERVE_BAD_REQUESTS,
            );
            out.push_blocking(Seg::Owned(http::json_response_with(
                400,
                &reactor::error_json(&e),
                close_after,
                &[("X-Joss-Request-Id", &request_id)],
            )));
            out.finish_stream();
            return;
        }
    };

    let records_header = run_count.to_string();
    let mut head = Vec::with_capacity(256);
    http::head_bytes(
        &mut head,
        200,
        &[
            ("Content-Type", "application/x-ndjson"),
            ("X-Joss-Spec-Hash", &hash),
            ("X-Joss-Cache", "miss"),
            ("X-Joss-Records", &records_header),
            ("X-Joss-Request-Id", &request_id),
            ("Transfer-Encoding", "chunked"),
        ],
        close_after,
    );
    // `aborted` means the connection died: stop producing output but keep
    // simulating — the completed body still becomes the cache entry.
    let mut aborted = !out.push_blocking(Seg::Owned(head));
    if !aborted {
        state.wake(key);
    }

    // Register live progress for `/stats` (the fleet's steal signal);
    // deregistered on every exit path, including panics, by the guard.
    let progress = Arc::new(ActiveCampaign {
        hash: hash.clone(),
        total: run_count,
        completed: AtomicUsize::new(0),
        store_spliced: AtomicUsize::new(0),
        started: Instant::now(),
    });
    state
        .active_campaigns
        .lock()
        .expect("active campaigns")
        .push(Arc::clone(&progress));
    let _progress_guard = ProgressGuard {
        state,
        entry: Arc::clone(&progress),
    };

    // Consult the content-addressed per-spec store: any of this range's
    // records deposited by an earlier campaign over the same base grid —
    // however its ranges were cut — are spliced in instead of
    // re-simulated. `stored[offset]` is the record line for global index
    // `index_base + offset`, when present.
    let base_canonical = desc.to_base_canonical_json();
    let stored: Vec<Option<std::sync::Arc<str>>> = state
        .store
        .snapshot_range(&base_canonical, index_base, index_base + run_count)
        .unwrap_or_else(|| vec![None; run_count]);
    let stored_hits = stored.iter().filter(|line| line.is_some()).count() as u64;
    progress
        .store_spliced
        .store(stored_hits as usize, Ordering::Relaxed);
    if stored_hits > 0 {
        state
            .stats
            .store_spec_hits
            .fetch_add(stored_hits, Ordering::Relaxed);
        joss_telemetry::catalog::SERVE_STORE_SPEC_HITS.add(stored_hits);
    }
    let mut missing_indices = Vec::with_capacity(run_count);
    let mut missing_specs = Vec::with_capacity(run_count);
    for (offset, spec) in specs.into_iter().enumerate() {
        if stored[offset].is_none() {
            missing_indices.push(index_base + offset);
            missing_specs.push(spec);
        }
    }

    // Records accumulate in `body`; `sent` marks the prefix already
    // chunk-framed into the queue. With the cache disabled
    // (`--cache-entries 0`) flushed bytes are dropped, keeping the
    // flat-memory streaming property. Sharded requests flush every record
    // (not every 16 KiB): shards are the fleet's unit of work, and the
    // coordinator's delivery frontier — its steal signal — is only as
    // fresh as our flushes. Whole-grid clients keep the batched framing.
    let caching = state.cache.enabled();
    let flush_threshold = if desc.shard.is_some() { 1 } else { 16 * 1024 };
    let mut body: Vec<u8> = Vec::with_capacity(if caching { run_count * 192 } else { 32 * 1024 });
    let mut sent = 0usize;
    let mut append_line = |line: &str| {
        body.extend_from_slice(line.as_bytes());
        body.push(b'\n');
        progress.completed.fetch_add(1, Ordering::Relaxed);
        if !aborted && body.len() - sent >= flush_threshold {
            let mut frame = Vec::with_capacity(body.len() - sent + 16);
            http::encode_chunk(&body[sent..], &mut frame);
            sent = body.len();
            if out.push_blocking(Seg::Owned(frame)) {
                state.wake(key);
            } else {
                aborted = true;
            }
        }
        if !caching && (aborted || sent == body.len()) {
            body.clear();
            sent = 0;
        }
    };
    // Fresh records stream back in ascending global-index order, so a
    // cursor over grid offsets interleaves stored lines exactly: every
    // offset below the next fresh record is a store hit by construction.
    let mut next_offset = 0usize;
    Campaign::with_threads(state.config.campaign_threads).run_streaming_at(
        ctx,
        &missing_indices,
        missing_specs,
        |record| {
            let offset = record.index - index_base;
            while next_offset < offset {
                let line = stored[next_offset]
                    .as_ref()
                    .expect("offset below a missing index is stored");
                append_line(line);
                next_offset += 1;
            }
            let json = record.to_json();
            state
                .store
                .insert_line(&base_canonical, record.index, &json);
            append_line(&json);
            next_offset += 1;
        },
    );
    for stored_line in &stored[next_offset..run_count] {
        let line = stored_line.as_ref().expect("trailing offsets are stored");
        append_line(line);
    }
    if !aborted {
        let mut tail = Vec::with_capacity(body.len() - sent + 16);
        http::encode_chunk(&body[sent..], &mut tail);
        tail.extend_from_slice(http::CHUNK_TERMINATOR);
        out.push_blocking(Seg::Owned(tail));
    }
    Stats::bump(
        &state.stats.campaigns_executed,
        &joss_telemetry::catalog::SERVE_CAMPAIGNS_EXECUTED,
    );
    state
        .stats
        .records_streamed
        .fetch_add(run_count as u64, Ordering::Relaxed);
    joss_telemetry::catalog::SERVE_RECORDS_STREAMED.add(run_count as u64);
    if caching {
        state.cache.insert(canonical.clone(), CachedBody::new(body));
        state.cache.memo_raw(raw_body, canonical, &hash);
    }
    joss_telemetry::catalog::SERVE_MISS_SECONDS.record_duration(span.elapsed());
    out.finish_stream();
}
