//! The daemon: TCP acceptor + worker thread pool, request routing, and the
//! campaign-streaming handler.
//!
//! Architecture (threads + blocking I/O by design — the vendored
//! dependency set has no async runtime):
//!
//! ```text
//! acceptor ──► connection queue ──► N HTTP workers
//!                                        │ parse GridDesc, cache lookup,
//!                                        │ admission check
//!                                        ▼
//!                      Campaign::run_streaming (sweep pool fan-out,
//!                      shared lazily-trained ExperimentContext)
//!                                        │ records in spec order
//!                                        ▼
//!                      socket (JSONL) + in-memory copy → results cache
//! ```
//!
//! One exchange per connection (`Connection: close` delimits streamed
//! bodies). The expensive per-process state is shared: **one**
//! [`ExperimentContext`] trained on first use serves every connection, and
//! finished campaign bodies land in the [`ResultsCache`] keyed by the
//! grid's canonical JSON, so a repeated query never re-simulates.

use crate::admission::Admission;
use crate::cache::ResultsCache;
use crate::http::{self, RequestError};
use joss_sweep::{Campaign, ExperimentContext, GridDesc};
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Daemon configuration; [`ServeConfig::default`] matches the CLI defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// HTTP worker threads. Keep this above `max_inflight` so health and
    /// cache-hit traffic stays responsive while campaigns stream.
    pub workers: usize,
    /// Concurrent in-flight campaigns admitted before 503s (see
    /// [`Admission`]).
    pub max_inflight: usize,
    /// Results-cache capacity in campaign bodies (0 disables).
    pub cache_entries: usize,
    /// Worker threads per admitted campaign (the sweep pool's fan-out).
    pub campaign_threads: usize,
    /// Largest accepted grid, in specs.
    pub max_specs: usize,
    /// Largest accepted request body, bytes.
    pub max_body: usize,
    /// Training seed for the shared context (must match an offline run for
    /// byte-identical records).
    pub train_seed: u64,
    /// Profiling repetitions for the one-time characterization.
    pub reps: u32,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7077".into(),
            workers: 8,
            max_inflight: 2,
            cache_entries: 64,
            campaign_threads: joss_sweep::default_threads(),
            max_specs: 4096,
            max_body: 64 * 1024,
            train_seed: 42,
            reps: 3,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Monotonic service counters, exposed at `GET /stats`.
#[derive(Debug, Default)]
pub struct Stats {
    /// Requests whose head parsed (any method/path).
    pub requests: AtomicU64,
    /// Campaigns actually simulated (== cache misses that were admitted).
    pub campaigns_executed: AtomicU64,
    /// Campaign requests served straight from the results cache.
    pub cache_hits: AtomicU64,
    /// Campaign requests shed with 503.
    pub rejected_503: AtomicU64,
    /// Requests answered 4xx.
    pub bad_requests: AtomicU64,
    /// Records streamed by executed campaigns.
    pub records_streamed: AtomicU64,
    /// Connections dropped on transport errors.
    pub io_errors: AtomicU64,
    /// Handler panics contained by the worker pool (each one is a bug —
    /// the count is surfaced so it cannot hide).
    pub handler_panics: AtomicU64,
}

impl Stats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Shared per-process serving state.
struct State {
    config: ServeConfig,
    cache: ResultsCache,
    admission: Admission,
    ctx: OnceLock<ExperimentContext>,
    stats: Stats,
    shutdown: AtomicBool,
    queue: ConnQueue,
}

impl State {
    /// The shared experiment context, trained on first use (the paper's
    /// install-time characterization). Concurrent first requests block
    /// here until the one training finishes, then all share it.
    fn ctx(&self) -> &ExperimentContext {
        self.ctx
            .get_or_init(|| ExperimentContext::with_reps(self.config.train_seed, self.config.reps))
    }

    fn stats_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"campaigns_executed\":{},\"cache_hits\":{},\
             \"rejected_503\":{},\"bad_requests\":{},\"records_streamed\":{},\
             \"io_errors\":{},\"handler_panics\":{},\"cached_grids\":{},\"trained\":{},\
             \"max_inflight\":{},\"available_permits\":{},\"train_seed\":{},\"reps\":{},\
             \"schema\":{}}}",
            Stats::get(&self.stats.requests),
            Stats::get(&self.stats.campaigns_executed),
            Stats::get(&self.stats.cache_hits),
            Stats::get(&self.stats.rejected_503),
            Stats::get(&self.stats.bad_requests),
            Stats::get(&self.stats.records_streamed),
            Stats::get(&self.stats.io_errors),
            Stats::get(&self.stats.handler_panics),
            self.cache.len(),
            self.ctx.get().is_some(),
            self.admission.limit(),
            self.admission.available(),
            self.config.train_seed,
            self.config.reps,
            joss_sweep::json::quote(joss_sweep::RECORD_SCHEMA),
        )
    }
}

/// Blocking MPMC connection queue feeding the worker pool.
#[derive(Default)]
struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl ConnQueue {
    fn push(&self, conn: TcpStream) {
        self.queue.lock().expect("conn queue").push_back(conn);
        self.ready.notify_one();
    }

    /// Next connection, or `None` once shutdown is flagged.
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut queue = self.queue.lock().expect("conn queue");
        loop {
            if let Some(conn) = queue.pop_front() {
                return Some(conn);
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            let (next, _) = self
                .ready
                .wait_timeout(queue, Duration::from_millis(100))
                .expect("conn queue");
            queue = next;
        }
    }
}

/// A bound daemon, ready to [`Server::run`] or [`Server::spawn`].
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Bind the listener (does not accept yet, and does not train).
    pub fn bind(config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let state = Arc::new(State {
            cache: ResultsCache::new(config.cache_entries),
            admission: Admission::new(config.max_inflight),
            ctx: OnceLock::new(),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            queue: ConnQueue::default(),
            config,
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Train the shared context now instead of on the first campaign
    /// (`joss_serve --train-eager`): connections accepted after this
    /// returns never pay the characterization latency.
    pub fn train(&self) {
        let _ = self.state.ctx();
    }

    /// Serve until [`ServerHandle::stop`] (or a listener error). Blocks the
    /// calling thread; use [`Server::spawn`] for an owned background
    /// daemon.
    pub fn run(self) -> io::Result<()> {
        let workers = self.state.config.workers.max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let state = Arc::clone(&self.state);
                scope.spawn(move || {
                    while let Some(conn) = state.queue.pop(&state.shutdown) {
                        // Contain handler panics: a daemon must not lose a
                        // worker (and eventually its whole pool) to one bad
                        // request. The connection just drops; the client
                        // sees a reset, the counter sees a bug.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                handle_connection(conn, &state)
                            }));
                        if outcome.is_err() {
                            Stats::bump(&state.stats.handler_panics);
                        }
                    }
                });
            }
            for conn in self.listener.incoming() {
                if self.state.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match conn {
                    Ok(stream) => self.state.queue.push(stream),
                    Err(_) => Stats::bump(&self.state.stats.io_errors),
                }
            }
            // Unblock any waiting workers.
            self.state.shutdown.store(true, Ordering::Release);
            self.state.queue.ready.notify_all();
        });
        Ok(())
    }

    /// Run on a background thread, returning a stop/join handle.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let state = Arc::clone(&self.state);
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            state,
            thread,
        })
    }
}

/// Handle to a daemon running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flag shutdown, unblock the acceptor, and join. In-flight campaign
    /// streams finish; queued-but-unserved connections are dropped.
    pub fn stop(self) -> io::Result<()> {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.queue.ready.notify_all();
        // The acceptor is parked in accept(); poke it with a connection.
        let _ = TcpStream::connect(self.addr);
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(io::Error::other("server thread panicked")),
        }
    }
}

/// Serve one connection: read one request, route it, respond, close.
fn handle_connection(conn: TcpStream, state: &State) {
    let _ = conn.set_read_timeout(Some(state.config.read_timeout));
    let _ = conn.set_nodelay(true);
    let reader_half = match conn.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            Stats::bump(&state.stats.io_errors);
            return;
        }
    };
    let mut reader = BufReader::new(reader_half);
    let mut writer = BufWriter::new(conn);

    let request = match http::read_request(&mut reader, state.config.max_body) {
        Ok(req) => req,
        Err(RequestError::Io(_)) => {
            Stats::bump(&state.stats.io_errors);
            return;
        }
        Err(err) => {
            Stats::bump(&state.stats.bad_requests);
            let (status, msg) = match err {
                RequestError::Malformed(m) => (400, m),
                RequestError::LengthRequired => (411, "Content-Length required".into()),
                RequestError::BodyTooLarge { limit } => {
                    (413, format!("body exceeds {limit} bytes"))
                }
                RequestError::Io(_) => unreachable!("handled above"),
            };
            let _ = http::write_json(&mut writer, status, &error_json(&msg));
            return;
        }
    };

    Stats::bump(&state.stats.requests);
    let outcome = match (request.method.as_str(), request.path.as_str()) {
        // Besides liveness, /healthz carries everything a fleet
        // coordinator needs to decide whether this backend's records can
        // be merged with another's: the training parameters (records are
        // byte-identical only across equal train seed/reps), the record
        // wire schema, and the build version.
        ("GET", "/healthz") => http::write_json(
            &mut writer,
            200,
            &format!(
                "{{\"status\":\"ok\",\"trained\":{},\"train_seed\":{},\"reps\":{},\
                 \"schema\":{},\"version\":{}}}",
                state.ctx.get().is_some(),
                state.config.train_seed,
                state.config.reps,
                joss_sweep::json::quote(joss_sweep::RECORD_SCHEMA),
                joss_sweep::json::quote(env!("CARGO_PKG_VERSION")),
            ),
        ),
        ("GET", "/stats") => http::write_json(&mut writer, 200, &state.stats_json()),
        ("POST", "/v1/campaign") => handle_campaign(&mut writer, &request.body, state),
        (_, "/v1/campaign") | (_, "/healthz") | (_, "/stats") => {
            Stats::bump(&state.stats.bad_requests);
            http::write_json(&mut writer, 405, &error_json("method not allowed"))
        }
        _ => {
            Stats::bump(&state.stats.bad_requests);
            http::write_json(&mut writer, 404, &error_json("no such endpoint"))
        }
    };
    if outcome.is_err() {
        Stats::bump(&state.stats.io_errors);
    }
}

/// The campaign endpoint: parse → cache → admission → simulate + stream.
fn handle_campaign(
    writer: &mut BufWriter<TcpStream>,
    body: &[u8],
    state: &State,
) -> io::Result<()> {
    let bad = |writer: &mut BufWriter<TcpStream>, state: &State, msg: &str| {
        Stats::bump(&state.stats.bad_requests);
        http::write_json(writer, 400, &error_json(msg))
    };

    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return bad(writer, state, "request body must be UTF-8 JSON"),
    };
    let desc = match GridDesc::from_json(text) {
        Ok(d) => d,
        Err(e) => return bad(writer, state, &e),
    };
    // Everything up to the admission gate works on the description alone:
    // resolving a grid instantiates the whole benchmark suite at the
    // requested scale, which is exactly the work the cache and the
    // semaphore exist to bound, so it must not happen for hits, sheds, or
    // oversized requests. The spec cap gates the work this request *runs*
    // (the shard's slice, not the grid it is cut from) — sharding is how a
    // fleet feeds a grid larger than any single daemon's limit through
    // many daemons.
    let run_count = desc.run_count();
    if run_count > state.config.max_specs {
        return bad(
            writer,
            state,
            &format!(
                "request runs {run_count} specs, above this daemon's limit of {}",
                state.config.max_specs
            ),
        );
    }

    let canonical = desc.to_canonical_json();
    let hash = format!("{:016x}", desc.spec_hash());
    let records_header = run_count.to_string();

    // Cache: repeated identical grids stream from memory, no permit needed.
    if let Some(cached) = state.cache.get(&canonical) {
        Stats::bump(&state.stats.cache_hits);
        http::write_head(
            writer,
            200,
            &[
                ("Content-Type", "application/x-ndjson"),
                ("X-Joss-Spec-Hash", &hash),
                ("X-Joss-Cache", "hit"),
                ("X-Joss-Records", &records_header),
            ],
        )?;
        writer.write_all(&cached)?;
        return writer.flush();
    }

    // Admission: shed load instead of oversubscribing the simulation pool.
    let permit = match state.admission.try_acquire() {
        Some(p) => p,
        None => {
            Stats::bump(&state.stats.rejected_503);
            let json = error_json("simulation pool saturated; retry shortly");
            let len = json.len().to_string();
            http::write_head(
                writer,
                503,
                &[
                    ("Content-Type", "application/json"),
                    ("Content-Length", &len),
                    ("Retry-After", "1"),
                ],
            )?;
            writer.write_all(json.as_bytes())?;
            return writer.flush();
        }
    };

    // Train-once (first admitted campaign pays it), then validate against
    // the serving platform and resolve. Both must precede the 200 head:
    // an out-of-range `fixed:` knob index or unknown workload label is a
    // client fault, not a half-streamed response.
    let ctx = state.ctx();
    if let Err(e) = desc
        .schedulers
        .iter()
        .try_for_each(|s| s.validate(&ctx.space))
    {
        drop(permit);
        return bad(writer, state, &e);
    }
    // Shard-aware resolution: a sharded description builds only the
    // workloads its spec range touches and streams records carrying
    // global spec indices.
    let (index_base, specs) = match desc.resolve_specs() {
        Ok(resolved) => resolved,
        Err(e) => {
            drop(permit);
            return bad(writer, state, &e);
        }
    };
    http::write_head(
        writer,
        200,
        &[
            ("Content-Type", "application/x-ndjson"),
            ("X-Joss-Spec-Hash", &hash),
            ("X-Joss-Cache", "miss"),
            ("X-Joss-Records", &records_header),
        ],
    )?;

    // Stream each record to the socket as it flushes out of the reorder
    // window AND (when caching is on) into the in-memory copy that becomes
    // the cache entry. A client that disconnects mid-stream stops socket
    // writes only — the campaign still completes and its full body is
    // still cached. With the cache disabled (`--cache-entries 0`) records
    // go straight to the socket through a reused line buffer, keeping the
    // flat-memory streaming property.
    let caching = state.cache.enabled();
    let mut cache_body: Vec<u8> = Vec::with_capacity(if caching { run_count * 192 } else { 0 });
    let mut socket_err: Option<io::Error> = None;
    Campaign::with_threads(state.config.campaign_threads).run_streaming_indexed(
        ctx,
        index_base,
        specs,
        |record| {
            let line_start = cache_body.len();
            cache_body.extend_from_slice(record.to_json().as_bytes());
            cache_body.push(b'\n');
            if socket_err.is_none() {
                if let Err(e) = writer.write_all(&cache_body[line_start..]) {
                    socket_err = Some(e);
                }
            }
            if !caching {
                cache_body.clear();
            }
        },
    );
    Stats::bump(&state.stats.campaigns_executed);
    state
        .stats
        .records_streamed
        .fetch_add(run_count as u64, Ordering::Relaxed);
    if caching {
        state.cache.insert(canonical, Arc::new(cache_body));
    }
    drop(permit);
    match socket_err {
        Some(e) => Err(e),
        None => writer.flush(),
    }
}

fn error_json(msg: &str) -> String {
    format!("{{\"error\":{}}}", joss_sweep::json::quote(msg))
}
