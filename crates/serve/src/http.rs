//! Minimal hand-rolled HTTP/1.1 plumbing shared by the server and client.
//!
//! The vendored dependency set has no HTTP stack (and no async runtime), so
//! this is the small, strict subset the wire protocol needs. Since the
//! nonblocking rewrite the connection is persistent by default: requests
//! are parsed incrementally out of a connection buffer ([`parse_request`]),
//! responses are either length-delimited (`Content-Length`) or chunked
//! (`Transfer-Encoding: chunked` for streamed campaign bodies), and
//! `Connection: close` — from either side — still tears the connection
//! down after the exchange. Header names are case-insensitive (stored
//! lowercase); size limits guard every unbounded read.

use std::io::{self, BufRead, Read, Write};

/// Longest accepted request/status/header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted on one message.
const MAX_HEADERS: usize = 64;
/// Cap on a whole request head (request line + headers + separators).
const MAX_HEAD: usize = 32 * 1024;

/// A parsed request head plus body.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path only; no normalization).
    pub path: String,
    /// `true` for HTTP/1.1 and later 1.x; `false` for HTTP/1.0.
    pub http11: bool,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Whether the connection should stay open after this exchange:
    /// HTTP/1.1 defaults to keep-alive unless the request says
    /// `Connection: close`; HTTP/1.0 defaults to close.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => !connection_says_close(v) && self.http11,
            None => self.http11,
        }
    }
}

fn connection_says_close(value: &str) -> bool {
    value
        .split(',')
        .any(|tok| tok.trim().eq_ignore_ascii_case("close"))
}

/// A parsed response, as the client sees it.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Full body (length-delimited, chunk-decoded, or read to close).
    pub body: Vec<u8>,
}

impl Response {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Body as UTF-8 (lossy — diagnostics only).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    let name = name.to_ascii_lowercase();
    headers
        .iter()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v.as_str())
}

/// Whether a header set declares a chunked body.
pub fn is_chunked(headers: &[(String, String)]) -> bool {
    header_lookup(headers, "transfer-encoding")
        .map(|v| {
            v.split(',')
                .any(|t| t.trim().eq_ignore_ascii_case("chunked"))
        })
        .unwrap_or(false)
}

/// Why a request could not be served; maps directly onto a status code.
#[derive(Debug)]
pub enum RequestError {
    /// Transport failed (including timeouts); no response possible.
    Io(io::Error),
    /// Malformed request head or body framing → 400.
    Malformed(String),
    /// Body present without `Content-Length` → 411.
    LengthRequired,
    /// Declared body exceeds the server's limit → 413.
    BodyTooLarge { limit: usize },
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Incremental request parsing (server side)
// ---------------------------------------------------------------------------

/// Try to parse one complete request from the front of `buf` (a
/// connection's receive buffer, which under pipelining may hold several
/// requests and/or a partial tail).
///
/// * `Ok(Some((request, consumed)))` — a full request occupied
///   `buf[..consumed]`; the caller advances past it and may parse again.
/// * `Ok(None)` — the bytes so far are a valid *prefix*; read more.
/// * `Err(_)` — the connection is unrecoverable at this framing position;
///   the caller answers with the mapped status (400/411/413) and closes.
///
/// EOF handling lives in the caller: a closed connection with a non-empty
/// unparsed prefix is a truncated request, never a complete one.
pub fn parse_request(
    buf: &[u8],
    max_body: usize,
) -> Result<Option<(Request, usize)>, RequestError> {
    // Find the blank line ending the head, collecting line boundaries.
    let mut lines: Vec<(usize, usize)> = Vec::new();
    let mut line_start = 0usize;
    let mut head_end = None;
    for (i, &b) in buf.iter().enumerate() {
        if i >= MAX_HEAD {
            return Err(RequestError::Malformed("request head too large".into()));
        }
        if b != b'\n' {
            continue;
        }
        let mut end = i;
        if end > line_start && buf[end - 1] == b'\r' {
            end -= 1;
        }
        if end == line_start {
            if lines.is_empty() {
                return Err(RequestError::Malformed("empty request line".into()));
            }
            head_end = Some(i + 1);
            break;
        }
        if end - line_start > MAX_LINE {
            return Err(RequestError::Malformed("header line too long".into()));
        }
        if lines.len() > MAX_HEADERS {
            return Err(RequestError::Malformed("too many headers".into()));
        }
        lines.push((line_start, end));
        line_start = i + 1;
    }
    let Some(head_end) = head_end else {
        if buf.len() > MAX_HEAD {
            return Err(RequestError::Malformed("request head too large".into()));
        }
        if buf.len() - line_start > MAX_LINE {
            return Err(RequestError::Malformed("header line too long".into()));
        }
        return Ok(None);
    };

    let line_text = |range: (usize, usize)| -> Result<&str, RequestError> {
        std::str::from_utf8(&buf[range.0..range.1])
            .map_err(|_| RequestError::Malformed("non-UTF-8 header line".into()))
    };

    let request_line = line_text(lines[0])?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let http11 = version != "HTTP/1.0";

    let mut headers = Vec::with_capacity(lines.len() - 1);
    for &range in &lines[1..] {
        let line = line_text(range)?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let body_len = match header_lookup(&headers, "content-length") {
        None => {
            if method == "POST" || method == "PUT" {
                return Err(RequestError::LengthRequired);
            }
            0
        }
        Some(text) => {
            let len: usize = text
                .parse()
                .map_err(|_| RequestError::Malformed("bad Content-Length".into()))?;
            if len > max_body {
                return Err(RequestError::BodyTooLarge { limit: max_body });
            }
            len
        }
    };
    if buf.len() < head_end + body_len {
        return Ok(None);
    }
    Ok(Some((
        Request {
            method,
            path,
            http11,
            headers,
            body: buf[head_end..head_end + body_len].to_vec(),
        },
        head_end + body_len,
    )))
}

// ---------------------------------------------------------------------------
// Response head construction (server side)
// ---------------------------------------------------------------------------

/// Standard reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Append a response head (status line + headers + blank line) to `out`.
/// `Connection: close` is added only when `close` — keep-alive is the
/// HTTP/1.1 default and is signalled by its absence.
pub fn head_bytes(out: &mut Vec<u8>, status: u16, headers: &[(&str, &str)], close: bool) {
    let _ = write!(out, "HTTP/1.1 {} {}\r\n", status, reason(status));
    for (name, value) in headers {
        let _ = write!(out, "{name}: {value}\r\n");
    }
    if close {
        out.extend_from_slice(b"Connection: close\r\n");
    }
    out.extend_from_slice(b"\r\n");
}

/// A complete length-delimited JSON response as wire bytes.
pub fn json_response_bytes(status: u16, json_body: &str, close: bool) -> Vec<u8> {
    json_response_with(status, json_body, close, &[])
}

/// [`json_response_bytes`] with extra response headers (e.g. the
/// `X-Joss-Request-Id` echoed on every response, `Retry-After` on sheds).
pub fn json_response_with(
    status: u16,
    json_body: &str,
    close: bool,
    extra: &[(&str, &str)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(160 + json_body.len());
    let len = json_body.len().to_string();
    let mut headers: Vec<(&str, &str)> = Vec::with_capacity(2 + extra.len());
    headers.push(("Content-Type", "application/json"));
    headers.push(("Content-Length", &len));
    headers.extend_from_slice(extra);
    head_bytes(&mut out, status, &headers, close);
    out.extend_from_slice(json_body.as_bytes());
    out
}

// ---------------------------------------------------------------------------
// Chunked transfer encoding
// ---------------------------------------------------------------------------

/// The zero-length chunk that terminates a chunked body.
pub const CHUNK_TERMINATOR: &[u8] = b"0\r\n\r\n";

/// Append one non-empty data chunk (`<hex len>\r\n<data>\r\n`) to `out`.
/// Empty input appends nothing: a zero-length chunk would terminate the
/// body ([`CHUNK_TERMINATOR`] does that explicitly).
pub fn encode_chunk(data: &[u8], out: &mut Vec<u8>) {
    if data.is_empty() {
        return;
    }
    let _ = write!(out, "{:x}\r\n", data.len());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

fn chunk_frame_error(e: RequestError) -> io::Error {
    match e {
        // Any EOF inside the chunk framing is a truncated body: the
        // terminating zero chunk was never seen.
        RequestError::Io(err) if err.kind() == io::ErrorKind::UnexpectedEof => {
            io::Error::new(io::ErrorKind::UnexpectedEof, "chunked body truncated")
        }
        RequestError::Io(err) => err,
        RequestError::Malformed(why) => {
            if why.contains("truncated") {
                io::Error::new(io::ErrorKind::UnexpectedEof, "chunked body truncated")
            } else {
                io::Error::new(io::ErrorKind::InvalidData, why)
            }
        }
        _ => io::Error::new(io::ErrorKind::InvalidData, "bad chunked framing"),
    }
}

/// Decode a chunked body from `inner`, which must be positioned at the
/// first chunk-size line. Reads *exactly* the chunked message — never past
/// the terminating zero chunk — so the underlying connection stays aligned
/// for the next response. A connection that closes before the terminator
/// yields `UnexpectedEof`: truncated chunked bodies are rejected, never
/// silently accepted as complete (the close-delimited failure mode this
/// encoding exists to fix).
pub struct ChunkedReader<'a, R: BufRead> {
    inner: &'a mut R,
    remaining: usize,
    first: bool,
    done: bool,
}

impl<'a, R: BufRead> ChunkedReader<'a, R> {
    pub fn new(inner: &'a mut R) -> Self {
        ChunkedReader {
            inner,
            remaining: 0,
            first: true,
            done: false,
        }
    }
}

impl<R: BufRead> Read for ChunkedReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.done || buf.is_empty() {
            return Ok(0);
        }
        while self.remaining == 0 {
            if !self.first {
                let sep = read_line(self.inner).map_err(chunk_frame_error)?;
                if !sep.is_empty() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "missing CRLF after chunk data",
                    ));
                }
            }
            self.first = false;
            let line = read_line(self.inner).map_err(chunk_frame_error)?;
            let size_text = line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_text, 16)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size line"))?;
            if size == 0 {
                // Consume (and discard) any trailers up to the blank line.
                loop {
                    let trailer = read_line(self.inner).map_err(chunk_frame_error)?;
                    if trailer.is_empty() {
                        break;
                    }
                }
                self.done = true;
                return Ok(0);
            }
            self.remaining = size;
        }
        let want = buf.len().min(self.remaining);
        let n = self.inner.read(&mut buf[..want])?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "chunked body truncated mid-chunk",
            ));
        }
        self.remaining -= n;
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Blocking reads (client side)
// ---------------------------------------------------------------------------

/// Read one CRLF (or bare-LF) terminated line, capped at [`MAX_LINE`].
///
/// EOF is **not** a line terminator: a head truncated by a dropped
/// connection must never parse as a complete message. EOF with nothing
/// buffered is a clean close between lines (an I/O condition); EOF
/// mid-line is a malformed, truncated head.
fn read_line(r: &mut impl BufRead) -> Result<String, RequestError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                return Err(if buf.is_empty() {
                    RequestError::Io(io::Error::from(io::ErrorKind::UnexpectedEof))
                } else {
                    RequestError::Malformed("message truncated mid-line".into())
                });
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(RequestError::Malformed("header line too long".into()));
                }
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| RequestError::Malformed("non-UTF-8 header line".into()))
}

/// Parse `Name: value` header lines until the blank separator line.
fn read_headers(r: &mut impl BufRead) -> Result<Vec<(String, String)>, RequestError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

/// Read a response head only: status line plus headers, leaving the body
/// unread on the stream — the entry point for clients that consume a
/// streamed body incrementally (the fleet coordinator's line merge)
/// instead of buffering it whole.
pub fn read_response_head(
    r: &mut impl BufRead,
) -> Result<(u16, Vec<(String, String)>), RequestError> {
    let line = read_line(r)?;
    let mut parts = line.split_whitespace();
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty status line".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| RequestError::Malformed("missing status code".into()))?;
    let headers = read_headers(r)?;
    Ok((status, headers))
}

/// Read one response: status line, headers, then the body — chunk-decoded
/// if `Transfer-Encoding: chunked`, else to `Content-Length` if present,
/// else to connection close (the legacy delimiter).
pub fn read_response(r: &mut impl BufRead) -> Result<Response, RequestError> {
    let (status, headers) = read_response_head(r)?;
    let mut body = Vec::new();
    if is_chunked(&headers) {
        ChunkedReader::new(r).read_to_end(&mut body)?;
    } else {
        match header_lookup(&headers, "content-length") {
            Some(text) => {
                let len: usize = text
                    .parse()
                    .map_err(|_| RequestError::Malformed("bad Content-Length".into()))?;
                body.resize(len, 0);
                r.read_exact(&mut body)
                    .map_err(|_| RequestError::Malformed("short response body".into()))?;
            }
            None => {
                r.read_to_end(&mut body)?;
            }
        }
    }
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse_one(raw: &[u8], max_body: usize) -> Result<Option<(Request, usize)>, RequestError> {
        parse_request(raw, max_body)
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/campaign HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let (req, used) = parse_one(raw, 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/campaign");
        assert!(req.http11);
        assert!(req.keep_alive());
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"body");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let raw = b"GET /healthz HTTP/1.1\nHost: x\n\n";
        let (req, used) = parse_one(raw, 1024).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert_eq!(used, raw.len());
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (req, _) = parse_one(raw, 1024).unwrap().unwrap();
        assert!(!req.keep_alive());
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        let (req, _) = parse_one(raw, 1024).unwrap().unwrap();
        assert!(!req.http11);
        assert!(!req.keep_alive());
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let first = b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nab".to_vec();
        let mut wire = first.clone();
        wire.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        let (req, used) = parse_one(&wire, 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"ab");
        assert_eq!(used, first.len());
        let (req2, used2) = parse_one(&wire[used..], 1024).unwrap().unwrap();
        assert_eq!(req2.method, "GET");
        assert_eq!(used + used2, wire.len());
    }

    #[test]
    fn partial_requests_are_incomplete_not_errors() {
        let raw = b"POST /v1/campaign HTTP/1.1\r\nContent-Length: 10\r\n\r\nhalf";
        for cut in [0, 4, 20, raw.len() - 1] {
            assert!(
                parse_one(&raw[..cut], 1024).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        assert!(parse_one(&raw[..raw.len()], 1024).unwrap().is_none());
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        assert!(parse_one(raw, 1024).unwrap().is_some());
    }

    #[test]
    fn post_without_length_is_411_and_oversize_is_413() {
        let raw = b"POST / HTTP/1.1\r\n\r\n";
        assert!(matches!(
            parse_one(raw, 1024),
            Err(RequestError::LengthRequired)
        ));
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789";
        assert!(matches!(
            parse_one(raw, 4),
            Err(RequestError::BodyTooLarge { limit: 4 })
        ));
    }

    #[test]
    fn malformed_heads_are_rejected() {
        for raw in [
            &b"\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / SPDY/3\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"[..],
        ] {
            assert!(parse_one(raw, 1024).is_err(), "must reject {raw:?}");
        }
    }

    #[test]
    fn runaway_heads_are_rejected_before_completion() {
        // A single line longer than the cap fails even with no newline yet.
        let raw = vec![b'A'; MAX_LINE + 2];
        assert!(parse_one(&raw, 1024).is_err());
        // An endless header stream fails at the head cap.
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        while raw.len() <= MAX_HEAD {
            raw.extend_from_slice(b"X-Filler: some padding value\r\n");
        }
        assert!(parse_one(&raw, 1024).is_err());
    }

    #[test]
    fn chunked_bodies_round_trip() {
        let mut wire = Vec::new();
        encode_chunk(b"{\"index\":0}\n", &mut wire);
        encode_chunk(b"", &mut wire); // no-op, not a terminator
        encode_chunk(b"{\"index\":1}\n{\"index\":2}\n", &mut wire);
        wire.extend_from_slice(CHUNK_TERMINATOR);

        let mut cursor = Cursor::new(&wire[..]);
        let mut decoded = Vec::new();
        ChunkedReader::new(&mut cursor)
            .read_to_end(&mut decoded)
            .unwrap();
        assert_eq!(
            decoded,
            b"{\"index\":0}\n{\"index\":1}\n{\"index\":2}\n".to_vec()
        );
        // Exactly the message was consumed — nothing past the terminator.
        assert_eq!(cursor.position() as usize, wire.len());
    }

    #[test]
    fn truncated_chunked_bodies_are_rejected() {
        let mut wire = Vec::new();
        encode_chunk(b"{\"index\":0}\n", &mut wire);
        encode_chunk(b"{\"index\":1}\n", &mut wire);
        wire.extend_from_slice(CHUNK_TERMINATOR);
        // Cut the stream at every prefix short of the full message: none
        // may decode cleanly (missing terminator == truncated).
        for cut in 0..wire.len() {
            let mut cursor = Cursor::new(&wire[..cut]);
            let mut decoded = Vec::new();
            let err = ChunkedReader::new(&mut cursor)
                .read_to_end(&mut decoded)
                .unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "cut at {cut} must be UnexpectedEof, got {err:?}"
            );
        }
    }

    #[test]
    fn garbage_chunk_sizes_are_invalid_data() {
        let wire = b"zzz\r\ndata\r\n0\r\n\r\n";
        let mut cursor = Cursor::new(&wire[..]);
        let mut decoded = Vec::new();
        let err = ChunkedReader::new(&mut cursor)
            .read_to_end(&mut decoded)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn response_round_trips_all_three_framings() {
        // Length-delimited.
        let wire = json_response_bytes(400, "{\"error\":\"x\"}", false);
        let resp = read_response(&mut Cursor::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body_text(), "{\"error\":\"x\"}");
        assert_eq!(resp.header("connection"), None);

        // Chunked: two responses back to back on one connection — the
        // first decode must stop exactly at its terminator.
        let mut wire = Vec::new();
        head_bytes(
            &mut wire,
            200,
            &[
                ("Content-Type", "application/x-ndjson"),
                ("Transfer-Encoding", "chunked"),
            ],
            false,
        );
        encode_chunk(b"{\"index\":0}\n{\"index\":1}\n", &mut wire);
        wire.extend_from_slice(CHUNK_TERMINATOR);
        let second = json_response_bytes(200, "{\"status\":\"ok\"}", false);
        wire.extend_from_slice(&second);

        let mut cursor = Cursor::new(&wire[..]);
        let resp = read_response(&mut cursor).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_text().lines().count(), 2);
        let resp2 = read_response(&mut cursor).unwrap();
        assert_eq!(resp2.body_text(), "{\"status\":\"ok\"}");

        // Legacy close-delimited: no length, no chunking, EOF ends it.
        let mut wire = Vec::new();
        head_bytes(
            &mut wire,
            200,
            &[("Content-Type", "application/x-ndjson")],
            true,
        );
        wire.extend_from_slice(b"{\"index\":0}\n{\"index\":1}\n");
        let resp = read_response(&mut Cursor::new(&wire[..])).unwrap();
        assert_eq!(resp.header("connection"), Some("close"));
        assert_eq!(resp.body_text().lines().count(), 2);
    }
}
