//! Minimal hand-rolled HTTP/1.1 plumbing shared by the server and client.
//!
//! The vendored dependency set has no HTTP stack (and no async runtime), so
//! this is the small, strict subset the wire protocol needs: one request
//! per connection, explicit `Content-Length` on requests, and responses
//! either length-delimited or streamed until close (`Connection: close`).
//! Header names are case-insensitive (stored lowercase); size limits guard
//! every unbounded read.

use std::io::{self, BufRead, Write};

/// Longest accepted request/status/header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted on one message.
const MAX_HEADERS: usize = 64;

/// A parsed request head plus body.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path only; no normalization).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }
}

/// A parsed response, as the client sees it.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Full body (read to `Content-Length`, or to connection close).
    pub body: Vec<u8>,
}

impl Response {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Body as UTF-8 (lossy — diagnostics only).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn header_lookup<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    let name = name.to_ascii_lowercase();
    headers
        .iter()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| v.as_str())
}

/// Why a request could not be served; maps directly onto a status code.
#[derive(Debug)]
pub enum RequestError {
    /// Transport failed (including timeouts); no response possible.
    Io(io::Error),
    /// Malformed request head or body framing → 400.
    Malformed(String),
    /// Body present without `Content-Length` → 411.
    LengthRequired,
    /// Declared body exceeds the server's limit → 413.
    BodyTooLarge { limit: usize },
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Read one CRLF (or bare-LF) terminated line, capped at [`MAX_LINE`].
///
/// EOF is **not** a line terminator: a head truncated by a dropped
/// connection must never parse as a complete request. EOF with nothing
/// buffered is a clean close between lines (an I/O condition); EOF
/// mid-line is a malformed, truncated head.
fn read_line(r: &mut impl BufRead) -> Result<String, RequestError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => {
                return Err(if buf.is_empty() {
                    RequestError::Io(io::Error::from(io::ErrorKind::UnexpectedEof))
                } else {
                    RequestError::Malformed("message truncated mid-line".into())
                });
            }
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(RequestError::Malformed("header line too long".into()));
                }
            }
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| RequestError::Malformed("non-UTF-8 header line".into()))
}

/// Parse `Name: value` header lines until the blank separator line.
fn read_headers(r: &mut impl BufRead) -> Result<Vec<(String, String)>, RequestError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            return Ok(headers);
        }
        if headers.len() >= MAX_HEADERS {
            return Err(RequestError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::Malformed(format!("malformed header {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

/// Read and frame one request. `max_body` caps the accepted
/// `Content-Length`; bodies require an explicit length (no chunked
/// requests — the protocol's requests are small JSON documents).
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> Result<Request, RequestError> {
    let line = read_line(r)?;
    if line.is_empty() {
        return Err(RequestError::Malformed("empty request line".into()));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing request target".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let headers = read_headers(r)?;

    let body = match header_lookup(&headers, "content-length") {
        None => {
            if method == "POST" || method == "PUT" {
                return Err(RequestError::LengthRequired);
            }
            Vec::new()
        }
        Some(text) => {
            let len: usize = text
                .parse()
                .map_err(|_| RequestError::Malformed("bad Content-Length".into()))?;
            if len > max_body {
                return Err(RequestError::BodyTooLarge { limit: max_body });
            }
            let mut body = vec![0u8; len];
            r.read_exact(&mut body)
                .map_err(|_| RequestError::Malformed("body shorter than Content-Length".into()))?;
            body
        }
    };
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Standard reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a response head: status line + headers + blank line. Every
/// response the daemon sends is `Connection: close` (one exchange per
/// connection), which is also what delimits streamed bodies.
pub fn write_head(w: &mut impl Write, status: u16, headers: &[(&str, &str)]) -> io::Result<()> {
    write!(w, "HTTP/1.1 {} {}\r\n", status, reason(status))?;
    for (name, value) in headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"Connection: close\r\n\r\n")
}

/// Write a complete length-delimited JSON response.
pub fn write_json(w: &mut impl Write, status: u16, json_body: &str) -> io::Result<()> {
    let len = json_body.len().to_string();
    write_head(
        w,
        status,
        &[
            ("Content-Type", "application/json"),
            ("Content-Length", &len),
        ],
    )?;
    w.write_all(json_body.as_bytes())?;
    w.flush()
}

/// Read a response head only: status line plus headers, leaving the body
/// unread on the stream — the entry point for clients that consume a
/// streamed body incrementally (the fleet coordinator's line merge)
/// instead of buffering it whole.
pub fn read_response_head(
    r: &mut impl BufRead,
) -> Result<(u16, Vec<(String, String)>), RequestError> {
    let line = read_line(r)?;
    let mut parts = line.split_whitespace();
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty status line".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| RequestError::Malformed("missing status code".into()))?;
    let headers = read_headers(r)?;
    Ok((status, headers))
}

/// Read one response: status line, headers, then the body — to
/// `Content-Length` if present, else to connection close.
pub fn read_response(r: &mut impl BufRead) -> Result<Response, RequestError> {
    let (status, headers) = read_response_head(r)?;
    let mut body = Vec::new();
    match header_lookup(&headers, "content-length") {
        Some(text) => {
            let len: usize = text
                .parse()
                .map_err(|_| RequestError::Malformed("bad Content-Length".into()))?;
            body.resize(len, 0);
            r.read_exact(&mut body)
                .map_err(|_| RequestError::Malformed("short response body".into()))?;
        }
        None => {
            r.read_to_end(&mut body)?;
        }
    }
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/campaign HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let req = read_request(&mut Cursor::new(&raw[..]), 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/campaign");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn bare_lf_lines_are_tolerated() {
        let raw = b"GET /healthz HTTP/1.1\nHost: x\n\n";
        let req = read_request(&mut Cursor::new(&raw[..]), 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn post_without_length_is_411_and_oversize_is_413() {
        let raw = b"POST / HTTP/1.1\r\n\r\n";
        assert!(matches!(
            read_request(&mut Cursor::new(&raw[..]), 1024),
            Err(RequestError::LengthRequired)
        ));
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789";
        assert!(matches!(
            read_request(&mut Cursor::new(&raw[..]), 4),
            Err(RequestError::BodyTooLarge { limit: 4 })
        ));
    }

    #[test]
    fn malformed_heads_are_rejected() {
        for raw in [
            &b"\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"GET /\r\n\r\n"[..],
            &b"GET / SPDY/3\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nbroken header\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\nshort"[..],
        ] {
            assert!(read_request(&mut Cursor::new(raw), 1024).is_err());
        }
    }

    #[test]
    fn truncated_heads_never_parse_as_complete_requests() {
        // EOF mid-line: malformed, not a line terminator.
        for raw in [
            &b"GET / HTTP/1.1"[..],
            &b"POST /v1/campaign HTTP/1.1\r\nContent-Length: 60\r\n"[..],
            &b"GET / HTTP/1.1\r\nHost: x"[..],
        ] {
            assert!(
                matches!(
                    read_request(&mut Cursor::new(raw), 1024),
                    Err(RequestError::Malformed(_)) | Err(RequestError::Io(_))
                ),
                "truncated head must be rejected: {raw:?}"
            );
        }
        // A clean close before any bytes is an I/O condition, not a 400.
        assert!(matches!(
            read_request(&mut Cursor::new(&b""[..]), 1024),
            Err(RequestError::Io(_))
        ));
    }

    #[test]
    fn response_round_trips_with_and_without_length() {
        let mut wire = Vec::new();
        write_json(&mut wire, 400, "{\"error\":\"x\"}").unwrap();
        let resp = read_response(&mut Cursor::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 400);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body_text(), "{\"error\":\"x\"}");

        // Streamed body: no Content-Length, delimited by close (EOF here).
        let mut wire = Vec::new();
        write_head(&mut wire, 200, &[("Content-Type", "application/x-ndjson")]).unwrap();
        wire.extend_from_slice(b"{\"index\":0}\n{\"index\":1}\n");
        let resp = read_response(&mut Cursor::new(&wire[..])).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body_text().lines().count(), 2);
    }
}
