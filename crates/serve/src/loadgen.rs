//! The load generator behind `joss_loadgen`: drive a daemon with N
//! concurrent clients, verify every streamed record, and report
//! throughput + latency percentiles.
//!
//! Two drive modes:
//!
//! * **closed loop** (default): each client issues its next request the
//!   moment the previous response finishes — measures saturation
//!   throughput;
//! * **open loop** (`target_rate`): request *starts* are paced on a fixed
//!   schedule spread across clients, independent of completions —
//!   measures latency at a controlled offered load. (A client whose
//!   response is still streaming when its next slot arrives fires late;
//!   with enough clients the offered rate holds.)
//!
//! Connections are **reused by default** (HTTP/1.1 keep-alive): each
//! client holds one connection and pipelines its requests down it
//! back-to-back, optionally recycling after `requests_per_conn` exchanges.
//! `keep_alive: false` restores the dial-per-request behaviour — the A/B
//! baseline for measuring what connection reuse buys. The report carries
//! the dial count so reuse is visible (`ok / connections` = exchanges per
//! connection).
//!
//! A `503` answer is load shedding, not failure: the client honours
//! `Retry-After` and retries the same request (configurable), and the
//! report counts every shed. Latency is measured per *request*, first
//! attempt to final byte, so shed-and-retry shows up as tail latency —
//! exactly what a real client would experience.

use crate::client;
use joss_sweep::GridDesc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What to drive, how hard, and how carefully to check it.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// The grid each request submits.
    pub desc: GridDesc,
    /// Concurrent clients.
    pub clients: usize,
    /// Requests per client.
    pub requests_per_client: usize,
    /// Open-loop aggregate request-start rate (req/s); `None` = closed loop.
    pub target_rate: Option<f64>,
    /// Verify every streamed record (count, order, schema).
    pub verify: bool,
    /// Retry shed (503) requests after their `Retry-After`.
    pub retry_503: bool,
    /// Most 503 retries per request before it counts as an error —
    /// bounds the run against a permanently saturated daemon.
    pub max_shed_retries: usize,
    /// Give each request a unique seed list, defeating the daemon's cache
    /// (measures simulation throughput rather than memory bandwidth).
    pub vary_seeds: bool,
    /// Reuse connections across requests (HTTP/1.1 keep-alive). `false`
    /// dials per request and sends `Connection: close` — the A/B baseline.
    pub keep_alive: bool,
    /// With `keep_alive`, recycle each connection after this many
    /// exchanges (0 = never; one connection per client for the whole run).
    pub requests_per_conn: usize,
    /// Per-exchange socket timeout.
    pub timeout: Duration,
}

impl LoadgenConfig {
    /// Closed-loop config with verification on.
    pub fn new(addr: impl Into<String>, desc: GridDesc) -> Self {
        LoadgenConfig {
            addr: addr.into(),
            desc,
            clients: 1,
            requests_per_client: 1,
            target_rate: None,
            verify: true,
            retry_503: true,
            max_shed_retries: 30,
            vary_seeds: false,
            keep_alive: true,
            requests_per_conn: 0,
            timeout: Duration::from_secs(120),
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Successful (200, and verified if enabled) requests.
    pub ok: usize,
    /// 503 responses observed (each retry attempt counts one).
    pub shed_503: usize,
    /// Responses that failed verification.
    pub malformed: usize,
    /// Transport/protocol errors and non-200/503 statuses.
    pub errors: usize,
    /// Total records across successful responses.
    pub records: usize,
    /// Connections dialed (with keep-alive, many requests share one).
    pub connections: usize,
    /// Successful responses served from the daemon's cache (header).
    pub cache_hits: usize,
    /// Per-request latencies (first attempt → final byte), sorted ascending.
    pub latencies: Vec<Duration>,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Body of the first successful response (for offline diffing).
    pub first_body: Option<Vec<u8>>,
    /// First verification failure, if any (diagnostics).
    pub first_malformation: Option<String>,
    /// The `X-Joss-Request-Id`s of the [`WORST_K`] worst-latency
    /// successful requests, worst first — the join key between a
    /// client-observed tail latency and the server's trace ring.
    pub worst: Vec<(Duration, String)>,
}

/// How many worst-latency request ids the report keeps.
pub const WORST_K: usize = 5;

impl LoadReport {
    /// Latency at percentile `p` (0–100) over successful requests.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((p / 100.0) * self.latencies.len() as f64).ceil() as usize;
        self.latencies[rank.clamp(1, self.latencies.len()) - 1]
    }

    /// Successful requests per second of wall time.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.ok as f64 / self.elapsed.as_secs_f64()
    }

    /// Human summary (the `joss_loadgen` output).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "ok {} | shed(503) {} | malformed {} | errors {} | records {} | \
             cache hits {} | conns {} ({:.1} req/conn) | {:.1} req/s | \
             p50 {:.1} ms | p90 {:.1} ms | p99 {:.1} ms | max {:.1} ms",
            self.ok,
            self.shed_503,
            self.malformed,
            self.errors,
            self.records,
            self.cache_hits,
            self.connections,
            if self.connections == 0 {
                0.0
            } else {
                self.ok as f64 / self.connections as f64
            },
            self.throughput_rps(),
            self.percentile(50.0).as_secs_f64() * 1e3,
            self.percentile(90.0).as_secs_f64() * 1e3,
            self.percentile(99.0).as_secs_f64() * 1e3,
            self.latencies
                .last()
                .copied()
                .unwrap_or_default()
                .as_secs_f64()
                * 1e3,
        );
        if !self.worst.is_empty() {
            out.push_str("\nworst request ids:");
            for (latency, rid) in &self.worst {
                let _ = std::fmt::Write::write_fmt(
                    &mut out,
                    format_args!(" {rid}={:.1}ms", latency.as_secs_f64() * 1e3),
                );
            }
        }
        out
    }
}

#[derive(Default)]
struct Tally {
    ok: usize,
    malformed: usize,
    errors: usize,
    records: usize,
    cache_hits: usize,
    latencies: Vec<Duration>,
    /// This client's worst-latency (latency, request id) pairs, worst
    /// first, capped at [`WORST_K`]; merged across clients in the report.
    worst: Vec<(Duration, String)>,
}

impl Tally {
    fn note_worst(&mut self, latency: Duration, request_id: Option<&str>) {
        let Some(rid) = request_id else {
            return;
        };
        self.worst.push((latency, rid.to_string()));
        self.worst
            .sort_by_key(|(latency, _)| std::cmp::Reverse(*latency));
        self.worst.truncate(WORST_K);
    }
}

/// One client's connection slot: holds the kept-alive connection between
/// requests and counts dials.
#[derive(Default)]
struct ConnSlot {
    conn: Option<client::Conn>,
    /// Exchanges completed on the current connection.
    served: usize,
    /// Connections dialed by this client.
    dials: usize,
}

impl ConnSlot {
    /// The connection for the next exchange, dialing when there is none,
    /// the daemon asked to close, or the recycle interval is up.
    fn acquire(&mut self, config: &LoadgenConfig) -> std::io::Result<&mut client::Conn> {
        let recycle = match &self.conn {
            None => true,
            Some(conn) => {
                !conn.is_reusable()
                    || (config.requests_per_conn > 0 && self.served >= config.requests_per_conn)
            }
        };
        if recycle {
            self.conn = Some(client::Conn::connect(&config.addr, config.timeout)?);
            self.dials += 1;
            self.served = 0;
        }
        Ok(self.conn.as_mut().expect("connection just ensured"))
    }

    /// One campaign exchange with keep-alive reuse. A failure on a
    /// *reused* connection is retried once on a fresh dial — the daemon
    /// may have reaped it as idle between exchanges, which is not a
    /// request failure.
    fn run_campaign(
        &mut self,
        config: &LoadgenConfig,
        desc: &GridDesc,
    ) -> std::io::Result<crate::http::Response> {
        for attempt in 0..2 {
            let fresh = self.conn.is_none() || self.served == 0;
            let conn = self.acquire(config)?;
            match conn.run_campaign(desc) {
                Ok(response) => {
                    self.served += 1;
                    return Ok(response);
                }
                Err(e) => {
                    self.conn = None;
                    if fresh || attempt > 0 {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("loop returns on success, error, or retry exhaustion")
    }
}

/// Drive the daemon as configured and aggregate the outcome.
pub fn run(config: &LoadgenConfig) -> LoadReport {
    let first_body: Mutex<Option<Vec<u8>>> = Mutex::new(None);
    let first_malformation: Mutex<Option<String>> = Mutex::new(None);
    let shed_total = AtomicU64::new(0);
    let interval = config
        .target_rate
        .map(|rate| Duration::from_secs_f64(1.0 / rate.max(1e-9)));
    let started = Instant::now();

    let tallies: Vec<(Tally, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients.max(1))
            .map(|client_id| {
                let first_body = &first_body;
                let first_malformation = &first_malformation;
                let shed_total = &shed_total;
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    let mut slot = ConnSlot::default();
                    for req in 0..config.requests_per_client {
                        // Open loop: global request slots are interleaved
                        // round-robin across clients.
                        if let Some(interval) = interval {
                            let slot = (req * config.clients.max(1) + client_id) as u32;
                            let due = started + interval * slot;
                            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                                std::thread::sleep(wait);
                            }
                        }
                        let desc = request_desc(config, client_id, req);
                        drive_one(
                            config,
                            &desc,
                            &mut slot,
                            &mut tally,
                            shed_total,
                            first_body,
                            first_malformation,
                        );
                    }
                    (tally, slot.dials)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut report = LoadReport {
        ok: 0,
        shed_503: shed_total.load(Ordering::Relaxed) as usize,
        malformed: 0,
        errors: 0,
        records: 0,
        connections: 0,
        cache_hits: 0,
        latencies: Vec::new(),
        elapsed,
        first_body: first_body.into_inner().expect("first body lock"),
        first_malformation: first_malformation.into_inner().expect("malformation lock"),
        worst: Vec::new(),
    };
    for (tally, dials) in tallies {
        report.ok += tally.ok;
        report.malformed += tally.malformed;
        report.errors += tally.errors;
        report.records += tally.records;
        report.cache_hits += tally.cache_hits;
        report.connections += dials;
        report.latencies.extend(tally.latencies);
        report.worst.extend(tally.worst);
    }
    report.latencies.sort();
    report
        .worst
        .sort_by_key(|(latency, _)| std::cmp::Reverse(*latency));
    report.worst.truncate(WORST_K);
    report
}

/// The grid a given (client, request) submits; unique seeds when the run
/// wants to defeat the cache.
fn request_desc(config: &LoadgenConfig, client_id: usize, req: usize) -> GridDesc {
    let mut desc = config.desc.clone();
    if config.vary_seeds {
        let unique = (client_id * config.requests_per_client + req) as u64;
        desc.seeds = vec![0x5eed_0000 + unique];
    }
    desc
}

fn drive_one(
    config: &LoadgenConfig,
    desc: &GridDesc,
    slot: &mut ConnSlot,
    tally: &mut Tally,
    shed_total: &AtomicU64,
    first_body: &Mutex<Option<Vec<u8>>>,
    first_malformation: &Mutex<Option<String>>,
) {
    let t0 = Instant::now();
    let mut sheds_seen = 0usize;
    loop {
        let attempt = if config.keep_alive {
            slot.run_campaign(config, desc)
        } else {
            slot.dials += 1;
            client::run_campaign(&config.addr, desc, config.timeout)
        };
        let response = match attempt {
            Ok(r) => r,
            Err(_) => {
                tally.errors += 1;
                return;
            }
        };
        match response.status {
            200 => {
                if config.verify {
                    match client::verify_body(desc, &response.body) {
                        Ok(n) => tally.records += n,
                        Err(why) => {
                            tally.malformed += 1;
                            let mut slot = first_malformation.lock().expect("malformation lock");
                            slot.get_or_insert(why);
                            return;
                        }
                    }
                } else {
                    tally.records += response.body.iter().filter(|&&b| b == b'\n').count();
                }
                if response.header("x-joss-cache") == Some("hit") {
                    tally.cache_hits += 1;
                }
                tally.ok += 1;
                let latency = t0.elapsed();
                tally.latencies.push(latency);
                tally.note_worst(latency, response.header("x-joss-request-id"));
                if !config.vary_seeds {
                    let mut slot = first_body.lock().expect("first body lock");
                    if slot.is_none() {
                        *slot = Some(response.body);
                    }
                }
                return;
            }
            503 => {
                shed_total.fetch_add(1, Ordering::Relaxed);
                if !config.retry_503 {
                    return;
                }
                sheds_seen += 1;
                if sheds_seen > config.max_shed_retries {
                    // A daemon shedding this persistently is effectively
                    // down for this client; bound the run instead of
                    // spinning on Retry-After forever.
                    tally.errors += 1;
                    return;
                }
                let wait = response
                    .header("retry-after")
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or(1);
                // saturating: Retry-After is server-controlled input.
                std::thread::sleep(Duration::from_millis(
                    wait.saturating_mul(1000).clamp(100, 10_000),
                ));
            }
            _ => {
                tally.errors += 1;
                return;
            }
        }
    }
}
