//! Flight recorder: one self-contained JSON artifact capturing what the
//! daemon was doing when something went wrong, dumped while the evidence
//! is still in the in-memory rings.
//!
//! An artifact bundles the last trace-ring events (the seconds *before*
//! the incident), a full metrics snapshot, the capped windows of recent
//! request ids and panic request ids, the daemon's `/stats` view, and —
//! when the trigger was a specific campaign — the offending grid's
//! canonical JSON. Post-mortems read the artifact instead of trying to
//! reproduce the crash.
//!
//! Two triggers share [`record`]: the executor pool's panic containment
//! (automatic, attributed to the panicking request id) and
//! `GET /debug/flight` (on demand — "snapshot everything now"). When the
//! daemon was started with `--flight-dir` the artifact is also persisted
//! as `flight-NNNN-<reason>-<request id>.json`; without it the artifact
//! only travels inline in the `/debug/flight` response.

use crate::server::State;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Trace events retained per artifact (the tail of the ring — the run-up
/// to the incident, not the whole history).
const TRACE_TAIL: usize = 256;

/// Build the artifact JSON. `grid` is the offending campaign's canonical
/// JSON when the trigger was a specific job, `None` for on-demand dumps.
pub(crate) fn flight_json(
    state: &State,
    reason: &str,
    request_id: &str,
    grid: Option<&str>,
) -> String {
    // The JSONL snapshot's lines are each a self-describing JSON object;
    // splitting catalog lines from trace lines and re-joining with commas
    // embeds them as two well-formed arrays. Only the trace tail is kept
    // — the incident's run-up, not RING_CAP events of history.
    let snapshot = joss_telemetry::snapshot_jsonl();
    let (mut metrics, mut traces) = (Vec::new(), Vec::new());
    for line in snapshot.lines() {
        if line.contains("\"kind\":\"trace\"") {
            traces.push(line);
        } else {
            metrics.push(line);
        }
    }
    let trace_tail = &traces[traces.len().saturating_sub(TRACE_TAIL)..];

    let mut out = String::with_capacity(32 * 1024);
    let _ = write!(
        out,
        "{{\"flight_schema\":1,\"reason\":{},\"request_id\":{},\"uptime_secs\":{},\
         \"version\":{},\"grid\":{},",
        joss_sweep::json::quote(reason),
        joss_sweep::json::quote(request_id),
        state.uptime_secs(),
        joss_sweep::json::quote(env!("CARGO_PKG_VERSION")),
        grid.map_or("null".to_string(), |g| g.to_string()),
    );
    out.push_str("\"recent_request_ids\":[");
    for (i, rid) in state
        .recent_requests
        .lock()
        .expect("recent requests")
        .iter()
        .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&joss_sweep::json::quote(rid));
    }
    out.push_str("],\"recent_panic_request_ids\":[");
    for (i, rid) in state
        .recent_panics
        .lock()
        .expect("recent panics")
        .iter()
        .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&joss_sweep::json::quote(rid));
    }
    let _ = write!(
        out,
        "],\"stats\":{},\"metrics\":[{}],\"trace_tail\":[{}]}}",
        state.stats_json(),
        metrics.join(","),
        trace_tail.join(","),
    );
    out
}

/// Record one flight artifact: always built, persisted to the configured
/// `--flight-dir` when there is one. Returns the written path (for logs
/// and tests) or `None` when persistence is disabled or failed — a
/// failing disk must not take down panic containment, so write errors are
/// logged and swallowed.
pub(crate) fn record(
    state: &State,
    reason: &str,
    request_id: &str,
    grid: Option<&str>,
) -> Option<PathBuf> {
    let body = flight_json(state, reason, request_id, grid);
    persist(state, reason, request_id, &body)
}

/// Persist an already-built artifact (the `/debug/flight` handler builds
/// the body once and both returns and persists it).
pub(crate) fn persist(
    state: &State,
    reason: &str,
    request_id: &str,
    body: &str,
) -> Option<PathBuf> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = state.config.flight_dir.as_deref()?;
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let path = PathBuf::from(dir).join(format!("flight-{seq:04}-{reason}-{request_id}.json"));
    let write = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, body));
    match write {
        Ok(()) => {
            eprintln!("[joss_serve] flight artifact written: {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!(
                "[joss_serve] flight artifact write failed ({}): {e}",
                path.display()
            );
            None
        }
    }
}
