//! # joss-serve — simulation as a service
//!
//! The paper's figure grids are offline artifacts; the serving layer turns
//! the same campaign machinery into an interactive "ask the model a
//! what-if question" endpoint. A long-running daemon accepts grid
//! descriptions over a hand-rolled HTTP/1.1 wire — nonblocking sockets
//! multiplexed by a readiness event loop (epoll via the vendored
//! `polling` shim; no async runtime) — and **streams** the resulting
//! [`joss_sweep::RunRecord`] JSONL back as the campaign executes.
//! Connections are keep-alive: one TCP session carries many campaign
//! exchanges, and a repeated grid is answered from cache with a single
//! vectored write of shared bytes (no per-request allocation, parsing, or
//! grid resolution).
//!
//! * [`http`] — the minimal HTTP subset (incremental request parsing,
//!   keep-alive/close negotiation, chunked transfer framing, size limits)
//!   shared by server and client;
//! * [`server`] — the daemon: the reactor event loop + campaign executor
//!   pool behind the `POST /v1/campaign` streaming handler, one
//!   lazily-trained [`joss_sweep::ExperimentContext`] shared by every
//!   connection;
//! * [`cache`] — the process-wide LRU results cache (canonical grid JSON →
//!   shared `Arc` JSONL body with precomputed line offsets), so repeated
//!   queries never re-simulate — or re-parse, via the raw-body memo;
//! * [`store`] — the content-addressed **per-spec** result store (base
//!   grid canonical JSON → global spec index → record line): overlapping
//!   ranges of one grid, cut any which way — a fleet's re-issued stolen
//!   ranges, a second campaign over part of the same grid — reuse stored
//!   specs and simulate only the gaps;
//! * [`admission`] — the bounded in-flight-campaign semaphore behind the
//!   `503 + Retry-After` overload response;
//! * [`client`] — a small blocking client (`run_campaign`, `wait_ready`,
//!   record verification);
//! * [`loadgen`] — the open/closed-loop load generator behind
//!   `joss_loadgen`.
//!
//! The wire contract that everything above leans on: **for any grid, the
//! streamed body is byte-identical to
//! [`joss_sweep::Campaign::run_streaming`] writing a
//! [`joss_sweep::JsonlSink`] offline** with the same training seed and
//! reps (`crates/serve/tests/service.rs` and the CI `serve-smoke` job
//! assert it). Protocol reference: `docs/SERVE.md`.

pub mod admission;
pub mod cache;
pub mod client;
mod flight;
pub mod http;
pub mod loadgen;
mod reactor;
pub mod server;
pub mod store;

pub use admission::Admission;
pub use cache::ResultsCache;
pub use http::{Request, Response};
pub use loadgen::{LoadReport, LoadgenConfig};
pub use server::{ServeConfig, Server, ServerHandle, Stats};
pub use store::RangeStore;
