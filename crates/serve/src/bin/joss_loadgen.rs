//! Load generator for a running `joss_serve` daemon.
//!
//! ```text
//! joss_loadgen --addr HOST:PORT [--clients N] [--requests M] [--rate R]
//!              [--workloads L1,L2] [--schedulers S1,S2] [--seeds N1,N2]
//!              [--scale D|full] [--vary-seeds] [--no-verify] [--no-retry]
//!              [--close-mode] [--requests-per-conn K]
//!              [--wait-secs S] [--save-body FILE]
//! ```
//!
//! Closed loop by default (each client fires as soon as its previous
//! response completes); `--rate` switches to open-loop pacing at an
//! aggregate R requests/second. Connections are kept alive and reused
//! across requests by default; `--close-mode` dials per request with
//! `Connection: close` (the A/B baseline for what reuse buys) and
//! `--requests-per-conn K` recycles each connection after K exchanges. Every response is verified (record count,
//! order, schema) unless `--no-verify`; 503 sheds are retried after their
//! `Retry-After` unless `--no-retry`. Exit status is non-zero on any
//! malformed record or transport error, so CI can gate on it.

use joss_serve::{client, loadgen, LoadgenConfig};
use joss_sweep::{GridDesc, SchedulerKind};
use joss_workloads::Scale;
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: joss_loadgen --addr HOST:PORT [--clients N] [--requests M] [--rate R]\n\
         \u{20}                   [--workloads L1,L2] [--schedulers S1,S2] [--seeds N1,N2]\n\
         \u{20}                   [--scale D|full] [--vary-seeds] [--no-verify] [--no-retry]\n\
         \u{20}                   [--close-mode] [--requests-per-conn K]\n\
         \u{20}                   [--wait-secs S] [--save-body FILE]\n\
         schedulers: {}",
        SchedulerKind::parse_help()
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut addr: Option<String> = None;
    let mut desc = GridDesc {
        workloads: vec!["DP".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    };
    let mut clients = 2usize;
    let mut requests = 4usize;
    let mut rate: Option<f64> = None;
    let mut vary_seeds = false;
    let mut verify = true;
    let mut retry = true;
    let mut wait_secs = 0u64;
    let mut save_body: Option<String> = None;
    let mut keep_alive = true;
    let mut requests_per_conn = 0usize;

    let mut i = 1;
    let next = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(next(&mut i)),
            "--clients" => clients = next(&mut i).parse().expect("client count"),
            "--requests" => requests = next(&mut i).parse().expect("request count"),
            "--rate" => rate = Some(next(&mut i).parse().expect("request rate")),
            "--workloads" => {
                desc.workloads = next(&mut i).split(',').map(str::to_string).collect();
            }
            "--schedulers" => {
                desc.schedulers = next(&mut i)
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<_, String>>()
                    .unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        usage()
                    });
            }
            "--seeds" => {
                desc.seeds = next(&mut i)
                    .split(',')
                    .map(|s| s.parse().expect("seed must be an integer"))
                    .collect();
            }
            "--scale" => {
                let v = next(&mut i);
                desc.scale = if v == "full" {
                    Scale::Full
                } else {
                    Scale::Divided(v.parse().expect("scale divisor"))
                };
            }
            "--vary-seeds" => vary_seeds = true,
            "--close-mode" => keep_alive = false,
            "--requests-per-conn" => {
                requests_per_conn = next(&mut i).parse().expect("requests per connection");
            }
            "--no-verify" => verify = false,
            "--no-retry" => retry = false,
            "--wait-secs" => wait_secs = next(&mut i).parse().expect("wait seconds"),
            "--save-body" => save_body = Some(next(&mut i)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }
    let addr = addr.unwrap_or_else(|| {
        eprintln!("error: --addr is required");
        usage()
    });
    if vary_seeds && save_body.is_some() {
        // --vary-seeds gives every request a different grid, so there is
        // no single body that represents the configured grid to save.
        eprintln!("error: --save-body cannot be combined with --vary-seeds");
        usage()
    }

    if wait_secs > 0 {
        if let Err(e) = client::wait_ready(&addr, Duration::from_secs(wait_secs)) {
            eprintln!("error: daemon at {addr} not ready after {wait_secs}s: {e}");
            exit(1);
        }
    }

    let mut config = LoadgenConfig::new(addr.clone(), desc);
    config.clients = clients;
    config.requests_per_client = requests;
    config.target_rate = rate;
    config.vary_seeds = vary_seeds;
    config.verify = verify;
    config.retry_503 = retry;
    config.keep_alive = keep_alive;
    config.requests_per_conn = requests_per_conn;

    eprintln!(
        "[joss_loadgen] {} clients x {} requests ({} loop, {}, grid of {} specs) against {addr}",
        config.clients,
        config.requests_per_client,
        if rate.is_some() { "open" } else { "closed" },
        if keep_alive {
            "keep-alive"
        } else {
            "close-per-request"
        },
        config.desc.spec_count(),
    );
    let report = loadgen::run(&config);
    println!("{}", report.summary());
    if let Some(why) = &report.first_malformation {
        eprintln!("[joss_loadgen] first malformed response: {why}");
    }

    if let Some(path) = save_body {
        match &report.first_body {
            Some(body) => {
                std::fs::write(&path, body).expect("write saved body");
                eprintln!("[joss_loadgen] saved one response body to {path}");
            }
            None => {
                eprintln!("error: no successful response body to save");
                exit(1);
            }
        }
    }
    if report.malformed > 0 || report.errors > 0 {
        exit(1);
    }
}
