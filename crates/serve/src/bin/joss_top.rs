//! `joss_top` — the fleet operator console.
//!
//! ```text
//! joss_top --backend HOST:PORT [--backend HOST:PORT ...]
//!          [--interval-ms N] [--iterations N] [--json]
//! ```
//!
//! Polls every backend's `GET /v1/progress` and `GET /healthz` on an
//! interval and renders one live table — per-backend uptime, telemetry
//! state, executor queue depth, active campaign progress with ETA, and a
//! client-side records/s derived from successive polls (the delta of the
//! daemon's cumulative `records_streamed` over the poll gap, so it works
//! against any backend without server-side rate state).
//!
//! Plain text, redraw-in-place (ANSI home+clear); `--json` emits one JSON
//! line per backend per poll instead — the machine-readable mode CI and
//! scripts consume. The default `--iterations 0` polls forever; pass a
//! count to stop after N polls (what the smoke tests do).

use joss_serve::client;
use joss_sweep::json::{self, Value};
use std::process::exit;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: joss_top --backend HOST:PORT [--backend HOST:PORT ...]\n\
         \u{20}              [--interval-ms N] [--iterations N] [--json]"
    );
    exit(2);
}

/// What one poll of one backend observed.
struct Poll {
    /// `/v1/progress` body, parsed (`None` = unreachable).
    progress: Option<Value>,
    /// `/healthz` body, parsed.
    health: Option<Value>,
    /// Raw progress body (echoed in `--json` mode).
    progress_raw: Option<String>,
    health_raw: Option<String>,
    at: Instant,
}

fn fetch(addr: &str, path: &str, timeout: Duration) -> Option<String> {
    let response = client::get(addr, path, timeout).ok()?;
    (response.status == 200).then(|| String::from_utf8_lossy(&response.body).into_owned())
}

fn poll(addr: &str, timeout: Duration) -> Poll {
    let progress_raw = fetch(addr, "/v1/progress", timeout);
    let health_raw = fetch(addr, "/healthz", timeout);
    Poll {
        progress: progress_raw.as_deref().and_then(|b| json::parse(b).ok()),
        health: health_raw.as_deref().and_then(|b| json::parse(b).ok()),
        progress_raw,
        health_raw,
        at: Instant::now(),
    }
}

fn u64_at(v: &Value, path: &[&str]) -> Option<u64> {
    let mut cur = v;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_u64()
}

/// One backend's table row.
fn render_row(addr: &str, poll: &Poll, prev: Option<&Poll>) -> String {
    let Some(progress) = poll.progress.as_ref() else {
        return format!("{addr:<22} unreachable");
    };
    let uptime = u64_at(progress, &["uptime_secs"]).unwrap_or(0);
    let queue = u64_at(progress, &["executor_queue_depth"]).unwrap_or(0);
    let telemetry = poll
        .health
        .as_ref()
        .and_then(|h| {
            h.get("telemetry")
                .and_then(|t| t.as_str().map(String::from))
        })
        .unwrap_or_else(|| "?".into());
    let campaigns = u64_at(progress, &["totals", "campaigns_executed"]).unwrap_or(0);
    let panics = u64_at(progress, &["totals", "handler_panics"]).unwrap_or(0);
    let streamed = u64_at(progress, &["totals", "records_streamed"]).unwrap_or(0);

    // Active campaign progress: sum done/total across the in-flight set;
    // the worst (largest) ETA is the fleet-visible one.
    let (mut done, mut total, mut eta_ms, mut active_n) = (0u64, 0u64, None::<u64>, 0usize);
    if let Some(active) = progress.get("active").and_then(|a| a.as_array()) {
        active_n = active.len();
        for entry in active {
            done += u64_at(entry, &["completed"]).unwrap_or(0);
            total += u64_at(entry, &["total"]).unwrap_or(0);
            if let Some(eta) = u64_at(entry, &["eta_ms"]) {
                eta_ms = Some(eta_ms.map_or(eta, |worst: u64| worst.max(eta)));
            }
        }
    }
    // Records/s from this client's own poll cadence: delta of the
    // cumulative counter over observed wall time.
    let rate = prev
        .and_then(|p| {
            let prev_streamed = u64_at(p.progress.as_ref()?, &["totals", "records_streamed"])?;
            let secs = poll.at.duration_since(p.at).as_secs_f64();
            (secs > 0.0).then(|| streamed.saturating_sub(prev_streamed) as f64 / secs)
        })
        .unwrap_or(0.0);
    format!(
        "{addr:<22} {uptime:>6} {telemetry:<12} {queue:>5} {active_n:>6} {:>13} {:>8} {rate:>8.1} {campaigns:>9} {panics:>6}",
        format!("{done}/{total}"),
        eta_ms.map_or("-".to_string(), |e| e.to_string()),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut backends: Vec<String> = Vec::new();
    let mut interval = Duration::from_millis(1000);
    let mut iterations = 0u64; // 0 = forever
    let mut json_mode = false;
    let mut i = 1;
    let next = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => backends.push(next(&mut i)),
            "--interval-ms" => {
                interval = Duration::from_millis(next(&mut i).parse().expect("interval ms"))
            }
            "--iterations" => iterations = next(&mut i).parse().expect("iteration count"),
            "--json" => json_mode = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }
    if backends.is_empty() {
        eprintln!("error: at least one --backend is required");
        usage();
    }

    let timeout = Duration::from_secs(5).max(interval);
    let mut prev: Vec<Option<Poll>> = backends.iter().map(|_| None).collect();
    let mut iteration = 0u64;
    loop {
        iteration += 1;
        let polls: Vec<Poll> = backends.iter().map(|b| poll(b, timeout)).collect();
        if json_mode {
            for (addr, p) in backends.iter().zip(&polls) {
                println!(
                    "{{\"backend\":{},\"iteration\":{iteration},\"ok\":{},\"progress\":{},\"health\":{}}}",
                    json::quote(addr),
                    p.progress_raw.is_some(),
                    p.progress_raw.as_deref().unwrap_or("null"),
                    p.health_raw.as_deref().unwrap_or("null"),
                );
            }
        } else {
            // Redraw in place: cursor home + clear to end of screen.
            print!("\x1b[H\x1b[J");
            println!(
                "joss_top — {} backend(s), poll {} ms, iteration {iteration}",
                backends.len(),
                interval.as_millis()
            );
            println!(
                "{:<22} {:>6} {:<12} {:>5} {:>6} {:>13} {:>8} {:>8} {:>9} {:>6}",
                "BACKEND",
                "UP(s)",
                "TELEMETRY",
                "QUEUE",
                "ACTIVE",
                "DONE/TOTAL",
                "ETA(ms)",
                "REC/S",
                "CAMPAIGNS",
                "PANICS"
            );
            for ((addr, p), prev_poll) in backends.iter().zip(&polls).zip(&prev) {
                println!("{}", render_row(addr, p, prev_poll.as_ref()));
            }
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = polls.into_iter().map(Some).collect();
        if iterations > 0 && iteration >= iterations {
            break;
        }
        std::thread::sleep(interval);
    }
}
