//! The simulation-as-a-service daemon.
//!
//! ```text
//! joss_serve [--addr HOST:PORT] [--workers N] [--max-inflight N]
//!            [--cache-entries N] [--campaign-threads N] [--max-specs N]
//!            [--store-specs N] [--reps R] [--train-seed S] [--train-eager]
//!            [--read-timeout-secs S] [--write-timeout-secs S]
//!            [--idle-timeout-secs S] [--flight-dir DIR]
//! ```
//!
//! Serves the wire protocol documented in `docs/SERVE.md`:
//! `POST /v1/campaign` with a JSON grid description streams back one
//! `RunRecord` JSON object per line; `GET /healthz` and `GET /stats` are
//! JSON endpoints. Model training (the paper's install-time
//! characterization) happens once, on the first campaign — or at startup
//! with `--train-eager`.

use joss_serve::{ServeConfig, Server};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: joss_serve [--addr HOST:PORT] [--workers N] [--max-inflight N]\n\
         \u{20}                 [--cache-entries N] [--campaign-threads N] [--max-specs N]\n\
         \u{20}                 [--store-specs N] [--reps R] [--train-seed S] [--train-eager]\n\
         \u{20}                 [--read-timeout-secs S] [--write-timeout-secs S]\n\
         \u{20}                 [--idle-timeout-secs S] [--flight-dir DIR]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = ServeConfig::default();
    let mut train_eager = false;
    let mut i = 1;
    let next = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = next(&mut i),
            "--workers" => config.workers = next(&mut i).parse().expect("worker count"),
            "--max-inflight" => config.max_inflight = next(&mut i).parse().expect("inflight bound"),
            "--cache-entries" => {
                config.cache_entries = next(&mut i).parse().expect("cache capacity")
            }
            "--campaign-threads" => {
                config.campaign_threads = next(&mut i).parse().expect("campaign threads")
            }
            "--max-specs" => config.max_specs = next(&mut i).parse().expect("spec cap"),
            "--store-specs" => config.store_specs = next(&mut i).parse().expect("store capacity"),
            "--reps" => config.reps = next(&mut i).parse().expect("training reps"),
            "--train-seed" => config.train_seed = next(&mut i).parse().expect("train seed"),
            "--train-eager" => train_eager = true,
            "--read-timeout-secs" => {
                config.read_timeout =
                    std::time::Duration::from_secs(next(&mut i).parse().expect("read timeout"))
            }
            "--write-timeout-secs" => {
                config.write_timeout =
                    std::time::Duration::from_secs(next(&mut i).parse().expect("write timeout"))
            }
            "--idle-timeout-secs" => {
                config.idle_timeout =
                    std::time::Duration::from_secs(next(&mut i).parse().expect("idle timeout"))
            }
            "--flight-dir" => config.flight_dir = Some(next(&mut i)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }

    let reps = config.reps;
    let train_seed = config.train_seed;
    let server = Server::bind(config).unwrap_or_else(|e| {
        eprintln!("error: bind failed: {e}");
        exit(1);
    });
    let addr = server.local_addr().expect("bound address");
    eprintln!(
        "[joss_serve] listening on {addr} (train_seed={train_seed}, reps={reps}; \
         training {} )",
        if train_eager {
            "now"
        } else {
            "on first campaign"
        }
    );
    if train_eager {
        let t0 = std::time::Instant::now();
        server.train();
        eprintln!(
            "[joss_serve] characterization done in {:.1}s",
            t0.elapsed().as_secs_f64()
        );
    }
    if let Err(e) = server.run() {
        eprintln!("error: server failed: {e}");
        exit(1);
    }
}
