//! Process-wide LRU results cache: canonical grid description → the full
//! JSONL body that campaign produced.
//!
//! The cache key is the **canonical JSON** of the [`GridDesc`]
//! (`joss_sweep::GridDesc::to_canonical_json`), not just its 64-bit
//! `spec_hash` — the hash routes and labels (response header, stats), the
//! full canonical string guards against hash collisions serving the wrong
//! grid. Entries are whole response bodies behind `Arc`s, so cache hits
//! stream to the socket without copying and eviction never frees bytes a
//! response is still writing.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// LRU map from canonical grid JSON to the streamed JSONL body.
pub struct ResultsCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

struct Inner {
    entries: HashMap<String, Entry>,
    tick: u64,
}

struct Entry {
    body: Arc<Vec<u8>>,
    last_used: u64,
}

impl ResultsCache {
    /// Cache holding up to `capacity` campaign bodies (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultsCache {
            capacity,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// Look up a canonical grid, bumping its recency on hit.
    pub fn get(&self, canonical: &str) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(canonical)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.body))
    }

    /// Insert (or refresh) a finished campaign body, evicting the least
    /// recently used entries while over capacity.
    pub fn insert(&self, canonical: String, body: Arc<Vec<u8>>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            canonical,
            Entry {
                body,
                last_used: tick,
            },
        );
        while inner.entries.len() > self.capacity {
            // O(n) eviction scan: capacities are small (tens of grids) and
            // insertions happen once per *simulated* campaign, so this is
            // noise next to the simulation itself.
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity cache");
            inner.entries.remove(&oldest);
        }
    }

    /// False when capacity is 0 — callers can skip building bodies that
    /// [`ResultsCache::insert`] would discard anyway.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of cached bodies.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<Vec<u8>> {
        Arc::new(s.as_bytes().to_vec())
    }

    #[test]
    fn hit_returns_the_inserted_bytes() {
        let cache = ResultsCache::new(4);
        assert!(cache.get("a").is_none());
        cache.insert("a".into(), body("records"));
        assert_eq!(cache.get("a").unwrap().as_slice(), b"records");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let cache = ResultsCache::new(2);
        cache.insert("a".into(), body("A"));
        cache.insert("b".into(), body("B"));
        assert!(cache.get("a").is_some()); // refresh a; b is now LRU
        cache.insert("c".into(), body("C"));
        assert!(cache.get("b").is_none(), "b should have been evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultsCache::new(0);
        cache.insert("a".into(), body("A"));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_replaces_the_body() {
        let cache = ResultsCache::new(2);
        cache.insert("a".into(), body("old"));
        cache.insert("a".into(), body("new"));
        assert_eq!(cache.get("a").unwrap().as_slice(), b"new");
        assert_eq!(cache.len(), 1);
    }
}
