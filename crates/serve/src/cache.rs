//! Process-wide LRU results cache: canonical grid description → the full
//! JSONL body that campaign produced, stored once as `Arc<[u8]>` with
//! line offsets precomputed at insert time.
//!
//! The cache key is the **canonical JSON** of the [`GridDesc`]
//! (`joss_sweep::GridDesc::to_canonical_json`), not just its 64-bit
//! `spec_hash` — the hash routes and labels (response header, stats), the
//! full canonical string guards against hash collisions serving the wrong
//! grid. Entries are [`CachedBody`] views: shared bytes plus a line index,
//! so a hit is served by reference (one vectored socket write, zero
//! copies), eviction never frees bytes a response is still writing, and a
//! shard of an already-cached grid is answered by slicing the parent body
//! between two precomputed line offsets instead of re-simulating or
//! re-scanning for newlines per request.
//!
//! A second, bounded memo maps **raw request bodies** to their canonical
//! key: a repeated byte-identical request (the steady state of a
//! keep-alive client replaying a grid) resolves to its cached body without
//! JSON parsing or canonicalization — the hit path does no per-request
//! parsing at all.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An immutable campaign body: shared bytes plus the byte offset of every
/// line start (and one past the last line), computed once when the body
/// enters the cache. A `CachedBody` may be a *view* over a sub-range of
/// lines of a larger body — slicing shares the same allocations.
#[derive(Clone)]
pub struct CachedBody {
    bytes: Arc<[u8]>,
    /// Absolute byte offsets into `bytes`: `offsets[i]` starts line `i`,
    /// `offsets[total_lines]` == `bytes.len()` (with an unterminated tail
    /// counting as a line). Shared, never re-derived per request.
    offsets: Arc<[usize]>,
    line_start: usize,
    line_end: usize,
}

impl CachedBody {
    /// Index a complete body, scanning for line starts exactly once.
    pub fn new(bytes: Vec<u8>) -> Self {
        let mut offsets = Vec::with_capacity(bytes.len() / 32 + 2);
        offsets.push(0);
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                offsets.push(i + 1);
            }
        }
        if *offsets.last().expect("non-empty offsets") != bytes.len() {
            offsets.push(bytes.len());
        }
        let line_end = offsets.len() - 1;
        CachedBody {
            bytes: bytes.into(),
            offsets: offsets.into(),
            line_start: 0,
            line_end,
        }
    }

    /// Lines in this view.
    pub fn line_count(&self) -> usize {
        self.line_end - self.line_start
    }

    /// Bytes in this view.
    pub fn len(&self) -> usize {
        self.offsets[self.line_end] - self.offsets[self.line_start]
    }

    /// True when the view holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The view's bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[self.offsets[self.line_start]..self.offsets[self.line_end]]
    }

    /// The shared allocation plus this view's byte range within it — what
    /// a zero-copy writer queues (clone of the `Arc`, two indices, no
    /// bytes moved).
    pub fn share(&self) -> (Arc<[u8]>, usize, usize) {
        (
            Arc::clone(&self.bytes),
            self.offsets[self.line_start],
            self.offsets[self.line_end],
        )
    }

    /// A sub-view over lines `[start, end)` of this view (relative
    /// indices), sharing the same bytes and offsets. `None` when the range
    /// is out of bounds or inverted; an empty in-range slice is `None`
    /// too — there is no empty campaign body to serve.
    pub fn slice_lines(&self, start: usize, end: usize) -> Option<CachedBody> {
        if start >= end || end > self.line_count() {
            return None;
        }
        Some(CachedBody {
            bytes: Arc::clone(&self.bytes),
            offsets: Arc::clone(&self.offsets),
            line_start: self.line_start + start,
            line_end: self.line_start + end,
        })
    }
}

/// LRU map from canonical grid JSON to the streamed JSONL body, with the
/// raw-request-body memo in front of it.
pub struct ResultsCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

struct Inner {
    entries: HashMap<String, Entry>,
    /// raw request body → (canonical key, response spec-hash label). The
    /// memo only short-circuits parsing; the body always comes from
    /// `entries`, so an evicted grid cannot be served stale through here.
    raw_keys: HashMap<Vec<u8>, RawKey>,
    tick: u64,
}

struct Entry {
    body: CachedBody,
    last_used: u64,
}

struct RawKey {
    canonical: String,
    spec_hash: Arc<str>,
    last_used: u64,
}

impl ResultsCache {
    /// Cache holding up to `capacity` campaign bodies (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultsCache {
            capacity,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                raw_keys: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// Look up a canonical grid, bumping its recency on hit.
    pub fn get(&self, canonical: &str) -> Option<CachedBody> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.entries.get_mut(canonical)?;
        entry.last_used = tick;
        Some(entry.body.clone())
    }

    /// Resolve a raw request body straight to its cached campaign body and
    /// spec-hash label, skipping JSON parsing entirely. Misses when the
    /// exact bytes were never memoized *or* the grid itself has been
    /// evicted (the memo never outlives the entry it points at).
    pub fn get_raw(&self, raw: &[u8]) -> Option<(CachedBody, Arc<str>)> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        let Inner {
            entries, raw_keys, ..
        } = &mut *inner;
        let key = raw_keys.get_mut(raw)?;
        match entries.get_mut(&key.canonical) {
            Some(entry) => {
                key.last_used = tick;
                entry.last_used = tick;
                Some((entry.body.clone(), Arc::clone(&key.spec_hash)))
            }
            None => {
                raw_keys.remove(raw);
                None
            }
        }
    }

    /// Remember that request body `raw` canonicalizes to `canonical`
    /// (labelled `spec_hash`), so the next byte-identical request skips
    /// parsing. Bounded separately from the body cache — several textual
    /// spellings can point at one grid.
    pub fn memo_raw(&self, raw: Vec<u8>, canonical: String, spec_hash: &str) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.raw_keys.insert(
            raw,
            RawKey {
                canonical,
                spec_hash: spec_hash.into(),
                last_used: tick,
            },
        );
        let memo_capacity = self.capacity * 4;
        while inner.raw_keys.len() > memo_capacity {
            let oldest = inner
                .raw_keys
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity memo");
            inner.raw_keys.remove(&oldest);
        }
    }

    /// Insert (or refresh) a finished campaign body, evicting the least
    /// recently used entries while over capacity.
    pub fn insert(&self, canonical: String, body: CachedBody) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            canonical,
            Entry {
                body,
                last_used: tick,
            },
        );
        while inner.entries.len() > self.capacity {
            // O(n) eviction scan: capacities are small (tens of grids) and
            // insertions happen once per *simulated* campaign, so this is
            // noise next to the simulation itself.
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity cache");
            inner.entries.remove(&oldest);
        }
    }

    /// False when capacity is 0 — callers can skip building bodies that
    /// [`ResultsCache::insert`] would discard anyway.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of cached bodies.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> CachedBody {
        CachedBody::new(s.as_bytes().to_vec())
    }

    #[test]
    fn hit_returns_the_inserted_bytes() {
        let cache = ResultsCache::new(4);
        assert!(cache.get("a").is_none());
        cache.insert("a".into(), body("records"));
        assert_eq!(cache.get("a").unwrap().as_slice(), b"records");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let cache = ResultsCache::new(2);
        cache.insert("a".into(), body("A"));
        cache.insert("b".into(), body("B"));
        assert!(cache.get("a").is_some()); // refresh a; b is now LRU
        cache.insert("c".into(), body("C"));
        assert!(cache.get("b").is_none(), "b should have been evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultsCache::new(0);
        cache.insert("a".into(), body("A"));
        cache.memo_raw(b"raw".to_vec(), "a".into(), "hash");
        assert!(cache.get("a").is_none());
        assert!(cache.get_raw(b"raw").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn reinsert_replaces_the_body() {
        let cache = ResultsCache::new(2);
        cache.insert("a".into(), body("old"));
        cache.insert("a".into(), body("new"));
        assert_eq!(cache.get("a").unwrap().as_slice(), b"new");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn line_offsets_index_every_line_once() {
        let b = body("{\"index\":0}\n{\"index\":1}\n{\"index\":2}\n");
        assert_eq!(b.line_count(), 3);
        assert_eq!(b.len(), b.as_slice().len());
        let middle = b.slice_lines(1, 2).unwrap();
        assert_eq!(middle.as_slice(), b"{\"index\":1}\n");
        assert_eq!(middle.line_count(), 1);
        let tail = b.slice_lines(1, 3).unwrap();
        assert_eq!(tail.as_slice(), b"{\"index\":1}\n{\"index\":2}\n");
        // Slices of slices stay consistent (absolute offsets shared).
        assert_eq!(
            tail.slice_lines(1, 2).unwrap().as_slice(),
            b"{\"index\":2}\n"
        );
        // Out-of-range and empty slices are refused.
        assert!(b.slice_lines(0, 4).is_none());
        assert!(b.slice_lines(2, 2).is_none());
        assert!(b.slice_lines(3, 1).is_none());
        // Shared allocation: no bytes copied.
        let (bytes, start, end) = middle.share();
        assert_eq!(&bytes[start..end], middle.as_slice());
        assert_eq!(bytes.len(), b.len());
    }

    #[test]
    fn unterminated_tail_counts_as_a_line() {
        let b = body("a\nb");
        assert_eq!(b.line_count(), 2);
        assert_eq!(b.slice_lines(1, 2).unwrap().as_slice(), b"b");
        let empty = body("");
        assert_eq!(empty.line_count(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn raw_memo_skips_parsing_but_never_outlives_the_entry() {
        let cache = ResultsCache::new(1);
        cache.insert("canon-a".into(), body("A\n"));
        cache.memo_raw(b" { spaced a } ".to_vec(), "canon-a".into(), "hash-a");
        let (hit, hash) = cache.get_raw(b" { spaced a } ").expect("memoized hit");
        assert_eq!(hit.as_slice(), b"A\n");
        assert_eq!(&*hash, "hash-a");
        assert!(cache.get_raw(b"never seen").is_none());

        // Evict the entry (capacity 1): the memo must now miss, not serve
        // stale bytes.
        cache.insert("canon-b".into(), body("B\n"));
        assert!(cache.get("canon-a").is_none());
        assert!(cache.get_raw(b" { spaced a } ").is_none());
    }
}
