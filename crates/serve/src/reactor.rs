//! The nonblocking I/O core of the daemon: one event-loop thread
//! multiplexing every connection over a readiness poller (`vendor/polling`
//! — epoll on Linux), nonblocking sockets, and per-connection outbound
//! queues.
//!
//! Division of labor with [`crate::server`]:
//!
//! * the **reactor** (this module) accepts, reads, parses requests out of
//!   per-connection buffers, answers everything cheap in-line (health,
//!   stats, errors, 503 sheds, and zero-copy cache hits), and owns all
//!   socket writes;
//! * **campaign misses** are handed to the executor pool as [`Job`]s; the
//!   executor streams chunk-framed records into the connection's
//!   [`Outbound`] queue (blocking on its high-water mark — a slow client
//!   stalls its own queue, never a simulation thread or the event loop)
//!   and the reactor drains the queue as the socket accepts bytes.
//!
//! Connections are keep-alive by default (HTTP/1.1): requests are parsed
//! back-to-back out of the receive buffer and pipelined requests drain in
//! order, because parsing pauses while a streamed response is in flight
//! and resumes the moment it completes. `Connection: close` (or HTTP/1.0)
//! is honored by flushing and closing. Deadlines bound every direction:
//! a half-sent request (read), a client that stops reading mid-response
//! (write stall), and an idle keep-alive connection (idle) are all
//! reaped by the sweep without blocking anything else.

use crate::http::{self, Request, RequestError};
use crate::server::{Job, State, Stats};
use joss_sweep::GridDesc;
use joss_telemetry::catalog as tm;
use joss_telemetry::trace;
use polling::Event;
use std::collections::HashMap;
use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Poller key of the listening socket; connections count up from 1.
const LISTENER_KEY: usize = 0;
/// Outbound bytes above which the executor's `push_blocking` waits for the
/// socket to drain (per connection).
pub(crate) const OUT_HIGH_WATER: usize = 256 * 1024;
/// Outbound bytes above which the reactor stops parsing further pipelined
/// requests on that connection until the backlog drains.
const OUT_PARSE_PAUSE: usize = 1024 * 1024;
/// Hard cap on unparsed received bytes; a connection pipelining past this
/// while responses are pending is dropped as abusive.
const IN_MAX_BUFFER: usize = 2 * 1024 * 1024;
/// Poll tick used for deadline sweeps.
const SWEEP_TICK: Duration = Duration::from_millis(50);
/// Outbound bytes above which a due `/v1/watch` snapshot is dropped
/// instead of queued — a watcher that stops reading gets gaps, not an
/// unbounded queue (and eventually the write-stall reaper).
const WATCH_DROP_WATER: usize = 64 * 1024;
/// How often the reactor refreshes the scrape-sampled gauges outside of
/// `/metrics` scrapes, so the background time-series sampler sees live
/// queue-depth and active-campaign values.
const GAUGE_REFRESH: Duration = Duration::from_secs(1);

// ---------------------------------------------------------------------------
// Outbound queue
// ---------------------------------------------------------------------------

/// One queued span of response bytes.
pub(crate) enum Seg {
    /// Bytes owned by the queue (heads, small JSON responses, chunk
    /// frames).
    Owned(Vec<u8>),
    /// A window into a shared cache body — the zero-copy hit path queues
    /// the `Arc` and two indices; the bytes are written straight from the
    /// cache allocation by the vectored writer.
    Shared {
        bytes: Arc<[u8]>,
        start: usize,
        end: usize,
    },
}

impl Seg {
    fn bytes(&self) -> &[u8] {
        match self {
            Seg::Owned(v) => v,
            Seg::Shared { bytes, start, end } => &bytes[*start..*end],
        }
    }

    fn len(&self) -> usize {
        match self {
            Seg::Owned(v) => v.len(),
            Seg::Shared { start, end, .. } => end - start,
        }
    }
}

struct OutboundState {
    segs: std::collections::VecDeque<(Seg, usize)>,
    /// Unsent bytes across all segments.
    queued: usize,
    /// The executor finished the in-flight streamed response.
    stream_done: bool,
    /// The connection is gone (or dying): producers must stop.
    closed: bool,
}

/// What [`Outbound::flush`] observed.
pub(crate) struct FlushOutcome {
    pub remaining: usize,
    /// The streamed response completed *and* fully drained; consumed
    /// (reset) by this call — act on it exactly once.
    pub took_stream_done: bool,
    pub progressed: bool,
    pub closed: bool,
}

/// Per-connection outbound byte queue, shared between the reactor (drains
/// into the socket) and one executor job at a time (produces chunks).
pub(crate) struct Outbound {
    inner: Mutex<OutboundState>,
    drained: Condvar,
}

impl Outbound {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Outbound {
            inner: Mutex::new(OutboundState {
                segs: std::collections::VecDeque::new(),
                queued: 0,
                stream_done: false,
                closed: false,
            }),
            drained: Condvar::new(),
        })
    }

    /// Reactor-side enqueue (never blocks; the reactor enforces
    /// [`OUT_PARSE_PAUSE`] instead).
    fn push(&self, seg: Seg) {
        let mut st = self.inner.lock().expect("outbound lock");
        if st.closed {
            return;
        }
        st.queued += seg.len();
        st.segs.push_back((seg, 0));
    }

    /// Executor-side enqueue: waits while the queue is at or above
    /// [`OUT_HIGH_WATER`]. Returns `false` once the connection is closed —
    /// the producer should stop writing (and finish simulating for the
    /// cache only).
    pub(crate) fn push_blocking(&self, seg: Seg) -> bool {
        let mut st = self.inner.lock().expect("outbound lock");
        loop {
            if st.closed {
                return false;
            }
            if st.queued < OUT_HIGH_WATER {
                break;
            }
            let (next, _) = self
                .drained
                .wait_timeout(st, Duration::from_millis(100))
                .expect("outbound lock");
            st = next;
        }
        st.queued += seg.len();
        st.segs.push_back((seg, 0));
        true
    }

    /// Executor-side: the streamed response is complete (all of it is in
    /// the queue).
    pub(crate) fn finish_stream(&self) {
        let mut st = self.inner.lock().expect("outbound lock");
        st.stream_done = true;
    }

    /// Unsent bytes currently queued.
    fn queued(&self) -> usize {
        self.inner.lock().expect("outbound lock").queued
    }

    /// Tear down: drop queued bytes and unblock any producer.
    pub(crate) fn close(&self) {
        let mut st = self.inner.lock().expect("outbound lock");
        st.closed = true;
        st.segs.clear();
        st.queued = 0;
        st.stream_done = false;
        self.drained.notify_all();
    }

    /// Write as much queued data as the socket accepts, gathering up to
    /// eight segments per `writev` — a cache hit (owned head + shared
    /// body) goes out in one syscall without copying the body.
    fn flush(&self, stream: &mut TcpStream) -> io::Result<FlushOutcome> {
        let mut st = self.inner.lock().expect("outbound lock");
        if st.closed {
            return Ok(FlushOutcome {
                remaining: 0,
                took_stream_done: false,
                progressed: false,
                closed: true,
            });
        }
        let mut progressed = false;
        while !st.segs.is_empty() {
            let written = {
                let mut bufs = [IoSlice::new(&[]); 8];
                let mut n = 0;
                for (seg, pos) in st.segs.iter() {
                    if n == bufs.len() {
                        break;
                    }
                    bufs[n] = IoSlice::new(&seg.bytes()[*pos..]);
                    n += 1;
                }
                match stream.write_vectored(&bufs[..n]) {
                    Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                    Ok(w) => w,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            progressed = true;
            st.queued -= written;
            let mut left = written;
            while left > 0 {
                let (seg, pos) = st.segs.front_mut().expect("accounted segment");
                let rem = seg.len() - *pos;
                if left >= rem {
                    left -= rem;
                    st.segs.pop_front();
                } else {
                    *pos += left;
                    left = 0;
                }
            }
        }
        let took_stream_done = st.segs.is_empty() && st.stream_done;
        if took_stream_done {
            st.stream_done = false;
        }
        if progressed {
            self.drained.notify_all();
        }
        Ok(FlushOutcome {
            remaining: st.queued,
            took_stream_done,
            progressed,
            closed: false,
        })
    }
}

// ---------------------------------------------------------------------------
// Connections and the event loop
// ---------------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    inbuf: Vec<u8>,
    /// Bytes at the front of `inbuf` already consumed by the parser.
    parsed: usize,
    out: Arc<Outbound>,
    /// A streamed (miss) response is in flight; parsing is paused.
    streaming: bool,
    /// Flush everything, then close (Connection: close, framing errors,
    /// shutdown).
    close_after_flush: bool,
    /// Write interest currently registered with the poller.
    wants_writable: bool,
    last_read: Instant,
    /// Last time a flush moved bytes into the socket (or emptied the
    /// queue). With bytes queued and no progress past the write timeout,
    /// the connection is a stalled reader and gets reaped.
    last_progress: Instant,
}

impl Conn {
    fn has_partial_request(&self) -> bool {
        self.parsed < self.inbuf.len()
    }
}

/// Cap the kernel send buffer on an accepted socket. The daemon keeps its
/// own bounded outbound queue per connection ([`OUT_HIGH_WATER`]); an
/// autotuned multi-megabyte kernel buffer underneath it would only hide
/// stalled readers from the write deadline (bytes "progress" into the
/// kernel while the peer reads nothing) and multiply per-connection
/// memory. The kernel doubles the requested value for bookkeeping.
#[cfg(target_os = "linux")]
fn cap_send_buffer(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    let val: i32 = 128 * 1024;
    let _ = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_SNDBUF,
            &val as *const i32 as *const u8,
            std::mem::size_of::<i32>() as u32,
        )
    };
}

#[cfg(not(target_os = "linux"))]
fn cap_send_buffer(_stream: &TcpStream) {}

/// One `/v1/watch` subscription: the reactor pushes a chunk-framed
/// progress snapshot into the connection's queue every `interval` until
/// the client disconnects (or `remaining` runs out).
struct Watch {
    interval: Duration,
    due: Instant,
    /// Snapshots left to send (`?n=`); `None` streams until disconnect.
    remaining: Option<u64>,
}

pub(crate) fn run(listener: TcpListener, state: Arc<State>) -> io::Result<()> {
    Reactor {
        listener,
        state,
        conns: HashMap::new(),
        watches: HashMap::new(),
        next_key: LISTENER_KEY + 1,
        events: Vec::new(),
        last_gauge_refresh: Instant::now(),
    }
    .run()
}

struct Reactor {
    listener: TcpListener,
    state: Arc<State>,
    conns: HashMap<usize, Conn>,
    /// Connections subscribed to `/v1/watch`, by connection key.
    watches: HashMap<usize, Watch>,
    next_key: usize,
    events: Vec<Event>,
    last_gauge_refresh: Instant,
}

impl Reactor {
    fn run(mut self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        self.state
            .poller
            .add(&self.listener, Event::readable(LISTENER_KEY))?;
        let mut shutting_down = false;
        let result = loop {
            let mut events = std::mem::take(&mut self.events);
            if let Err(e) = self.state.poller.wait(&mut events, Some(SWEEP_TICK)) {
                self.events = events;
                break Err(e);
            }
            for &ev in &events {
                if ev.key == LISTENER_KEY {
                    if !shutting_down && ev.readable {
                        self.accept();
                    }
                    continue;
                }
                if ev.readable {
                    self.read_ready(ev.key);
                }
                if ev.writable {
                    self.service(ev.key);
                }
            }
            self.events = events;

            // Executor-side completions and chunk pushes.
            let wakes = std::mem::take(&mut *self.state.wakes.lock().expect("wake list"));
            for key in wakes {
                self.service(key);
            }

            self.push_watch_frames();
            self.sweep_deadlines();

            // Keep the scrape-sampled gauges fresh for the background
            // time-series sampler even when nothing scrapes `/metrics`.
            if self.last_gauge_refresh.elapsed() >= GAUGE_REFRESH {
                self.last_gauge_refresh = Instant::now();
                tm::SERVE_EXECUTOR_QUEUE_DEPTH.set(self.state.jobs.len() as i64);
                tm::SERVE_ACTIVE_CAMPAIGNS.set(
                    self.state
                        .active_campaigns
                        .lock()
                        .expect("active campaigns")
                        .len() as i64,
                );
            }

            if self.state.shutdown.load(Ordering::Acquire) {
                if !shutting_down {
                    shutting_down = true;
                    let _ = self.state.poller.delete(&self.listener);
                    // Watch streams are open-ended: terminate them cleanly
                    // so their connections can flush and close.
                    self.finish_watches();
                    // Existing connections finish what is in flight, then
                    // close; idle ones close now.
                    let keys: Vec<usize> = self.conns.keys().copied().collect();
                    for key in keys {
                        if let Some(conn) = self.conns.get_mut(&key) {
                            conn.close_after_flush = true;
                        }
                        self.service(key);
                    }
                }
                if self.conns.is_empty() && self.state.active_jobs.load(Ordering::Acquire) == 0 {
                    break Ok(());
                }
            }
        };
        for (_, conn) in self.conns.drain() {
            conn.out.close();
            let _ = self.state.poller.delete(&conn.stream);
        }
        result
    }

    fn accept(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    cap_send_buffer(&stream);
                    let key = self.next_key;
                    self.next_key += 1;
                    if self
                        .state
                        .poller
                        .add(&stream, Event::readable(key))
                        .is_err()
                    {
                        Stats::bump(&self.state.stats.io_errors, &tm::SERVE_IO_ERRORS);
                        continue;
                    }
                    Stats::bump(&self.state.stats.connections, &tm::SERVE_CONNECTIONS);
                    self.conns.insert(
                        key,
                        Conn {
                            stream,
                            inbuf: Vec::new(),
                            parsed: 0,
                            out: Outbound::new(),
                            streaming: false,
                            close_after_flush: false,
                            wants_writable: false,
                            last_read: Instant::now(),
                            last_progress: Instant::now(),
                        },
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    Stats::bump(&self.state.stats.io_errors, &tm::SERVE_IO_ERRORS);
                    break;
                }
            }
        }
    }

    fn remove(&mut self, key: usize, io_error: bool) {
        self.watches.remove(&key);
        if let Some(conn) = self.conns.remove(&key) {
            if io_error {
                Stats::bump(&self.state.stats.io_errors, &tm::SERVE_IO_ERRORS);
            }
            // A job still streaming into this queue observes the close,
            // stops producing output, and finishes into the cache.
            conn.out.close();
            let _ = self.state.poller.delete(&conn.stream);
        }
    }

    /// Drain the socket's receive buffer into the connection buffer.
    fn read_ready(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // Peer closed. Mid-request or mid-stream that is an
                    // abnormal drop; between requests it is a clean end of
                    // a keep-alive session — and so is a watcher hanging
                    // up on its open-ended `/v1/watch` stream, which is
                    // that endpoint's documented way to unsubscribe.
                    let abnormal = (conn.has_partial_request() || conn.streaming)
                        && !self.watches.contains_key(&key);
                    self.remove(key, abnormal);
                    return;
                }
                Ok(n) => {
                    conn.last_read = Instant::now();
                    conn.inbuf.extend_from_slice(&buf[..n]);
                    if conn.inbuf.len() - conn.parsed > IN_MAX_BUFFER {
                        self.remove(key, true);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.remove(key, true);
                    return;
                }
            }
        }
        self.service(key);
    }

    /// Parse and route every complete request currently allowed, then
    /// flush outbound bytes; repeat when a streamed response completed in
    /// between (its pipelined successors are now unblocked).
    fn service(&mut self, key: usize) {
        loop {
            if !self.conns.contains_key(&key) {
                return;
            }
            self.parse_requests(key);
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            let outcome = match conn.out.flush(&mut conn.stream) {
                Ok(o) => o,
                Err(_) => {
                    self.remove(key, true);
                    return;
                }
            };
            if outcome.closed {
                // The executor tore the stream down (handler panic).
                self.remove(key, false);
                return;
            }
            if outcome.progressed || outcome.remaining == 0 {
                conn.last_progress = Instant::now();
            }
            if outcome.took_stream_done {
                conn.streaming = false;
                // Pipelined requests behind the stream are now parseable.
                continue;
            }
            let want_w = outcome.remaining > 0;
            if want_w != conn.wants_writable {
                let ev = if want_w {
                    Event::all(key)
                } else {
                    Event::readable(key)
                };
                if self.state.poller.modify(&conn.stream, ev).is_err() {
                    self.remove(key, true);
                    return;
                }
                conn.wants_writable = want_w;
            }
            if conn.close_after_flush && !conn.streaming && outcome.remaining == 0 {
                self.remove(key, false);
            }
            return;
        }
    }

    fn parse_requests(&mut self, key: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            if conn.streaming || conn.close_after_flush {
                break;
            }
            {
                let st = conn.out.inner.lock().expect("outbound lock");
                if st.queued > OUT_PARSE_PAUSE {
                    break;
                }
            }
            match http::parse_request(&conn.inbuf[conn.parsed..], self.state.config.max_body) {
                Ok(None) => break,
                Ok(Some((request, used))) => {
                    conn.parsed += used;
                    self.route(key, request);
                }
                Err(err) => {
                    self.framing_error(key, err);
                    break;
                }
            }
        }
        // Compact the receive buffer once the parser has moved past a
        // chunk of it.
        if let Some(conn) = self.conns.get_mut(&key) {
            if conn.parsed > 0 && (conn.parsed == conn.inbuf.len() || conn.parsed >= 16 * 1024) {
                conn.inbuf.drain(..conn.parsed);
                conn.parsed = 0;
            }
        }
    }

    /// A request that cannot be framed: answer with its status and close —
    /// the connection's byte stream is not recoverable.
    fn framing_error(&mut self, key: usize, err: RequestError) {
        Stats::bump(&self.state.stats.bad_requests, &tm::SERVE_BAD_REQUESTS);
        let (status, msg) = match err {
            RequestError::Malformed(m) => (400, m),
            RequestError::LengthRequired => (411, "Content-Length required".into()),
            RequestError::BodyTooLarge { limit } => (413, format!("body exceeds {limit} bytes")),
            RequestError::Io(_) => unreachable!("parse_request does no I/O"),
        };
        // No parsed head to adopt a trace id from; mint one so even a
        // framing failure is attributable.
        let rid = trace::format_id(trace::new_trace_id());
        let bytes = http::json_response_with(
            status,
            &error_json(&msg),
            true,
            &[("X-Joss-Request-Id", &rid)],
        );
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.out.push(Seg::Owned(bytes));
            conn.close_after_flush = true;
        }
    }

    fn respond(&mut self, key: usize, bytes: Vec<u8>) {
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.out.push(Seg::Owned(bytes));
        }
    }

    fn route(&mut self, key: usize, request: Request) {
        let state = Arc::clone(&self.state);
        Stats::bump(&state.stats.requests, &tm::SERVE_REQUESTS);
        let keep = request.keep_alive();
        // Adopt the client's `X-Joss-Trace` id (the fleet coordinator
        // sends one per campaign, stitching backend traces into its own);
        // mint a fresh id otherwise. Its 16-hex spelling is the
        // `X-Joss-Request-Id` echoed on every response — including 4xx,
        // 503 sheds, and streamed 200s — so any answer this daemon gives
        // is attributable in logs, traces, and panic accounting.
        let tid = request
            .header("x-joss-trace")
            .and_then(trace::parse_id)
            .unwrap_or_else(trace::new_trace_id);
        let rid = trace::format_id(tid);
        let _span = trace::Span::with_trace(
            tid,
            "request",
            format!("{} {} {rid}", request.method, request.path),
        );
        state.note_request(&rid);
        let (path, query) = split_query(&request.path);
        let debug_panic = request.header("x-joss-debug-panic").is_some();
        match (request.method.as_str(), path) {
            // Besides liveness, /healthz carries everything a fleet
            // coordinator needs to decide whether this backend's records
            // can be merged with another's: the training parameters
            // (records are byte-identical only across equal train
            // seed/reps), the record wire schema, and the build version.
            ("GET", "/healthz") => {
                self.respond(
                    key,
                    http::json_response_with(
                        200,
                        &state.health_json(),
                        !keep,
                        &[("X-Joss-Request-Id", &rid)],
                    ),
                );
            }
            ("GET", "/stats") => {
                self.respond(
                    key,
                    http::json_response_with(
                        200,
                        &state.stats_json(),
                        !keep,
                        &[("X-Joss-Request-Id", &rid)],
                    ),
                );
            }
            // Prometheus text exposition of the whole process-global
            // catalog. Scrape-sampled gauges are set here, from instance
            // state, right before rendering.
            ("GET", "/metrics") => {
                tm::SERVE_EXECUTOR_QUEUE_DEPTH.set(state.jobs.len() as i64);
                tm::SERVE_ACTIVE_CAMPAIGNS.set(
                    state
                        .active_campaigns
                        .lock()
                        .expect("active campaigns")
                        .len() as i64,
                );
                let body = joss_telemetry::render_prometheus();
                let len = body.len().to_string();
                let mut bytes = Vec::with_capacity(192 + body.len());
                http::head_bytes(
                    &mut bytes,
                    200,
                    &[
                        ("Content-Type", "text/plain; version=0.0.4"),
                        ("Content-Length", &len),
                        ("X-Joss-Request-Id", &rid),
                    ],
                    !keep,
                );
                bytes.extend_from_slice(body.as_bytes());
                self.respond(key, bytes);
            }
            // Live campaign progress: one point-in-time JSON snapshot.
            ("GET", "/v1/progress") => {
                self.respond(
                    key,
                    http::json_response_with(
                        200,
                        &state.progress_json(),
                        !keep,
                        &[("X-Joss-Request-Id", &rid)],
                    ),
                );
            }
            // Streaming progress: chunk-framed NDJSON snapshots pushed
            // every `interval_ms` (default 1 s) until the client hangs up
            // (or `n` snapshots have been sent). The first snapshot goes
            // out immediately.
            ("GET", "/v1/watch") => {
                let interval_ms = query_param(query, "interval_ms")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(1000)
                    .clamp(20, 60_000);
                let remaining = query_param(query, "n")
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n > 0);
                let mut head = Vec::with_capacity(256);
                http::head_bytes(
                    &mut head,
                    200,
                    &[
                        ("Content-Type", "application/x-ndjson"),
                        ("X-Joss-Request-Id", &rid),
                        ("Transfer-Encoding", "chunked"),
                    ],
                    !keep,
                );
                let mut line = state.progress_json().into_bytes();
                line.push(b'\n');
                let mut frame = Vec::with_capacity(line.len() + 16);
                http::encode_chunk(&line, &mut frame);
                if let Some(conn) = self.conns.get_mut(&key) {
                    conn.out.push(Seg::Owned(head));
                    conn.out.push(Seg::Owned(frame));
                    let remaining = remaining.map(|n| n - 1);
                    if remaining == Some(0) {
                        conn.out.push(Seg::Owned(http::CHUNK_TERMINATOR.to_vec()));
                        conn.out.finish_stream();
                    } else {
                        // Parsing pauses while the open-ended stream is in
                        // flight; the periodic frames come from
                        // `push_watch_frames`.
                        conn.streaming = true;
                        let interval = Duration::from_millis(interval_ms);
                        self.watches.insert(
                            key,
                            Watch {
                                interval,
                                due: Instant::now() + interval,
                                remaining,
                            },
                        );
                    }
                }
            }
            // Derived rates over the sampler's ring. `?window_secs=N`
            // bounds the lookback; `?sample=1` forces a sample first
            // (deterministic tests; impatient operators).
            ("GET", "/v1/timeseries") => {
                if query_param(query, "sample").is_some_and(|v| v != "0") {
                    joss_telemetry::timeseries::sample_now();
                }
                let window = query_param(query, "window_secs")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(60)
                    .clamp(1, 3600);
                let body = joss_telemetry::timeseries::render_json(Duration::from_secs(window));
                self.respond(
                    key,
                    http::json_response_with(200, &body, !keep, &[("X-Joss-Request-Id", &rid)]),
                );
            }
            // On-demand flight dump: build the artifact, persist it when
            // a `--flight-dir` is configured, and return it inline either
            // way.
            ("GET", "/debug/flight") => {
                let body = crate::flight::flight_json(&state, "on-demand", &rid, None);
                crate::flight::persist(&state, "on-demand", &rid, &body);
                self.respond(
                    key,
                    http::json_response_with(200, &body, !keep, &[("X-Joss-Request-Id", &rid)]),
                );
            }
            ("POST", "/v1/campaign") => {
                self.campaign(key, request.body, keep, rid, tid, debug_panic)
            }
            (_, "/v1/campaign")
            | (_, "/healthz")
            | (_, "/stats")
            | (_, "/metrics")
            | (_, "/v1/progress")
            | (_, "/v1/watch")
            | (_, "/v1/timeseries")
            | (_, "/debug/flight") => {
                Stats::bump(&state.stats.bad_requests, &tm::SERVE_BAD_REQUESTS);
                self.respond(
                    key,
                    http::json_response_with(
                        405,
                        &error_json("method not allowed"),
                        !keep,
                        &[("X-Joss-Request-Id", &rid)],
                    ),
                );
            }
            _ => {
                Stats::bump(&state.stats.bad_requests, &tm::SERVE_BAD_REQUESTS);
                self.respond(
                    key,
                    http::json_response_with(
                        404,
                        &error_json("no such endpoint"),
                        !keep,
                        &[("X-Joss-Request-Id", &rid)],
                    ),
                );
            }
        }
        if !keep {
            if let Some(conn) = self.conns.get_mut(&key) {
                conn.close_after_flush = true;
            }
        }
    }

    /// The campaign endpoint: memoized raw-body hit → parse → cache →
    /// shard-of-cached-parent slice → admission → executor job.
    fn campaign(
        &mut self,
        key: usize,
        raw: Vec<u8>,
        keep: bool,
        rid: String,
        tid: u64,
        debug_panic: bool,
    ) {
        let state = Arc::clone(&self.state);
        // The scrape-consistency identity (asserted by tests and the CI
        // gate): every request counted here leaves through exactly one of
        // campaign_hits / campaigns_admitted / rejected_503 /
        // campaign_errors. Executor-side 400s (validation after
        // admission) count as admitted — they held a permit.
        tm::SERVE_CAMPAIGN_REQUESTS.inc();

        // Zero-parse fast path: a byte-identical request seen before maps
        // straight to its cached body — no JSON parsing, no
        // canonicalization, no grid resolution.
        if let Some((body, hash)) = state.cache.get_raw(&raw) {
            Stats::bump(&state.stats.cache_hits, &tm::SERVE_CACHE_HITS);
            tm::SERVE_CAMPAIGN_HITS.inc();
            self.serve_hit(key, &body, &hash, keep, &rid);
            return;
        }

        let bad = |this: &mut Self, msg: &str| {
            Stats::bump(&state.stats.bad_requests, &tm::SERVE_BAD_REQUESTS);
            tm::SERVE_CAMPAIGN_ERRORS.inc();
            this.respond(
                key,
                http::json_response_with(
                    400,
                    &error_json(msg),
                    !keep,
                    &[("X-Joss-Request-Id", &rid)],
                ),
            );
        };

        let desc = match std::str::from_utf8(&raw)
            .map_err(|_| "request body must be UTF-8 JSON".to_string())
            .and_then(GridDesc::from_json)
        {
            Ok(d) => d,
            Err(e) => return bad(self, &e),
        };
        // Everything up to the admission gate works on the description
        // alone: resolving a grid instantiates the whole benchmark suite
        // at the requested scale, which is exactly the work the cache and
        // the semaphore exist to bound, so it must not happen for hits,
        // sheds, or oversized requests. The spec cap gates the work this
        // request *runs* (the shard's slice, not the grid it is cut from).
        let run_count = desc.run_count();
        if run_count > state.config.max_specs {
            return bad(
                self,
                &format!(
                    "request runs {run_count} specs, above this daemon's limit of {}",
                    state.config.max_specs
                ),
            );
        }

        let canonical = desc.to_canonical_json();
        let hash = format!("{:016x}", desc.spec_hash());

        // Cache: repeated identical grids are served from memory, no
        // permit needed; memoize the raw spelling so the next replay skips
        // the parse too.
        if let Some(body) = state.cache.get(&canonical) {
            Stats::bump(&state.stats.cache_hits, &tm::SERVE_CACHE_HITS);
            tm::SERVE_CAMPAIGN_HITS.inc();
            state.cache.memo_raw(raw, canonical, &hash);
            self.serve_hit(key, &body, &hash, keep, &rid);
            return;
        }

        // A shard of a grid whose *full* body is cached is a slice between
        // two precomputed line offsets — served as a hit, no simulation.
        if let Some(range) = desc.shard {
            let mut parent = desc.clone();
            parent.shard = None;
            if let Some(parent_body) = state.cache.get(&parent.to_canonical_json()) {
                if let Some(slice) = parent_body.slice_lines(range.start, range.end) {
                    Stats::bump(&state.stats.cache_hits, &tm::SERVE_CACHE_HITS);
                    tm::SERVE_CAMPAIGN_HITS.inc();
                    state.cache.insert(canonical.clone(), slice.clone());
                    state.cache.memo_raw(raw, canonical, &hash);
                    self.serve_hit(key, &slice, &hash, keep, &rid);
                    return;
                }
            }
        }

        // Content-addressed store: when every spec of the requested range
        // was already deposited by earlier campaigns over the same base
        // grid — however their ranges were cut — assemble the body from
        // stored lines and serve it as a hit without touching an
        // executor. (Partial coverage is handled on the executor side,
        // which simulates only the gaps.)
        let index_base = desc.index_base();
        if let Some(lines) = state.store.lookup_range(
            &desc.to_base_canonical_json(),
            index_base,
            index_base + run_count,
        ) {
            let mut bytes = Vec::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
            for line in &lines {
                bytes.extend_from_slice(line.as_bytes());
                bytes.push(b'\n');
            }
            Stats::bump(&state.stats.store_hits, &tm::SERVE_STORE_HITS);
            tm::SERVE_CAMPAIGN_HITS.inc();
            let body = crate::cache::CachedBody::new(bytes);
            state.cache.insert(canonical.clone(), body.clone());
            state.cache.memo_raw(raw, canonical, &hash);
            self.serve_hit(key, &body, &hash, keep, &rid);
            return;
        }

        // Admission: shed load instead of oversubscribing the simulation
        // pool.
        let Some(permit) = state.admission.try_acquire() else {
            Stats::bump(&state.stats.rejected_503, &tm::SERVE_REJECTED_503);
            let json = error_json("simulation pool saturated; retry shortly");
            let len = json.len().to_string();
            let mut bytes = Vec::with_capacity(192 + json.len());
            http::head_bytes(
                &mut bytes,
                503,
                &[
                    ("Content-Type", "application/json"),
                    ("Content-Length", &len),
                    ("Retry-After", "1"),
                    ("X-Joss-Request-Id", &rid),
                ],
                !keep,
            );
            bytes.extend_from_slice(json.as_bytes());
            self.respond(key, bytes);
            return;
        };

        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        conn.streaming = true;
        state.active_jobs.fetch_add(1, Ordering::AcqRel);
        tm::SERVE_CAMPAIGNS_ADMITTED.inc();
        state.jobs.push(Job {
            key,
            out: Arc::clone(&conn.out),
            desc,
            canonical,
            raw_body: raw,
            hash,
            run_count,
            close_after: !keep,
            request_id: rid,
            trace: tid,
            debug_panic,
            permit,
        });
    }

    /// Push a chunk-framed progress snapshot into every `/v1/watch`
    /// subscription whose interval elapsed. A subscription whose queue is
    /// already deep ([`WATCH_DROP_WATER`]) skips this snapshot — watchers
    /// get gaps, never an unbounded queue.
    fn push_watch_frames(&mut self) {
        if self.watches.is_empty() {
            return;
        }
        let now = Instant::now();
        let due: Vec<usize> = self
            .watches
            .iter()
            .filter(|(_, w)| now >= w.due)
            .map(|(&k, _)| k)
            .collect();
        if due.is_empty() {
            return;
        }
        // One snapshot per tick serves every due watcher.
        let mut line = self.state.progress_json().into_bytes();
        line.push(b'\n');
        for key in due {
            let Some(conn) = self.conns.get_mut(&key) else {
                self.watches.remove(&key);
                continue;
            };
            let watch = self.watches.get_mut(&key).expect("due watch");
            watch.due = now + watch.interval;
            if conn.out.queued() < WATCH_DROP_WATER {
                let mut frame = Vec::with_capacity(line.len() + 16);
                http::encode_chunk(&line, &mut frame);
                conn.out.push(Seg::Owned(frame));
                if let Some(rem) = watch.remaining.as_mut() {
                    *rem -= 1;
                    if *rem == 0 {
                        conn.out.push(Seg::Owned(http::CHUNK_TERMINATOR.to_vec()));
                        conn.out.finish_stream();
                        self.watches.remove(&key);
                    }
                }
            }
            self.service(key);
        }
    }

    /// Terminate every open watch stream (shutdown): the chunked body
    /// ends cleanly and the connection becomes flushable/closable.
    fn finish_watches(&mut self) {
        let keys: Vec<usize> = self.watches.keys().copied().collect();
        for key in keys {
            self.watches.remove(&key);
            if let Some(conn) = self.conns.get_mut(&key) {
                conn.out.push(Seg::Owned(http::CHUNK_TERMINATOR.to_vec()));
                conn.out.finish_stream();
            }
        }
    }

    /// Serve a cached body: one owned head segment plus one shared body
    /// segment, written together by the vectored writer. No allocation
    /// touches the body bytes.
    fn serve_hit(
        &mut self,
        key: usize,
        body: &crate::cache::CachedBody,
        hash: &str,
        keep: bool,
        rid: &str,
    ) {
        let mut head = Vec::with_capacity(224);
        let _ = write!(
            head,
            "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
             X-Joss-Spec-Hash: {hash}\r\nX-Joss-Cache: hit\r\nX-Joss-Records: {}\r\n\
             X-Joss-Request-Id: {rid}\r\nContent-Length: {}\r\n",
            body.line_count(),
            body.len(),
        );
        if !keep {
            head.extend_from_slice(b"Connection: close\r\n");
        }
        head.extend_from_slice(b"\r\n");
        let (bytes, start, end) = body.share();
        if let Some(conn) = self.conns.get_mut(&key) {
            conn.out.push(Seg::Owned(head));
            conn.out.push(Seg::Shared { bytes, start, end });
        }
    }

    /// Close connections that blew a deadline: half-sent requests (read
    /// timeout), clients not draining their responses (write stall), and
    /// idle keep-alive sessions (idle timeout).
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let config = &self.state.config;
        let mut stalled: Vec<usize> = Vec::new();
        let mut idle: Vec<usize> = Vec::new();
        for (&key, conn) in self.conns.iter() {
            // A stalled reader: bytes queued, zero write progress. This
            // must be judged from the queue, not from events — a full
            // socket produces no further writable events to observe.
            if conn.out.queued() > 0
                && now.duration_since(conn.last_progress) > config.write_timeout
            {
                stalled.push(key);
                continue;
            }
            if conn.has_partial_request() && !conn.streaming {
                if now.duration_since(conn.last_read) > config.read_timeout {
                    stalled.push(key);
                }
            } else if !conn.streaming
                && conn.out.queued() == 0
                && now.duration_since(conn.last_read) > config.idle_timeout
            {
                idle.push(key);
            }
        }
        for key in stalled {
            self.remove(key, true);
        }
        for key in idle {
            self.remove(key, false);
        }
    }
}

pub(crate) fn error_json(msg: &str) -> String {
    format!("{{\"error\":{}}}", joss_sweep::json::quote(msg))
}

/// Split a request target into path and query: `/a/b?x=1` → (`/a/b`, `x=1`).
fn split_query(target: &str) -> (&str, &str) {
    match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    }
}

/// Value of `name` in an `x=1&y=2` query string (no percent-decoding —
/// every parameter this daemon accepts is numeric).
fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == name).then_some(v)
    })
}
