//! Observability-plane tests over real sockets: the progress and watch
//! endpoints, the time-series layer, the flight recorder (on demand and
//! from panic containment), and the loadgen's worst-request attribution.
//!
//! The load-bearing assertion is the panic one: killing a worker
//! mid-campaign must leave a flight artifact on disk that names the
//! panicking request id — the post-mortem trail the recorder exists for.

use joss_serve::{client, loadgen, LoadgenConfig, ServeConfig, Server, ServerHandle};
use joss_sweep::json::{self, Value};
use joss_sweep::{GridDesc, SchedulerKind};
use joss_workloads::Scale;
use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(120);

fn tiny_desc() -> GridDesc {
    GridDesc {
        workloads: vec!["DP".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    }
}

fn boot(configure: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        reps: 1,
        workers: 4,
        campaign_threads: 2,
        ..ServeConfig::default()
    };
    configure(&mut config);
    Server::bind(config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

/// A fresh per-test scratch directory (no tempfile dependency).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("joss-flight-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn get_json(addr: &str, path: &str) -> Value {
    let response = client::get(addr, path, TIMEOUT).expect("GET");
    assert_eq!(response.status, 200, "{path}: {}", response.body_text());
    json::parse(&response.body_text()).unwrap_or_else(|e| panic!("{path} sent bad JSON: {e}"))
}

fn u64_at(v: &Value, path: &[&str]) -> Option<u64> {
    let mut cur = v;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_u64()
}

#[test]
fn progress_reports_campaign_totals_and_uptime() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();
    let response = client::run_campaign(&addr, &tiny_desc(), TIMEOUT).expect("campaign");
    assert_eq!(response.status, 200);

    let progress = get_json(&addr, "/v1/progress");
    assert_eq!(u64_at(&progress, &["progress_schema"]), Some(1));
    assert!(u64_at(&progress, &["uptime_secs"]).is_some());
    assert!(u64_at(&progress, &["executor_queue_depth"]).is_some());
    assert!(
        progress.get("active").and_then(Value::as_array).is_some(),
        "progress must always carry the active array"
    );
    assert!(u64_at(&progress, &["totals", "campaigns_executed"]) >= Some(1));
    assert!(u64_at(&progress, &["totals", "records_streamed"]) >= Some(2));
    assert_eq!(u64_at(&progress, &["totals", "handler_panics"]), Some(0));
    handle.stop().expect("clean shutdown");
}

#[test]
fn healthz_carries_uptime_and_telemetry_state() {
    let handle = boot(|_| {});
    let health = get_json(&handle.addr().to_string(), "/healthz");
    assert!(u64_at(&health, &["uptime_secs"]).is_some());
    let telemetry = health
        .get("telemetry")
        .and_then(Value::as_str)
        .expect("telemetry field");
    assert!(
        ["on", "disabled", "compiled-out"].contains(&telemetry),
        "unexpected telemetry state {telemetry:?}"
    );
    handle.stop().expect("clean shutdown");
}

#[test]
fn watch_streams_n_snapshots_then_ends_the_stream() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();
    let response =
        client::get(&addr, "/v1/watch?interval_ms=20&n=3", TIMEOUT).expect("watch stream");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("content-type"),
        Some("application/x-ndjson")
    );
    let body = response.body_text();
    let frames: Vec<&str> = body.lines().filter(|l| !l.is_empty()).collect();
    assert!(
        frames.len() >= 3,
        "asked for 3 snapshots, got {}: {body:?}",
        frames.len()
    );
    for frame in frames {
        let parsed = json::parse(frame).expect("each frame is one JSON object");
        assert_eq!(u64_at(&parsed, &["progress_schema"]), Some(1));
    }
    handle.stop().expect("clean shutdown");
}

#[test]
fn timeseries_endpoint_serves_sampled_history() {
    let handle = boot(|_| {});
    let series = get_json(&handle.addr().to_string(), "/v1/timeseries?sample=1");
    assert_eq!(u64_at(&series, &["timeseries_schema"]), Some(1));
    handle.stop().expect("clean shutdown");
}

#[test]
fn flight_endpoint_dumps_inline_and_persists_an_artifact() {
    let dir = scratch_dir("ondemand");
    let handle = boot(|c| c.flight_dir = Some(dir.to_string_lossy().into_owned()));
    let addr = handle.addr().to_string();
    let response = client::run_campaign(&addr, &tiny_desc(), TIMEOUT).expect("campaign");
    let rid = response
        .header("x-joss-request-id")
        .expect("request id header")
        .to_string();

    let flight = get_json(&addr, "/debug/flight");
    assert_eq!(u64_at(&flight, &["flight_schema"]), Some(1));
    assert_eq!(
        flight.get("reason").and_then(Value::as_str),
        Some("on-demand")
    );
    assert!(flight.get("stats").is_some());
    assert!(flight.get("metrics").and_then(Value::as_array).is_some());
    assert!(flight.get("trace_tail").and_then(Value::as_array).is_some());
    // The campaign that just ran is in the recent-request window.
    let recent = flight
        .get("recent_request_ids")
        .and_then(Value::as_array)
        .expect("recent request ids");
    assert!(
        recent.iter().any(|r| r.as_str() == Some(rid.as_str())),
        "recent ids {recent:?} should contain {rid}"
    );

    let artifacts: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("flight dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(artifacts.len(), 1, "one on-demand dump: {artifacts:?}");
    let text = std::fs::read_to_string(&artifacts[0]).expect("artifact readable");
    assert!(text.contains("\"flight_schema\":1"));
    json::parse(&text).expect("persisted artifact is valid JSON");
    handle.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_leaves_a_flight_artifact_naming_the_request() {
    let dir = scratch_dir("panic");
    let handle = boot(|c| c.flight_dir = Some(dir.to_string_lossy().into_owned()));
    let addr = handle.addr().to_string();

    // A known 16-hex trace id: the daemon adopts it as the request id, so
    // the artifact's attribution is checkable end to end.
    let rid = "deadbeefcafef00d";
    let mut desc = tiny_desc();
    desc.seeds = vec![0xdead]; // unique grid: defeat the cache, force a job
    let canonical = desc.to_canonical_json();
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    write!(
        stream,
        "POST /v1/campaign HTTP/1.1\r\nHost: {addr}\r\nX-Joss-Trace: {rid}\r\n\
         X-Joss-Debug-Panic: 1\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{canonical}",
        canonical.len()
    )
    .expect("send doomed campaign");
    // The worker panics instead of responding; the reactor drops the
    // connection. Whatever bytes (if any) arrive are irrelevant.
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink);

    // Panic containment runs on the worker thread; give it a moment.
    let deadline = Instant::now() + Duration::from_secs(10);
    let artifact = loop {
        let found = std::fs::read_dir(&dir)
            .expect("flight dir")
            .map(|e| e.expect("dir entry").path())
            .find(|p| p.to_string_lossy().contains(rid));
        match found {
            Some(path) => break path,
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            None => panic!("no flight artifact for {rid} appeared in {}", dir.display()),
        }
    };
    let text = std::fs::read_to_string(&artifact).expect("artifact readable");
    let flight = json::parse(&text).expect("artifact is valid JSON");
    assert_eq!(flight.get("reason").and_then(Value::as_str), Some("panic"));
    assert_eq!(
        flight.get("request_id").and_then(Value::as_str),
        Some(rid),
        "artifact must attribute the panic to the doomed request"
    );
    assert_eq!(
        flight
            .get("grid")
            .and_then(|g| g.get("seeds"))
            .and_then(Value::as_array)
            .and_then(|s| s.first())
            .and_then(Value::as_u64),
        Some(0xdead),
        "artifact must embed the offending grid"
    );
    // The trace ring's run-up made it into the artifact, and the daemon
    // itself counted the panic and kept serving.
    assert!(
        flight
            .get("trace_tail")
            .and_then(Value::as_array)
            .is_some_and(|t| !t.is_empty()),
        "trace tail must not be empty"
    );
    let progress = get_json(&addr, "/v1/progress");
    assert!(u64_at(&progress, &["totals", "handler_panics"]) >= Some(1));
    handle.stop().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn loadgen_attributes_its_worst_requests() {
    let handle = boot(|_| {});
    let mut config = LoadgenConfig::new(handle.addr().to_string(), tiny_desc());
    config.clients = 2;
    config.requests_per_client = 4;
    let report = loadgen::run(&config);
    assert_eq!(report.ok, 8, "all requests must succeed");
    assert!(!report.worst.is_empty(), "worst-request window is empty");
    assert!(report.worst.len() <= loadgen::WORST_K);
    for (latency, rid) in &report.worst {
        assert!(*latency > Duration::ZERO);
        assert_eq!(rid.len(), 16, "request id {rid:?} is not 16-hex");
        assert!(rid.chars().all(|c| c.is_ascii_hexdigit()));
    }
    // Sorted worst-first, and surfaced in the human summary.
    for pair in report.worst.windows(2) {
        assert!(pair[0].0 >= pair[1].0);
    }
    assert!(report.summary().contains("worst request ids"));
    handle.stop().expect("clean shutdown");
}
