//! Service-boundary tests: boot the daemon on an ephemeral port and drive
//! it over real sockets.
//!
//! The load-bearing assertion is **byte identity across the network hop**:
//! for the same grid description and training parameters, the JSONL a
//! client receives equals `Campaign::run_streaming` → `JsonlSink` run
//! offline, regardless of how many threads either side used.

use joss_serve::{client, loadgen, LoadgenConfig, ServeConfig, Server, ServerHandle};
use joss_sweep::{Campaign, ExperimentContext, GridDesc, JsonlSink, SchedulerKind};
use joss_workloads::Scale;
use std::sync::OnceLock;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(120);

/// Offline reference context — same (seed, reps) the test servers use.
fn offline_ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::with_reps(42, 1))
}

fn tiny_desc() -> GridDesc {
    GridDesc {
        workloads: vec!["DP".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    }
}

fn boot(configure: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        reps: 1,
        workers: 4,
        campaign_threads: 2,
        ..ServeConfig::default()
    };
    configure(&mut config);
    Server::bind(config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

/// The offline JSONL bytes for a description, single-threaded.
fn offline_jsonl(desc: &GridDesc) -> Vec<u8> {
    let specs = desc.resolve().expect("resolvable grid").build();
    let mut sink = JsonlSink::new(Vec::new());
    Campaign::with_threads(1).run_streaming(offline_ctx(), specs, |record| {
        sink.write(&record).expect("in-memory write");
    });
    sink.into_inner().expect("flush")
}

#[test]
fn streamed_body_is_byte_identical_to_offline_campaign() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();

    for desc in [
        tiny_desc(),
        GridDesc {
            workloads: vec!["DP".into(), "MM_256_dop4".into()],
            schedulers: vec![
                SchedulerKind::Grws,
                SchedulerKind::Aequitas(0.005),
                SchedulerKind::Joss,
            ],
            seeds: vec![42, 7],
            scale: Scale::Divided(400),
            record_trace: false,
            shard: None,
        },
    ] {
        let response = client::run_campaign(&addr, &desc, TIMEOUT).expect("campaign request");
        assert_eq!(response.status, 200, "{}", response.body_text());
        assert_eq!(response.header("x-joss-cache"), Some("miss"));
        assert_eq!(
            response.header("x-joss-records"),
            Some(desc.spec_count().to_string().as_str())
        );
        assert_eq!(
            response.header("x-joss-spec-hash"),
            Some(format!("{:016x}", desc.spec_hash()).as_str())
        );
        assert_eq!(
            client::verify_body(&desc, &response.body),
            Ok(desc.spec_count())
        );
        // Determinism must survive the network hop: the daemon simulated
        // this on 2 worker threads, the reference on 1.
        assert_eq!(
            response.body,
            offline_jsonl(&desc),
            "served JSONL diverged from the offline campaign"
        );
    }
    handle.stop().expect("clean shutdown");
}

#[test]
fn health_reports_training_identity_for_fleet_compatibility() {
    let handle = boot(|c| c.train_seed = 42);
    let addr = handle.addr().to_string();
    let health = client::get(&addr, "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    let parsed = joss_sweep::json::parse(&health.body_text()).expect("health JSON");
    assert_eq!(
        parsed
            .get("train_seed")
            .and_then(joss_sweep::json::Value::as_u64),
        Some(42)
    );
    assert_eq!(
        parsed.get("reps").and_then(joss_sweep::json::Value::as_u64),
        Some(1)
    );
    assert_eq!(
        parsed
            .get("schema")
            .and_then(joss_sweep::json::Value::as_str),
        Some(joss_sweep::RECORD_SCHEMA)
    );
    assert!(
        parsed
            .get("version")
            .and_then(joss_sweep::json::Value::as_str)
            .is_some(),
        "{}",
        health.body_text()
    );
    // /stats mirrors the identity fields.
    let stats = client::get(&addr, "/stats", TIMEOUT).expect("stats");
    let parsed = joss_sweep::json::parse(&stats.body_text()).expect("stats JSON");
    assert_eq!(
        parsed
            .get("train_seed")
            .and_then(joss_sweep::json::Value::as_u64),
        Some(42)
    );
    handle.stop().expect("clean shutdown");
}

#[test]
fn sharded_requests_stream_the_slice_with_global_indices() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();
    let desc = GridDesc {
        workloads: vec!["DP".into(), "MM_256_dop4".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    };
    let full = client::run_campaign(&addr, &desc, TIMEOUT).expect("full grid");
    assert_eq!(full.status, 200);
    let full_lines: Vec<&str> = std::str::from_utf8(&full.body).unwrap().lines().collect();
    assert_eq!(full_lines.len(), 4);

    // A mid-grid shard: record count reflects the slice, indices are
    // global, and the bytes are exactly the full body's middle lines.
    let sharded = desc.with_shard(joss_sweep::SpecRange::new(1, 3));
    let resp = client::run_campaign(&addr, &sharded, TIMEOUT).expect("sharded request");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(resp.header("x-joss-records"), Some("2"));
    assert_eq!(client::verify_body(&sharded, &resp.body), Ok(2));
    let expected = format!("{}\n{}\n", full_lines[1], full_lines[2]);
    assert_eq!(
        resp.body,
        expected.as_bytes(),
        "shard bytes must be the grid's slice"
    );

    // The shard is its own cache entry, replayed byte-identically.
    let again = client::run_campaign(&addr, &sharded, TIMEOUT).expect("repeat");
    assert_eq!(again.header("x-joss-cache"), Some("hit"));
    assert_eq!(again.body, resp.body);

    // Out-of-range and empty shards are client faults.
    for bad in [(2usize, 9usize), (3, 3)] {
        let body = format!(
            "{{\"workloads\":[\"DP\",\"MM_256_dop4\"],\"schedulers\":[\"grws\",\"joss\"],\
             \"seeds\":[42],\"scale\":400,\"record_trace\":false,\"shard\":[{},{}]}}",
            bad.0, bad.1
        );
        let r = client::post(&addr, "/v1/campaign", body.as_bytes(), TIMEOUT).unwrap();
        assert_eq!(r.status, 400, "shard {bad:?} must be rejected");
    }

    // The spec cap gates the *run* size, so one shard of a grid larger
    // than max_specs still serves — that is how a fleet feeds big grids
    // through small daemons.
    handle.stop().expect("clean shutdown");
    let handle = boot(|c| c.max_specs = 2);
    let addr = handle.addr().to_string();
    let r = client::run_campaign(&addr, &desc, TIMEOUT).unwrap();
    assert_eq!(r.status, 400, "4-spec grid is over the 2-spec cap");
    let r = client::run_campaign(
        &addr,
        &desc.with_shard(joss_sweep::SpecRange::new(1, 3)),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(r.status, 200, "{}", r.body_text());
    assert_eq!(r.body, expected.as_bytes());
    handle.stop().expect("clean shutdown");
}

#[test]
fn repeated_request_is_served_from_cache_without_resimulating() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();
    let desc = tiny_desc();

    let first = client::run_campaign(&addr, &desc, TIMEOUT).expect("first request");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-joss-cache"), Some("miss"));

    // Same grid, reformatted body (different key order + whitespace): the
    // canonical form must hit the same cache entry.
    let scrambled =
        "{ \"seeds\": [42],\n  \"scale\": 400, \"schedulers\": [\"grws\",\"joss\"],\n  \
         \"workloads\": [\"DP\"] }";
    let second =
        client::post(&addr, "/v1/campaign", scrambled.as_bytes(), TIMEOUT).expect("second request");
    assert_eq!(second.status, 200, "{}", second.body_text());
    assert_eq!(second.header("x-joss-cache"), Some("hit"));
    assert_eq!(second.body, first.body, "cache must replay identical bytes");

    let stats = client::get(&addr, "/stats", TIMEOUT).expect("stats");
    let parsed = joss_sweep::json::parse(&stats.body_text()).expect("stats JSON");
    let count = |key: &str| {
        parsed
            .get(key)
            .and_then(joss_sweep::json::Value::as_u64)
            .unwrap_or_else(|| panic!("stats missing {key}"))
    };
    assert_eq!(
        count("campaigns_executed"),
        1,
        "the repeat must not re-simulate"
    );
    assert_eq!(count("cache_hits"), 1);
    assert_eq!(count("cached_grids"), 1);
    handle.stop().expect("clean shutdown");
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    // max_inflight = 0: every campaign is shed — the deterministic way to
    // exercise the overload path.
    let handle = boot(|c| c.max_inflight = 0);
    let addr = handle.addr().to_string();

    let response = client::run_campaign(&addr, &tiny_desc(), TIMEOUT).expect("request");
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    assert!(response.body_text().contains("saturated"));

    // Degrading gracefully means everything that needs no simulation slot
    // still answers.
    let health = client::get(&addr, "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    let stats = client::get(&addr, "/stats", TIMEOUT).expect("stats");
    assert!(stats.body_text().contains("\"rejected_503\":1"));
    handle.stop().expect("clean shutdown");
}

#[test]
fn shed_requests_succeed_once_capacity_returns() {
    // One slot, several clients racing distinct grids: the loadgen's
    // retry-on-503 must land every request eventually.
    let handle = boot(|c| c.max_inflight = 1);
    let addr = handle.addr().to_string();
    let mut config = LoadgenConfig::new(addr, tiny_desc());
    config.clients = 3;
    config.requests_per_client = 2;
    config.vary_seeds = true; // distinct grids: no cache shortcuts
    let report = loadgen::run(&config);
    assert_eq!(report.ok, 6, "every request must eventually succeed");
    assert_eq!(report.malformed, 0, "{:?}", report.first_malformation);
    assert_eq!(report.errors, 0);
    assert_eq!(report.cache_hits, 0);
    handle.stop().expect("clean shutdown");
}

#[test]
fn protocol_errors_are_client_faults_not_crashes() {
    let handle = boot(|c| c.max_specs = 8);
    let addr = handle.addr().to_string();

    // Malformed JSON.
    let r = client::post(&addr, "/v1/campaign", b"{not json", TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    // Unknown workload label.
    let bad = "{\"workloads\":[\"NOPE\"],\"schedulers\":[\"joss\"]}";
    let r = client::post(&addr, "/v1/campaign", bad.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_text().contains("NOPE"), "{}", r.body_text());
    // Unknown scheduler.
    let bad = "{\"workloads\":[\"DP\"],\"schedulers\":[\"frobnicate\"]}";
    let r = client::post(&addr, "/v1/campaign", bad.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    // Well-formed but out-of-range fixed knob indices: must be a client
    // fault, never an engine panic that kills a worker.
    let bad = "{\"workloads\":[\"DP\"],\"schedulers\":[\"fixed:big:99:99:99\"]}";
    let r = client::post(&addr, "/v1/campaign", bad.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_text().contains("out of range"), "{}", r.body_text());
    // Grid above the daemon's spec cap.
    let mut big = tiny_desc();
    big.seeds = (0..9).collect(); // 1 workload x 2 schedulers x 9 seeds = 18 > 8
    let r = client::run_campaign(&addr, &big, TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_text().contains("limit"), "{}", r.body_text());
    // Wrong method / path.
    let r = client::get(&addr, "/v1/campaign", TIMEOUT).unwrap();
    assert_eq!(r.status, 405);
    let r = client::get(&addr, "/v1/nope", TIMEOUT).unwrap();
    assert_eq!(r.status, 404);
    // Oversized body.
    let huge = vec![b' '; 80 * 1024];
    let r = client::post(&addr, "/v1/campaign", &huge, TIMEOUT).unwrap();
    assert_eq!(r.status, 413);

    // After all that abuse the daemon still serves.
    let ok = client::run_campaign(&addr, &tiny_desc(), TIMEOUT).unwrap();
    assert_eq!(ok.status, 200);
    handle.stop().expect("clean shutdown");
}

#[test]
fn eight_concurrent_clients_stream_verified_records() {
    let handle = boot(|c| {
        c.workers = 12;
        c.max_inflight = 8;
    });
    let addr = handle.addr().to_string();
    let desc = tiny_desc();
    let per_request = desc.spec_count();

    let mut config = LoadgenConfig::new(addr.clone(), desc);
    config.clients = 8;
    config.requests_per_client = 3;
    let report = loadgen::run(&config);

    assert_eq!(
        report.ok, 24,
        "errors={} shed={}",
        report.errors, report.shed_503
    );
    assert_eq!(report.malformed, 0, "{:?}", report.first_malformation);
    assert_eq!(report.errors, 0);
    assert_eq!(report.records, 24 * per_request);
    assert!(
        report.cache_hits >= 16,
        "identical grids after the first must mostly hit the cache (got {})",
        report.cache_hits
    );
    assert_eq!(report.latencies.len(), 24);
    assert!(report.throughput_rps() > 0.0);

    // The saved body diffs clean against the offline reference too.
    let body = report.first_body.expect("a saved body");
    assert_eq!(body, offline_jsonl(&tiny_desc()));
    handle.stop().expect("clean shutdown");
}

#[test]
fn open_loop_pacing_spreads_request_starts() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();
    let mut config = LoadgenConfig::new(addr, tiny_desc());
    config.clients = 2;
    config.requests_per_client = 3;
    config.target_rate = Some(50.0); // 6 request slots, 20 ms apart
    let report = loadgen::run(&config);
    assert_eq!(report.ok, 6);
    assert_eq!(report.malformed, 0);
    // 6 slots at 50 req/s put the last start at >= 100 ms.
    assert!(
        report.elapsed >= Duration::from_millis(100),
        "open loop finished too fast: {:?}",
        report.elapsed
    );
    handle.stop().expect("clean shutdown");
}

// ---------------------------------------------------------------------------
// Keep-alive, pipelining, and deadline tests (the nonblocking serve path)
// ---------------------------------------------------------------------------

/// A grid big enough that its JSONL body (~1 MB) cannot fit in the capped
/// loopback socket buffers — the lever for the write-stall test.
fn big_desc() -> GridDesc {
    GridDesc {
        workloads: vec!["DP".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: (0..1500).collect(),
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    }
}

#[test]
fn kept_alive_connection_serves_byte_identical_bodies() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();
    let reference = offline_jsonl(&tiny_desc());

    // One TCP session, many exchanges: miss (chunked), hits
    // (Content-Length), health and stats interleaved.
    let mut conn = client::Conn::connect(&addr, TIMEOUT).expect("dial");
    let first = conn.run_campaign(&tiny_desc()).expect("first exchange");
    assert_eq!(first.status, 200, "{}", first.body_text());
    assert_eq!(first.header("x-joss-cache"), Some("miss"));
    assert_eq!(first.body, reference, "miss over keep-alive diverged");

    let health = conn.get("/healthz").expect("health on same conn");
    assert_eq!(health.status, 200);

    for round in 0..3 {
        let again = conn.run_campaign(&tiny_desc()).expect("hit exchange");
        assert_eq!(again.header("x-joss-cache"), Some("hit"), "round {round}");
        assert_eq!(again.body, reference, "hit over keep-alive diverged");
    }
    assert!(
        conn.is_reusable(),
        "daemon must not close a keep-alive conn"
    );

    // The daemon saw exactly one connection for all six exchanges.
    let stats = conn.get("/stats").expect("stats on same conn");
    let parsed = joss_sweep::json::parse(&stats.body_text()).expect("stats JSON");
    assert_eq!(
        parsed
            .get("connections")
            .and_then(joss_sweep::json::Value::as_u64),
        Some(1),
        "{}",
        stats.body_text()
    );
    handle.stop().expect("clean shutdown");
}

#[test]
fn pipelined_requests_drain_in_order() {
    use std::io::{BufReader, Write};
    let handle = boot(|_| {});
    let addr = handle.addr();
    let desc = tiny_desc();
    let body = desc.to_canonical_json();

    // Three requests written back-to-back before reading anything: a
    // campaign miss (streams chunked), the same campaign again, and a
    // health probe. The daemon must answer them strictly in order — the
    // second and third parse only after the first stream completes.
    let mut socket = std::net::TcpStream::connect(addr).expect("connect");
    socket
        .set_read_timeout(Some(TIMEOUT))
        .expect("read timeout");
    let campaign = format!(
        "POST /v1/campaign HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let mut burst = Vec::new();
    burst.extend_from_slice(campaign.as_bytes());
    burst.extend_from_slice(campaign.as_bytes());
    burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
    socket.write_all(&burst).expect("pipelined burst");

    let mut reader = BufReader::new(socket);
    let first = joss_serve::http::read_response(&mut reader).expect("first response");
    assert_eq!(first.status, 200, "{}", first.body_text());
    assert_eq!(first.header("x-joss-cache"), Some("miss"));
    let second = joss_serve::http::read_response(&mut reader).expect("second response");
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-joss-cache"), Some("hit"));
    assert_eq!(
        second.body, first.body,
        "pipelined repeat must replay identical bytes"
    );
    let third = joss_serve::http::read_response(&mut reader).expect("third response");
    assert_eq!(third.status, 200);
    assert!(third.body_text().contains("\"status\":\"ok\""));
    assert_eq!(first.body, offline_jsonl(&desc));
    handle.stop().expect("clean shutdown");
}

/// Shrink a socket's receive buffer so the peer's writes hit backpressure
/// after a few KB instead of a few hundred.
#[cfg(target_os = "linux")]
fn shrink_recv_buffer(stream: &std::net::TcpStream) {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    let val: i32 = 4096;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            &val as *const i32 as *const u8,
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

#[cfg(target_os = "linux")]
#[test]
fn stalled_reader_is_reaped_without_wedging_the_event_loop() {
    use std::io::{Read, Write};
    let handle = boot(|c| {
        c.write_timeout = Duration::from_millis(500);
    });
    let addr = handle.addr().to_string();

    // Prime the cache with a body far larger than the socket buffers the
    // stalled connection can absorb.
    let big = big_desc();
    let primed = client::run_campaign(&addr, &big, TIMEOUT).expect("prime cache");
    assert_eq!(primed.status, 200, "{}", primed.body_text());
    let full_len = primed.body.len();
    assert!(full_len > 500 * 1024, "body too small to stall: {full_len}");

    // The stalled client: request the cached body, then read nothing.
    let mut stalled = std::net::TcpStream::connect(&addr).expect("connect");
    shrink_recv_buffer(&stalled);
    stalled
        .set_read_timeout(Some(Duration::from_secs(2)))
        .expect("read timeout");
    let body = big.to_canonical_json();
    let request = format!(
        "POST /v1/campaign HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    stalled.write_all(request.as_bytes()).expect("send request");

    // While the stalled connection sits on a full outbound queue, the
    // event loop keeps serving everyone else promptly.
    let t0 = std::time::Instant::now();
    let live = client::run_campaign(&addr, &tiny_desc(), TIMEOUT).expect("live client");
    assert_eq!(live.status, 200);
    let health = client::get(&addr, "/healthz", TIMEOUT).expect("health");
    assert_eq!(health.status, 200);
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "event loop wedged behind a stalled reader: {:?}",
        t0.elapsed()
    );

    // The write deadline (500 ms of zero progress) must kill the stalled
    // connection; io_errors records the reap.
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    loop {
        let stats = client::get(&addr, "/stats", TIMEOUT).expect("stats");
        let parsed = joss_sweep::json::parse(&stats.body_text()).expect("stats JSON");
        let reaped = parsed
            .get("io_errors")
            .and_then(joss_sweep::json::Value::as_u64)
            .unwrap_or(0);
        if reaped >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stalled connection never reaped: {}",
            stats.body_text()
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Draining the stalled socket now ends early: the daemon dropped the
    // connection mid-body, so the client cannot receive the full response.
    let mut received = 0usize;
    let mut buf = [0u8; 16 * 1024];
    loop {
        match stalled.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => received += n,
        }
    }
    assert!(
        received < full_len,
        "expected a truncated body after the reap, got {received} of {full_len}"
    );
    handle.stop().expect("clean shutdown");
}

#[test]
fn half_sent_request_hits_the_read_deadline() {
    use std::io::{Read, Write};
    let handle = boot(|c| {
        c.read_timeout = Duration::from_millis(300);
    });
    let addr = handle.addr().to_string();

    // Send half a request head and go silent.
    let mut dribbler = std::net::TcpStream::connect(&addr).expect("connect");
    dribbler
        .write_all(b"POST /v1/campaign HTTP/1.1\r\nContent-Le")
        .expect("partial head");
    dribbler
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");

    // Others are unaffected while the dribbler's deadline runs.
    let health = client::get(&addr, "/healthz", TIMEOUT).expect("health");
    assert_eq!(health.status, 200);

    // The daemon drops the connection once the read deadline passes.
    let mut buf = [0u8; 256];
    match dribbler.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("expected the connection to close, got {n} bytes"),
    }

    // An idle keep-alive connection with NO partial request is governed by
    // the (long) idle timeout, not the read deadline: it survives this.
    let mut conn = client::Conn::connect(&addr, TIMEOUT).expect("dial");
    conn.get("/healthz").expect("first exchange");
    std::thread::sleep(Duration::from_millis(600));
    let again = conn.get("/healthz").expect("idle conn still serves");
    assert_eq!(again.status, 200);
    handle.stop().expect("clean shutdown");
}

#[test]
fn loadgen_reuses_connections_and_close_mode_dials_per_request() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();

    // Keep-alive (default): one dial per client.
    let mut config = LoadgenConfig::new(addr.clone(), tiny_desc());
    config.clients = 2;
    config.requests_per_client = 3;
    let report = loadgen::run(&config);
    assert_eq!(report.ok, 6);
    assert_eq!(report.errors, 0);
    assert_eq!(report.connections, 2, "one dial per keep-alive client");

    // Recycling every 2 exchanges: ceil(3/2) = 2 dials per client.
    config.requests_per_conn = 2;
    let report = loadgen::run(&config);
    assert_eq!(report.ok, 6);
    assert_eq!(report.connections, 4, "recycle after 2 exchanges");

    // Close-per-request A/B mode: one dial per request.
    config.requests_per_conn = 0;
    config.keep_alive = false;
    let report = loadgen::run(&config);
    assert_eq!(report.ok, 6);
    assert_eq!(report.connections, 6, "close mode dials per request");
    handle.stop().expect("clean shutdown");
}

#[test]
fn connection_close_requests_are_honored() {
    // The legacy one-shot client sends `Connection: close`; the daemon
    // must close-delimit the session (HTTP/1.0-era peers and proxies that
    // read to EOF depend on it).
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();
    let response = client::run_campaign(&addr, &tiny_desc(), TIMEOUT).expect("one-shot");
    assert_eq!(response.status, 200);
    assert_eq!(client::verify_body(&tiny_desc(), &response.body), Ok(2));

    // Raw probe: the response must carry `Connection: close` and the
    // socket must actually reach EOF afterwards.
    use std::io::{Read, Write};
    let mut socket = std::net::TcpStream::connect(&addr).expect("connect");
    socket
        .set_read_timeout(Some(TIMEOUT))
        .expect("read timeout");
    socket
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("request");
    let mut raw = Vec::new();
    socket.read_to_end(&mut raw).expect("read to daemon close");
    let text = String::from_utf8_lossy(&raw).to_lowercase();
    assert!(
        text.contains("connection: close"),
        "close request must be acknowledged: {text}"
    );
    handle.stop().expect("clean shutdown");
}

#[test]
fn spec_store_serves_overlapping_shards_without_resimulating() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();
    let desc = GridDesc {
        workloads: vec!["DP".into(), "MM_256_dop4".into(), "FB".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    };
    let reference = offline_jsonl(&desc);
    let ref_lines: Vec<&str> = std::str::from_utf8(&reference).unwrap().lines().collect();
    let shard = |s, e| desc.with_shard(joss_sweep::SpecRange::new(s, e));
    let slice = |s: usize, e: usize| -> Vec<u8> {
        ref_lines[s..e]
            .iter()
            .flat_map(|l| l.bytes().chain(std::iter::once(b'\n')))
            .collect()
    };

    // Cold shard [0,4): simulates four specs and fills the store.
    let first = client::run_campaign(&addr, &shard(0, 4), TIMEOUT).expect("cold shard");
    assert_eq!(first.status, 200, "{}", first.body_text());
    assert_eq!(first.header("x-joss-cache"), Some("miss"));
    assert_eq!(first.body, slice(0, 4));

    // Overlapping shard [2,6): specs 2..4 splice from the store, only
    // 4..6 simulate — and the bytes must not betray the difference.
    let second = client::run_campaign(&addr, &shard(2, 6), TIMEOUT).expect("overlapping shard");
    assert_eq!(second.status, 200, "{}", second.body_text());
    assert_eq!(second.body, slice(2, 6), "store splice changed bytes");

    // Shard [1,3) is now fully covered: answered from the store in the
    // reactor without touching the executor at all.
    let third = client::run_campaign(&addr, &shard(1, 3), TIMEOUT).expect("covered shard");
    assert_eq!(third.status, 200, "{}", third.body_text());
    assert_eq!(third.body, slice(1, 3), "store assembly changed bytes");

    let stats = client::get(&addr, "/stats", TIMEOUT).expect("stats");
    let parsed = joss_sweep::json::parse(&stats.body_text()).expect("stats JSON");
    let count = |key: &str| {
        parsed
            .get(key)
            .and_then(joss_sweep::json::Value::as_u64)
            .unwrap_or_else(|| panic!("stats missing {key}: {}", stats.body_text()))
    };
    assert_eq!(count("campaigns_executed"), 2, "[1,3) must not execute");
    assert_eq!(count("store_spec_hits"), 2, "specs 2 and 3 were stored");
    assert_eq!(count("store_hits"), 1, "[1,3) was fully covered");
    assert_eq!(count("store_lines"), 6, "every spec of the grid is stored");
    // The elastic coordinator's steal-poll contract: queue depth and the
    // per-campaign progress feed are part of /stats.
    assert_eq!(count("executor_queue_depth"), 0);
    assert!(
        parsed
            .get("active_campaigns")
            .and_then(joss_sweep::json::Value::as_array)
            .is_some(),
        "stats must carry active_campaigns: {}",
        stats.body_text()
    );
    handle.stop().expect("clean shutdown");
}

#[test]
fn store_can_be_disabled_without_changing_bytes() {
    let handle = boot(|c| c.store_specs = 0);
    let addr = handle.addr().to_string();
    let desc = tiny_desc();
    let reference = offline_jsonl(&desc);
    let shard = desc.with_shard(joss_sweep::SpecRange::new(0, 2));

    let first = client::run_campaign(&addr, &shard, TIMEOUT).expect("first");
    let second = client::run_campaign(
        &addr,
        &desc.with_shard(joss_sweep::SpecRange::new(1, 2)),
        TIMEOUT,
    )
    .expect("second");
    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    assert_eq!(first.body, reference);
    assert_eq!(
        second.body,
        reference[reference.len() - second.body.len()..]
    );

    let stats = client::get(&addr, "/stats", TIMEOUT).expect("stats");
    let text = stats.body_text();
    assert!(
        text.contains("\"store_lines\":0") && text.contains("\"store_hits\":0"),
        "a disabled store must stay empty: {text}"
    );
    handle.stop().expect("clean shutdown");
}
