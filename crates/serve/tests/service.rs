//! Service-boundary tests: boot the daemon on an ephemeral port and drive
//! it over real sockets.
//!
//! The load-bearing assertion is **byte identity across the network hop**:
//! for the same grid description and training parameters, the JSONL a
//! client receives equals `Campaign::run_streaming` → `JsonlSink` run
//! offline, regardless of how many threads either side used.

use joss_serve::{client, loadgen, LoadgenConfig, ServeConfig, Server, ServerHandle};
use joss_sweep::{Campaign, ExperimentContext, GridDesc, JsonlSink, SchedulerKind};
use joss_workloads::Scale;
use std::sync::OnceLock;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(120);

/// Offline reference context — same (seed, reps) the test servers use.
fn offline_ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::with_reps(42, 1))
}

fn tiny_desc() -> GridDesc {
    GridDesc {
        workloads: vec!["DP".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    }
}

fn boot(configure: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        reps: 1,
        workers: 4,
        campaign_threads: 2,
        ..ServeConfig::default()
    };
    configure(&mut config);
    Server::bind(config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

/// The offline JSONL bytes for a description, single-threaded.
fn offline_jsonl(desc: &GridDesc) -> Vec<u8> {
    let specs = desc.resolve().expect("resolvable grid").build();
    let mut sink = JsonlSink::new(Vec::new());
    Campaign::with_threads(1).run_streaming(offline_ctx(), specs, |record| {
        sink.write(&record).expect("in-memory write");
    });
    sink.into_inner().expect("flush")
}

#[test]
fn streamed_body_is_byte_identical_to_offline_campaign() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();

    for desc in [
        tiny_desc(),
        GridDesc {
            workloads: vec!["DP".into(), "MM_256_dop4".into()],
            schedulers: vec![
                SchedulerKind::Grws,
                SchedulerKind::Aequitas(0.005),
                SchedulerKind::Joss,
            ],
            seeds: vec![42, 7],
            scale: Scale::Divided(400),
            record_trace: false,
            shard: None,
        },
    ] {
        let response = client::run_campaign(&addr, &desc, TIMEOUT).expect("campaign request");
        assert_eq!(response.status, 200, "{}", response.body_text());
        assert_eq!(response.header("x-joss-cache"), Some("miss"));
        assert_eq!(
            response.header("x-joss-records"),
            Some(desc.spec_count().to_string().as_str())
        );
        assert_eq!(
            response.header("x-joss-spec-hash"),
            Some(format!("{:016x}", desc.spec_hash()).as_str())
        );
        assert_eq!(
            client::verify_body(&desc, &response.body),
            Ok(desc.spec_count())
        );
        // Determinism must survive the network hop: the daemon simulated
        // this on 2 worker threads, the reference on 1.
        assert_eq!(
            response.body,
            offline_jsonl(&desc),
            "served JSONL diverged from the offline campaign"
        );
    }
    handle.stop().expect("clean shutdown");
}

#[test]
fn health_reports_training_identity_for_fleet_compatibility() {
    let handle = boot(|c| c.train_seed = 42);
    let addr = handle.addr().to_string();
    let health = client::get(&addr, "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    let parsed = joss_sweep::json::parse(&health.body_text()).expect("health JSON");
    assert_eq!(
        parsed
            .get("train_seed")
            .and_then(joss_sweep::json::Value::as_u64),
        Some(42)
    );
    assert_eq!(
        parsed.get("reps").and_then(joss_sweep::json::Value::as_u64),
        Some(1)
    );
    assert_eq!(
        parsed
            .get("schema")
            .and_then(joss_sweep::json::Value::as_str),
        Some(joss_sweep::RECORD_SCHEMA)
    );
    assert!(
        parsed
            .get("version")
            .and_then(joss_sweep::json::Value::as_str)
            .is_some(),
        "{}",
        health.body_text()
    );
    // /stats mirrors the identity fields.
    let stats = client::get(&addr, "/stats", TIMEOUT).expect("stats");
    let parsed = joss_sweep::json::parse(&stats.body_text()).expect("stats JSON");
    assert_eq!(
        parsed
            .get("train_seed")
            .and_then(joss_sweep::json::Value::as_u64),
        Some(42)
    );
    handle.stop().expect("clean shutdown");
}

#[test]
fn sharded_requests_stream_the_slice_with_global_indices() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();
    let desc = GridDesc {
        workloads: vec!["DP".into(), "MM_256_dop4".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    };
    let full = client::run_campaign(&addr, &desc, TIMEOUT).expect("full grid");
    assert_eq!(full.status, 200);
    let full_lines: Vec<&str> = std::str::from_utf8(&full.body).unwrap().lines().collect();
    assert_eq!(full_lines.len(), 4);

    // A mid-grid shard: record count reflects the slice, indices are
    // global, and the bytes are exactly the full body's middle lines.
    let sharded = desc.with_shard(joss_sweep::SpecRange::new(1, 3));
    let resp = client::run_campaign(&addr, &sharded, TIMEOUT).expect("sharded request");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    assert_eq!(resp.header("x-joss-records"), Some("2"));
    assert_eq!(client::verify_body(&sharded, &resp.body), Ok(2));
    let expected = format!("{}\n{}\n", full_lines[1], full_lines[2]);
    assert_eq!(
        resp.body,
        expected.as_bytes(),
        "shard bytes must be the grid's slice"
    );

    // The shard is its own cache entry, replayed byte-identically.
    let again = client::run_campaign(&addr, &sharded, TIMEOUT).expect("repeat");
    assert_eq!(again.header("x-joss-cache"), Some("hit"));
    assert_eq!(again.body, resp.body);

    // Out-of-range and empty shards are client faults.
    for bad in [(2usize, 9usize), (3, 3)] {
        let body = format!(
            "{{\"workloads\":[\"DP\",\"MM_256_dop4\"],\"schedulers\":[\"grws\",\"joss\"],\
             \"seeds\":[42],\"scale\":400,\"record_trace\":false,\"shard\":[{},{}]}}",
            bad.0, bad.1
        );
        let r = client::post(&addr, "/v1/campaign", body.as_bytes(), TIMEOUT).unwrap();
        assert_eq!(r.status, 400, "shard {bad:?} must be rejected");
    }

    // The spec cap gates the *run* size, so one shard of a grid larger
    // than max_specs still serves — that is how a fleet feeds big grids
    // through small daemons.
    handle.stop().expect("clean shutdown");
    let handle = boot(|c| c.max_specs = 2);
    let addr = handle.addr().to_string();
    let r = client::run_campaign(&addr, &desc, TIMEOUT).unwrap();
    assert_eq!(r.status, 400, "4-spec grid is over the 2-spec cap");
    let r = client::run_campaign(
        &addr,
        &desc.with_shard(joss_sweep::SpecRange::new(1, 3)),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(r.status, 200, "{}", r.body_text());
    assert_eq!(r.body, expected.as_bytes());
    handle.stop().expect("clean shutdown");
}

#[test]
fn repeated_request_is_served_from_cache_without_resimulating() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();
    let desc = tiny_desc();

    let first = client::run_campaign(&addr, &desc, TIMEOUT).expect("first request");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-joss-cache"), Some("miss"));

    // Same grid, reformatted body (different key order + whitespace): the
    // canonical form must hit the same cache entry.
    let scrambled =
        "{ \"seeds\": [42],\n  \"scale\": 400, \"schedulers\": [\"grws\",\"joss\"],\n  \
         \"workloads\": [\"DP\"] }";
    let second =
        client::post(&addr, "/v1/campaign", scrambled.as_bytes(), TIMEOUT).expect("second request");
    assert_eq!(second.status, 200, "{}", second.body_text());
    assert_eq!(second.header("x-joss-cache"), Some("hit"));
    assert_eq!(second.body, first.body, "cache must replay identical bytes");

    let stats = client::get(&addr, "/stats", TIMEOUT).expect("stats");
    let parsed = joss_sweep::json::parse(&stats.body_text()).expect("stats JSON");
    let count = |key: &str| {
        parsed
            .get(key)
            .and_then(joss_sweep::json::Value::as_u64)
            .unwrap_or_else(|| panic!("stats missing {key}"))
    };
    assert_eq!(
        count("campaigns_executed"),
        1,
        "the repeat must not re-simulate"
    );
    assert_eq!(count("cache_hits"), 1);
    assert_eq!(count("cached_grids"), 1);
    handle.stop().expect("clean shutdown");
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    // max_inflight = 0: every campaign is shed — the deterministic way to
    // exercise the overload path.
    let handle = boot(|c| c.max_inflight = 0);
    let addr = handle.addr().to_string();

    let response = client::run_campaign(&addr, &tiny_desc(), TIMEOUT).expect("request");
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    assert!(response.body_text().contains("saturated"));

    // Degrading gracefully means everything that needs no simulation slot
    // still answers.
    let health = client::get(&addr, "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    let stats = client::get(&addr, "/stats", TIMEOUT).expect("stats");
    assert!(stats.body_text().contains("\"rejected_503\":1"));
    handle.stop().expect("clean shutdown");
}

#[test]
fn shed_requests_succeed_once_capacity_returns() {
    // One slot, several clients racing distinct grids: the loadgen's
    // retry-on-503 must land every request eventually.
    let handle = boot(|c| c.max_inflight = 1);
    let addr = handle.addr().to_string();
    let mut config = LoadgenConfig::new(addr, tiny_desc());
    config.clients = 3;
    config.requests_per_client = 2;
    config.vary_seeds = true; // distinct grids: no cache shortcuts
    let report = loadgen::run(&config);
    assert_eq!(report.ok, 6, "every request must eventually succeed");
    assert_eq!(report.malformed, 0, "{:?}", report.first_malformation);
    assert_eq!(report.errors, 0);
    assert_eq!(report.cache_hits, 0);
    handle.stop().expect("clean shutdown");
}

#[test]
fn protocol_errors_are_client_faults_not_crashes() {
    let handle = boot(|c| c.max_specs = 8);
    let addr = handle.addr().to_string();

    // Malformed JSON.
    let r = client::post(&addr, "/v1/campaign", b"{not json", TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    // Unknown workload label.
    let bad = "{\"workloads\":[\"NOPE\"],\"schedulers\":[\"joss\"]}";
    let r = client::post(&addr, "/v1/campaign", bad.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_text().contains("NOPE"), "{}", r.body_text());
    // Unknown scheduler.
    let bad = "{\"workloads\":[\"DP\"],\"schedulers\":[\"frobnicate\"]}";
    let r = client::post(&addr, "/v1/campaign", bad.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    // Well-formed but out-of-range fixed knob indices: must be a client
    // fault, never an engine panic that kills a worker.
    let bad = "{\"workloads\":[\"DP\"],\"schedulers\":[\"fixed:big:99:99:99\"]}";
    let r = client::post(&addr, "/v1/campaign", bad.as_bytes(), TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_text().contains("out of range"), "{}", r.body_text());
    // Grid above the daemon's spec cap.
    let mut big = tiny_desc();
    big.seeds = (0..9).collect(); // 1 workload x 2 schedulers x 9 seeds = 18 > 8
    let r = client::run_campaign(&addr, &big, TIMEOUT).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_text().contains("limit"), "{}", r.body_text());
    // Wrong method / path.
    let r = client::get(&addr, "/v1/campaign", TIMEOUT).unwrap();
    assert_eq!(r.status, 405);
    let r = client::get(&addr, "/v1/nope", TIMEOUT).unwrap();
    assert_eq!(r.status, 404);
    // Oversized body.
    let huge = vec![b' '; 80 * 1024];
    let r = client::post(&addr, "/v1/campaign", &huge, TIMEOUT).unwrap();
    assert_eq!(r.status, 413);

    // After all that abuse the daemon still serves.
    let ok = client::run_campaign(&addr, &tiny_desc(), TIMEOUT).unwrap();
    assert_eq!(ok.status, 200);
    handle.stop().expect("clean shutdown");
}

#[test]
fn eight_concurrent_clients_stream_verified_records() {
    let handle = boot(|c| {
        c.workers = 12;
        c.max_inflight = 8;
    });
    let addr = handle.addr().to_string();
    let desc = tiny_desc();
    let per_request = desc.spec_count();

    let mut config = LoadgenConfig::new(addr.clone(), desc);
    config.clients = 8;
    config.requests_per_client = 3;
    let report = loadgen::run(&config);

    assert_eq!(
        report.ok, 24,
        "errors={} shed={}",
        report.errors, report.shed_503
    );
    assert_eq!(report.malformed, 0, "{:?}", report.first_malformation);
    assert_eq!(report.errors, 0);
    assert_eq!(report.records, 24 * per_request);
    assert!(
        report.cache_hits >= 16,
        "identical grids after the first must mostly hit the cache (got {})",
        report.cache_hits
    );
    assert_eq!(report.latencies.len(), 24);
    assert!(report.throughput_rps() > 0.0);

    // The saved body diffs clean against the offline reference too.
    let body = report.first_body.expect("a saved body");
    assert_eq!(body, offline_jsonl(&tiny_desc()));
    handle.stop().expect("clean shutdown");
}

#[test]
fn open_loop_pacing_spreads_request_starts() {
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();
    let mut config = LoadgenConfig::new(addr, tiny_desc());
    config.clients = 2;
    config.requests_per_client = 3;
    config.target_rate = Some(50.0); // 6 request slots, 20 ms apart
    let report = loadgen::run(&config);
    assert_eq!(report.ok, 6);
    assert_eq!(report.malformed, 0);
    // 6 slots at 50 req/s put the last start at >= 100 ms.
    assert!(
        report.elapsed >= Duration::from_millis(100),
        "open loop finished too fast: {:?}",
        report.elapsed
    );
    handle.stop().expect("clean shutdown");
}
