//! Telemetry-boundary tests: the `/metrics` scrape, the request-id
//! contract, and the counter-identity invariant under concurrent load.
//!
//! The metric catalog is **process-global** (that is the point — one
//! scrape covers every layer), so these tests serialize on a local mutex
//! and assert on *deltas* between snapshots, never on absolute values.

use joss_serve::{client, loadgen, LoadgenConfig, ServeConfig, Server, ServerHandle};
use joss_sweep::{GridDesc, SchedulerKind};
use joss_telemetry::catalog as tm;
use joss_workloads::Scale;
use std::sync::Mutex;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(120);

/// Serializes the tests in this file: they all read the process-global
/// catalog, and interleaved servers would tangle the deltas.
static LOCK: Mutex<()> = Mutex::new(());

fn tiny_desc() -> GridDesc {
    GridDesc {
        workloads: vec!["DP".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    }
}

fn boot(configure: impl FnOnce(&mut ServeConfig)) -> ServerHandle {
    let mut config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        reps: 1,
        workers: 4,
        campaign_threads: 2,
        ..ServeConfig::default()
    };
    configure(&mut config);
    Server::bind(config)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn server")
}

/// The admission-identity counters (see the catalog): every campaign
/// request resolves to exactly one of hit / admitted / shed / error.
#[derive(Clone, Copy)]
struct AdmissionSnap {
    requests: u64,
    hits: u64,
    admitted: u64,
    rejected: u64,
    errors: u64,
}

fn admission_snap() -> AdmissionSnap {
    AdmissionSnap {
        requests: tm::SERVE_CAMPAIGN_REQUESTS.get(),
        hits: tm::SERVE_CAMPAIGN_HITS.get(),
        admitted: tm::SERVE_CAMPAIGNS_ADMITTED.get(),
        rejected: tm::SERVE_REJECTED_503.get(),
        errors: tm::SERVE_CAMPAIGN_ERRORS.get(),
    }
}

fn assert_request_id(response: &joss_serve::http::Response) -> String {
    let rid = response
        .header("x-joss-request-id")
        .unwrap_or_else(|| panic!("status {} without a request id", response.status));
    assert_eq!(rid.len(), 16, "request id is 16 hex chars, got {rid:?}");
    assert!(
        rid.chars().all(|c| c.is_ascii_hexdigit()),
        "non-hex request id {rid:?}"
    );
    rid.to_string()
}

#[test]
fn counters_reconcile_under_concurrent_load() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();

    let before = admission_snap();
    let mut config = LoadgenConfig::new(addr.clone(), tiny_desc());
    config.clients = 8;
    config.requests_per_client = 3;
    config.vary_seeds = true; // distinct grids: the cache cannot shortcut
    let report = loadgen::run(&config);
    assert_eq!(report.ok, 24, "every request must land");
    assert_eq!(report.errors, 0);
    assert_eq!(report.malformed, 0, "{:?}", report.first_malformation);
    let after = admission_snap();

    // The identity: requests == hits + admitted + sheds + errors. At
    // quiesce (loadgen returned, every response fully streamed) nothing
    // is still between "counted in" and "counted out".
    let requests = after.requests - before.requests;
    let hits = after.hits - before.hits;
    let admitted = after.admitted - before.admitted;
    let rejected = after.rejected - before.rejected;
    let errors = after.errors - before.errors;
    assert_eq!(
        requests,
        hits + admitted + rejected + errors,
        "admission identity broke: {requests} != {hits} + {admitted} + {rejected} + {errors}"
    );
    // Client and server agree on the request count: 24 successes plus
    // one campaign request per 503 the loadgen retried.
    assert_eq!(requests, 24 + report.shed_503 as u64);
    assert_eq!(errors, 0);

    // The /metrics scrape must tell the same story the raw catalog does.
    let scrape = client::get(&addr, "/metrics", TIMEOUT).expect("metrics");
    assert_eq!(scrape.status, 200);
    let text = scrape.body_text();
    let series_value = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {name} series in scrape:\n{text}"))
    };
    assert_eq!(
        series_value("joss_serve_campaign_requests_total"),
        after.requests
    );
    assert_eq!(
        series_value("joss_serve_campaigns_admitted_total"),
        after.admitted
    );
    handle.stop().expect("clean shutdown");
}

#[test]
fn metrics_scrape_is_prometheus_text_with_full_catalog() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();

    // One real campaign first, so serve/engine/sweep series carry data.
    let response = client::run_campaign(&addr, &tiny_desc(), TIMEOUT).expect("campaign");
    assert_eq!(response.status, 200, "{}", response.body_text());

    let scrape = client::get(&addr, "/metrics", TIMEOUT).expect("metrics");
    assert_eq!(scrape.status, 200);
    assert!(
        scrape
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "scrape content type {:?}",
        scrape.header("content-type")
    );
    let text = scrape.body_text();
    let mut names: Vec<&str> = text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            l.split_once('{')
                .map(|(n, _)| n)
                .or_else(|| l.split_once(' ').map(|(n, _)| n))
                .unwrap_or(l)
        })
        .collect();
    names.sort_unstable();
    names.dedup();
    assert!(
        names.len() >= 20,
        "only {} distinct series in scrape:\n{text}",
        names.len()
    );
    // Every layer is represented in one scrape.
    for needle in [
        "joss_serve_requests_total",
        "joss_serve_campaign_miss_duration_seconds",
        "joss_engine_events_total",
        "joss_engine_tasks_total",
        "joss_sweep_specs_total",
        "joss_fleet_steals_committed_total",
    ] {
        assert!(
            names.contains(&needle),
            "missing {needle} in scrape:\n{text}"
        );
    }
    handle.stop().expect("clean shutdown");
}

#[test]
fn every_response_carries_a_request_id() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();

    // 200 (campaign miss, streamed).
    let ok = client::run_campaign(&addr, &tiny_desc(), TIMEOUT).expect("campaign");
    assert_eq!(ok.status, 200, "{}", ok.body_text());
    assert_request_id(&ok);

    // 200 (plain GET).
    let health = client::get(&addr, "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(health.status, 200);
    assert_request_id(&health);

    // 400 (malformed body).
    let bad = client::post(&addr, "/v1/campaign", b"{not json", TIMEOUT).expect("bad request");
    assert_eq!(bad.status, 400);
    assert_request_id(&bad);

    // 404.
    let missing = client::get(&addr, "/no-such-route", TIMEOUT).expect("404");
    assert_eq!(missing.status, 404);
    assert_request_id(&missing);

    // 405.
    let wrong_method = client::post(&addr, "/metrics", b"", TIMEOUT).expect("405");
    assert_eq!(wrong_method.status, 405);
    assert_request_id(&wrong_method);

    // Distinct requests mint distinct ids.
    let a = client::get(&addr, "/healthz", TIMEOUT).expect("healthz");
    let b = client::get(&addr, "/healthz", TIMEOUT).expect("healthz");
    assert_ne!(
        assert_request_id(&a),
        assert_request_id(&b),
        "request ids must be unique per request"
    );
    handle.stop().expect("clean shutdown");
}

#[test]
fn shed_responses_carry_request_ids_too() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // max_inflight = 0: every campaign is shed — the deterministic 503.
    let handle = boot(|c| c.max_inflight = 0);
    let addr = handle.addr().to_string();
    let shed = client::run_campaign(&addr, &tiny_desc(), TIMEOUT).expect("request");
    assert_eq!(shed.status, 503);
    assert_request_id(&shed);
    handle.stop().expect("clean shutdown");
}

#[test]
fn client_trace_id_is_adopted_and_echoed() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let handle = boot(|_| {});
    let addr = handle.addr().to_string();

    let mut conn = client::Conn::connect(&addr, TIMEOUT).expect("connect");
    conn.set_trace(Some("00000000deadbeef".into()));
    let response = conn.get("/healthz").expect("healthz");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("x-joss-request-id"),
        Some("00000000deadbeef"),
        "a client-supplied X-Joss-Trace id must become the request id"
    );

    // A garbage trace header is ignored, not adopted.
    conn.set_trace(Some("not-a-trace-id".into()));
    let response = conn.get("/healthz").expect("healthz");
    assert_eq!(response.status, 200);
    let rid = assert_request_id(&response);
    assert_ne!(rid, "not-a-trace-id");
    handle.stop().expect("clean shutdown");
}
