//! The task graph: tasks, dependencies, readiness and structural analyses.
//!
//! Graphs are built through [`TaskGraphBuilder`] (which enforces acyclicity
//! by construction: a task may only depend on already-added tasks) and then
//! frozen into an immutable [`TaskGraph`] with CSR successor storage, sized
//! for the paper's largest workloads (hundreds of thousands of tasks).

use crate::kernel::{KernelId, KernelSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Dense index for array storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A dependency references a task not yet added.
    UnknownDependency { task: usize, dep: TaskId },
    /// A task references an unknown kernel.
    UnknownKernel(KernelId),
    /// The graph has no tasks.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownDependency { task, dep } => {
                write!(f, "task #{task} depends on unknown task {dep}")
            }
            GraphError::UnknownKernel(k) => write!(f, "unknown kernel {k}"),
            GraphError::Empty => write!(f, "graph has no tasks"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental graph builder. Dependencies may only point to tasks already
/// added, which guarantees acyclicity and gives a free topological order.
#[derive(Debug, Default)]
pub struct TaskGraphBuilder {
    kernels: Vec<KernelSpec>,
    task_kernel: Vec<KernelId>,
    task_scale: Vec<f64>,
    preds: Vec<Vec<TaskId>>,
}

impl TaskGraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a kernel; returns its id.
    pub fn add_kernel(&mut self, spec: KernelSpec) -> KernelId {
        let id = KernelId(self.kernels.len() as u32);
        self.kernels.push(spec);
        id
    }

    /// Add a task of `kernel` with dependencies `deps`; returns its id.
    pub fn add_task(&mut self, kernel: KernelId, deps: &[TaskId]) -> Result<TaskId, GraphError> {
        self.add_task_scaled(kernel, 1.0, deps)
    }

    /// Add a task with a per-task size scale factor.
    pub fn add_task_scaled(
        &mut self,
        kernel: KernelId,
        scale: f64,
        deps: &[TaskId],
    ) -> Result<TaskId, GraphError> {
        if kernel.index() >= self.kernels.len() {
            return Err(GraphError::UnknownKernel(kernel));
        }
        let id = TaskId(self.task_kernel.len() as u32);
        for &d in deps {
            if d.index() >= self.task_kernel.len() {
                return Err(GraphError::UnknownDependency {
                    task: id.index(),
                    dep: d,
                });
            }
        }
        self.task_kernel.push(kernel);
        self.task_scale.push(scale);
        // Deduplicate to keep indegree counts exact.
        let mut ds: Vec<TaskId> = deps.to_vec();
        ds.sort_unstable();
        ds.dedup();
        self.preds.push(ds);
        Ok(id)
    }

    /// Number of tasks added so far.
    pub fn n_tasks(&self) -> usize {
        self.task_kernel.len()
    }

    /// Freeze into an immutable graph.
    pub fn build(self, name: impl Into<String>) -> Result<TaskGraph, GraphError> {
        if self.task_kernel.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = self.task_kernel.len();
        // Build CSR successors from predecessor lists.
        let mut succ_count = vec![0u32; n];
        for preds in &self.preds {
            for &p in preds {
                succ_count[p.index()] += 1;
            }
        }
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        succ_off.push(0u32);
        for &c in &succ_count {
            acc += c;
            succ_off.push(acc);
        }
        let mut cursor = succ_off.clone();
        let mut succ = vec![TaskId(0); acc as usize];
        for (t, preds) in self.preds.iter().enumerate() {
            for &p in preds {
                let slot = cursor[p.index()];
                succ[slot as usize] = TaskId(t as u32);
                cursor[p.index()] += 1;
            }
        }
        let indegree: Vec<u32> = self.preds.iter().map(|p| p.len() as u32).collect();
        Ok(TaskGraph {
            name: name.into(),
            kernels: self.kernels,
            task_kernel: self.task_kernel,
            task_scale: self.task_scale,
            indegree,
            succ_off,
            succ,
        })
    }
}

/// Immutable task DAG.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskGraph {
    name: String,
    kernels: Vec<KernelSpec>,
    task_kernel: Vec<KernelId>,
    task_scale: Vec<f64>,
    indegree: Vec<u32>,
    succ_off: Vec<u32>,
    succ: Vec<TaskId>,
}

impl TaskGraph {
    /// Graph name (benchmark label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.task_kernel.len()
    }

    /// Number of kernels (task types).
    pub fn n_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Kernel description.
    pub fn kernel(&self, k: KernelId) -> &KernelSpec {
        &self.kernels[k.index()]
    }

    /// All kernels.
    pub fn kernels(&self) -> &[KernelSpec] {
        &self.kernels
    }

    /// Kernel of a task.
    pub fn kernel_of(&self, t: TaskId) -> KernelId {
        self.task_kernel[t.index()]
    }

    /// Size scale of a task.
    pub fn scale_of(&self, t: TaskId) -> f64 {
        self.task_scale[t.index()]
    }

    /// Successors (dependents) of a task.
    pub fn successors(&self, t: TaskId) -> &[TaskId] {
        let lo = self.succ_off[t.index()] as usize;
        let hi = self.succ_off[t.index() + 1] as usize;
        &self.succ[lo..hi]
    }

    /// Initial indegrees (dependency counts) of all tasks.
    pub fn indegrees(&self) -> &[u32] {
        &self.indegree
    }

    /// Tasks with no dependencies (initially ready), in id order.
    pub fn roots(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| TaskId(i as u32))
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.succ.len()
    }

    /// Number of tasks per kernel.
    pub fn tasks_per_kernel(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.kernels.len()];
        for k in &self.task_kernel {
            counts[k.index()] += 1;
        }
        counts
    }

    /// Length (in tasks) of the longest dependency chain.
    ///
    /// Tasks are stored in topological order by construction, so a single
    /// forward pass suffices.
    pub fn longest_path(&self) -> usize {
        let n = self.n_tasks();
        let mut depth = vec![1u32; n];
        let mut best = 1u32;
        for t in 0..n {
            let d = depth[t];
            best = best.max(d);
            for &s in self.successors(TaskId(t as u32)) {
                depth[s.index()] = depth[s.index()].max(d + 1);
            }
        }
        best as usize
    }

    /// DAG parallelism (the paper's `dop`): total tasks divided by the
    /// longest path length.
    pub fn dop(&self) -> f64 {
        self.n_tasks() as f64 / self.longest_path() as f64
    }

    /// Verify structural invariants (used by property tests): indegrees match
    /// edges, ids are in range, topological order holds.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.n_tasks();
        let mut indeg = vec![0u32; n];
        for t in 0..n {
            for &s in self.successors(TaskId(t as u32)) {
                if s.index() >= n {
                    return Err(format!("edge to out-of-range task {s}"));
                }
                if s.index() <= t {
                    return Err(format!(
                        "edge {t} -> {s} violates topological storage order"
                    ));
                }
                indeg[s.index()] += 1;
            }
        }
        if indeg != self.indegree {
            return Err("stored indegrees disagree with edges".into());
        }
        if self.roots().next().is_none() {
            return Err("graph has no roots".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joss_platform::TaskShape;

    fn kernel() -> KernelSpec {
        KernelSpec::new("k", TaskShape::new(0.01, 0.001))
    }

    fn diamond() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let k = b.add_kernel(kernel());
        let a = b.add_task(k, &[]).unwrap();
        let l = b.add_task(k, &[a]).unwrap();
        let r = b.add_task(k, &[a]).unwrap();
        let _j = b.add_task(k, &[l, r]).unwrap();
        b.build("diamond").unwrap()
    }

    #[test]
    fn diamond_structure() {
        let g = diamond();
        assert_eq!(g.n_tasks(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.roots().collect::<Vec<_>>(), vec![TaskId(0)]);
        assert_eq!(g.successors(TaskId(0)), &[TaskId(1), TaskId(2)]);
        assert_eq!(g.indegrees()[3], 2);
        assert_eq!(g.longest_path(), 3);
        assert!((g.dop() - 4.0 / 3.0).abs() < 1e-12);
        g.check_invariants().unwrap();
    }

    #[test]
    fn unknown_dep_rejected() {
        let mut b = TaskGraphBuilder::new();
        let k = b.add_kernel(kernel());
        let err = b.add_task(k, &[TaskId(5)]).unwrap_err();
        assert!(matches!(err, GraphError::UnknownDependency { .. }));
    }

    #[test]
    fn unknown_kernel_rejected() {
        let mut b = TaskGraphBuilder::new();
        let err = b.add_task(KernelId(3), &[]).unwrap_err();
        assert_eq!(err, GraphError::UnknownKernel(KernelId(3)));
    }

    #[test]
    fn empty_graph_rejected() {
        let b = TaskGraphBuilder::new();
        assert_eq!(b.build("e").unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn duplicate_deps_are_deduped() {
        let mut b = TaskGraphBuilder::new();
        let k = b.add_kernel(kernel());
        let a = b.add_task(k, &[]).unwrap();
        let t = b.add_task(k, &[a, a, a]).unwrap();
        let g = b.build("dup").unwrap();
        assert_eq!(g.indegrees()[t.index()], 1);
        g.check_invariants().unwrap();
    }

    #[test]
    fn chain_longest_path() {
        let mut b = TaskGraphBuilder::new();
        let k = b.add_kernel(kernel());
        let mut prev: Option<TaskId> = None;
        for _ in 0..10 {
            let deps: Vec<TaskId> = prev.into_iter().collect();
            prev = Some(b.add_task(k, &deps).unwrap());
        }
        let g = b.build("chain").unwrap();
        assert_eq!(g.longest_path(), 10);
        assert!((g.dop() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_dop() {
        let mut b = TaskGraphBuilder::new();
        let k = b.add_kernel(kernel());
        for _ in 0..16 {
            b.add_task(k, &[]).unwrap();
        }
        let g = b.build("par").unwrap();
        assert_eq!(g.longest_path(), 1);
        assert!((g.dop() - 16.0).abs() < 1e-12);
        assert_eq!(g.roots().count(), 16);
    }

    #[test]
    fn tasks_per_kernel_counts() {
        let mut b = TaskGraphBuilder::new();
        let k1 = b.add_kernel(kernel());
        let k2 = b.add_kernel(KernelSpec::new("k2", TaskShape::new(0.1, 0.1)));
        b.add_task(k1, &[]).unwrap();
        b.add_task(k2, &[]).unwrap();
        b.add_task(k2, &[]).unwrap();
        let g = b.build("multi").unwrap();
        assert_eq!(g.tasks_per_kernel(), vec![1, 2]);
    }
}
