//! Generic DAG shape generators.
//!
//! These are building blocks for tests and for the benchmark generators in
//! `joss-workloads`: independent task bags, chains, configurable-`dop`
//! chain bundles (the paper's MM/MC/ST use this), fork-join stages, and
//! seeded random layered DAGs for property tests.

use crate::graph::{TaskGraph, TaskGraphBuilder, TaskId};
use crate::kernel::{KernelId, KernelSpec};

/// A bag of `n` independent tasks of one kernel (dop = n).
pub fn independent(name: &str, kernel: KernelSpec, n: usize) -> TaskGraph {
    assert!(n > 0);
    let mut b = TaskGraphBuilder::new();
    let k = b.add_kernel(kernel);
    for _ in 0..n {
        b.add_task(k, &[]).expect("valid");
    }
    b.build(name).expect("non-empty")
}

/// A single dependency chain of `n` tasks (dop = 1).
pub fn chain(name: &str, kernel: KernelSpec, n: usize) -> TaskGraph {
    assert!(n > 0);
    let mut b = TaskGraphBuilder::new();
    let k = b.add_kernel(kernel);
    let mut prev: Option<TaskId> = None;
    for _ in 0..n {
        let deps: Vec<TaskId> = prev.into_iter().collect();
        prev = Some(b.add_task(k, &deps).expect("valid"));
    }
    b.build(name).expect("non-empty")
}

/// `dop` parallel chains with `n_total` tasks distributed round-robin:
/// the construction the paper uses for its synthetic benchmarks, where
/// `dop = total tasks / longest path`.
pub fn chain_bundle(name: &str, kernel: KernelSpec, n_total: usize, dop: usize) -> TaskGraph {
    assert!(n_total > 0 && dop > 0);
    let dop = dop.min(n_total);
    let mut b = TaskGraphBuilder::new();
    let k = b.add_kernel(kernel);
    let mut tails: Vec<Option<TaskId>> = vec![None; dop];
    for i in 0..n_total {
        let lane = i % dop;
        let deps: Vec<TaskId> = tails[lane].into_iter().collect();
        tails[lane] = Some(b.add_task(k, &deps).expect("valid"));
    }
    b.build(name).expect("non-empty")
}

/// Fork-join: `stages` sequential stages, each a fan-out of `width` tasks of
/// `stage_kernels[stage % len]`, joined by a barrier task of `join_kernel`.
pub fn fork_join(
    name: &str,
    stage_kernels: &[KernelSpec],
    join_kernel: KernelSpec,
    stages: usize,
    width: usize,
) -> TaskGraph {
    assert!(stages > 0 && width > 0 && !stage_kernels.is_empty());
    let mut b = TaskGraphBuilder::new();
    let kids: Vec<KernelId> = stage_kernels
        .iter()
        .cloned()
        .map(|k| b.add_kernel(k))
        .collect();
    let join = b.add_kernel(join_kernel);
    let mut barrier: Option<TaskId> = None;
    for s in 0..stages {
        let deps: Vec<TaskId> = barrier.into_iter().collect();
        let stage_tasks: Vec<TaskId> = (0..width)
            .map(|_| b.add_task(kids[s % kids.len()], &deps).expect("valid"))
            .collect();
        barrier = Some(b.add_task(join, &stage_tasks).expect("valid"));
    }
    b.build(name).expect("non-empty")
}

/// Seeded random layered DAG: `layers` layers of up to `max_width` tasks;
/// each task depends on 1..=3 random tasks of the previous layer. Used by
/// property tests to exercise schedulers on irregular graphs.
pub fn random_layered(
    name: &str,
    kernel: KernelSpec,
    layers: usize,
    max_width: usize,
    seed: u64,
) -> TaskGraph {
    assert!(layers > 0 && max_width > 0);
    let mut b = TaskGraphBuilder::new();
    let k = b.add_kernel(kernel);
    // Small deterministic LCG; avoids pulling rand into the non-dev deps.
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut prev_layer: Vec<TaskId> = Vec::new();
    for _ in 0..layers {
        let width = 1 + (next() as usize) % max_width;
        let mut layer = Vec::with_capacity(width);
        for _ in 0..width {
            let deps: Vec<TaskId> = if prev_layer.is_empty() {
                Vec::new()
            } else {
                let n_deps = 1 + (next() as usize) % 3.min(prev_layer.len());
                (0..n_deps)
                    .map(|_| prev_layer[(next() as usize) % prev_layer.len()])
                    .collect()
            };
            layer.push(b.add_task(k, &deps).expect("valid"));
        }
        prev_layer = layer;
    }
    b.build(name).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use joss_platform::TaskShape;

    fn k() -> KernelSpec {
        KernelSpec::new("k", TaskShape::new(0.01, 0.001))
    }

    #[test]
    fn independent_has_dop_n() {
        let g = independent("i", k(), 8);
        assert_eq!(g.n_tasks(), 8);
        assert!((g.dop() - 8.0).abs() < 1e-12);
        g.check_invariants().unwrap();
    }

    #[test]
    fn chain_has_dop_one() {
        let g = chain("c", k(), 12);
        assert!((g.dop() - 1.0).abs() < 1e-12);
        g.check_invariants().unwrap();
    }

    #[test]
    fn chain_bundle_hits_requested_dop() {
        for dop in [1usize, 4, 16] {
            let g = chain_bundle("cb", k(), 160, dop);
            assert_eq!(g.n_tasks(), 160);
            assert!(
                (g.dop() - dop as f64).abs() < 1e-9,
                "requested dop {dop}, got {}",
                g.dop()
            );
            g.check_invariants().unwrap();
        }
    }

    #[test]
    fn chain_bundle_clamps_dop() {
        let g = chain_bundle("cb", k(), 3, 100);
        assert_eq!(g.n_tasks(), 3);
        g.check_invariants().unwrap();
    }

    #[test]
    fn fork_join_structure() {
        let g = fork_join("fj", &[k()], k(), 3, 4);
        // 3 stages * (4 + 1 join)
        assert_eq!(g.n_tasks(), 15);
        assert_eq!(g.longest_path(), 6);
        g.check_invariants().unwrap();
    }

    #[test]
    fn random_layered_is_valid_dag() {
        for seed in 0..20 {
            let g = random_layered("r", k(), 10, 6, seed);
            g.check_invariants().unwrap();
            assert!(g.n_tasks() >= 10);
        }
    }

    #[test]
    fn random_layered_is_deterministic() {
        let a = random_layered("r", k(), 8, 5, 42);
        let b = random_layered("r", k(), 8, 5, 42);
        assert_eq!(a.n_tasks(), b.n_tasks());
        assert_eq!(a.n_edges(), b.n_edges());
    }
}
