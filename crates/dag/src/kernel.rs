//! Kernels: task types with shared computational characteristics.
//!
//! A kernel is the unit of JOSS's online learning: MB values, model
//! predictions and selected configurations are all stored *per kernel*
//! (per task type), amortizing sampling cost across the kernel's many
//! invocations (paper §5.1–§5.2).

use joss_platform::TaskShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a kernel (task type) within one task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KernelId(pub u32);

impl KernelId {
    /// Dense index for table storage.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Description of one kernel (task type).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Human-readable name (e.g. "jacobi", "bmod").
    pub name: String,
    /// Computational shape of one invocation at scale 1.0.
    pub shape: TaskShape,
    /// Maximum moldable width: how many cores one task may use.
    /// `1` makes the kernel rigid (non-moldable).
    pub max_width: usize,
}

impl KernelSpec {
    /// New moldable kernel with the platform-wide default width cap.
    pub fn new(name: impl Into<String>, shape: TaskShape) -> Self {
        KernelSpec {
            name: name.into(),
            shape,
            max_width: usize::MAX,
        }
    }

    /// Restrict the kernel to a single core (no moldable execution).
    pub fn rigid(mut self) -> Self {
        self.max_width = 1;
        self
    }

    /// Cap the moldable width.
    pub fn with_max_width(mut self, w: usize) -> Self {
        assert!(w >= 1, "max_width must be at least 1");
        self.max_width = w;
        self
    }

    /// Set the shape's moldable-scalability exponent (see
    /// [`TaskShape::with_scalability`]).
    pub fn with_scalability(mut self, alpha: f64) -> Self {
        self.shape = self.shape.with_scalability(alpha);
        self
    }

    /// Shape of a task of this kernel at a given scale factor.
    ///
    /// Scale multiplies both work and traffic; it models size variation
    /// between invocations (e.g. shrinking recursion leaves) while keeping
    /// the kernel's ops/byte ratio — tasks of one kernel stay "identical"
    /// in character, as the paper assumes.
    pub fn scaled_shape(&self, scale: f64) -> TaskShape {
        debug_assert!(scale > 0.0 && scale.is_finite());
        TaskShape {
            work_gops: self.shape.work_gops * scale,
            bytes_gb: self.shape.bytes_gb * scale,
            scal_alpha: self.shape.scal_alpha,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_shape_preserves_intensity() {
        let k = KernelSpec::new("mm", TaskShape::new(1.0, 0.5));
        let s = k.scaled_shape(2.0);
        assert!((s.work_gops - 2.0).abs() < 1e-12);
        assert!((s.bytes_gb - 1.0).abs() < 1e-12);
        assert!((s.ops_per_byte() - k.shape.ops_per_byte()).abs() < 1e-9);
    }

    #[test]
    fn rigid_kernels_have_width_one() {
        let k = KernelSpec::new("copy", TaskShape::new(0.1, 0.1)).rigid();
        assert_eq!(k.max_width, 1);
        let k2 = KernelSpec::new("copy", TaskShape::new(0.1, 0.1)).with_max_width(2);
        assert_eq!(k2.max_width, 2);
    }

    #[test]
    #[should_panic(expected = "max_width must be at least 1")]
    fn zero_width_rejected() {
        let _ = KernelSpec::new("bad", TaskShape::new(0.1, 0.1)).with_max_width(0);
    }
}
