//! # joss-dag — task-DAG substrate
//!
//! Task-based applications are expressed as directed acyclic graphs whose
//! vertices are *tasks* and edges are dependencies (paper §1). Tasks are
//! instances of *kernels* (task types): a typical kernel is invoked many
//! times, and all invocations run the same routine — the property JOSS's
//! online per-kernel sampling relies on (§5.1).
//!
//! This crate provides:
//!
//! * [`kernel`] — kernel (task-type) descriptions carrying the computational
//!   shape the platform executes;
//! * [`graph`] — a compact DAG container with dependency tracking, readiness,
//!   and structural analyses (longest path, degree of parallelism);
//! * [`generators`] — generic DAG shapes (chains, fork-join, layered random)
//!   used by tests; the paper's ten benchmarks live in `joss-workloads`.

pub mod generators;
pub mod graph;
pub mod kernel;

pub use graph::{GraphError, TaskGraph, TaskGraphBuilder, TaskId};
pub use kernel::{KernelId, KernelSpec};
