//! Time-series sampling of the metric catalog: a background sampler
//! snapshots every counter, gauge, and histogram into a fixed-size ring,
//! and rates are derived at *query* time by differencing two samples —
//! the catalog stays a set of monotonic sums (one relaxed add on the hot
//! path, per the crate's design rules) and still answers "how fast is
//! this moving right now".
//!
//! One ring per process, like the catalog it samples: [`RING_CAP`]
//! samples at the sampler's cadence (1 s by default — a five-minute
//! window) in catalog order, so a sample is four flat arrays and no
//! per-sample name storage. `joss-serve` starts the sampler at bind time
//! and exposes the derived rates at `GET /v1/timeseries`; `joss_top`
//! polls that endpoint for its per-backend gauges.
//!
//! A sample is *consistent per series*, not across series: each counter
//! is a sum of monotonic relaxed stripes, so a sample taken mid-burst
//! may miss the newest increments but can never read a torn or
//! decreasing value — consecutive samples are non-decreasing per
//! counter, which is all rate derivation needs. Everything here is a
//! no-op under `telemetry-off`.

#[cfg(not(feature = "telemetry-off"))]
use crate::catalog;
use std::fmt::Write as _;
#[cfg(not(feature = "telemetry-off"))]
use std::sync::Mutex;
#[cfg(not(feature = "telemetry-off"))]
use std::sync::OnceLock;
use std::time::Duration;
#[cfg(not(feature = "telemetry-off"))]
use std::time::Instant;

/// Ring capacity: at the default 1 s cadence, five minutes of history.
pub const RING_CAP: usize = 300;

/// The sampler's default cadence.
pub const DEFAULT_INTERVAL: Duration = Duration::from_secs(1);

/// One snapshot of the whole catalog. The arrays are indexed in catalog
/// order ([`crate::catalog::counters`] / `gauges` / `histograms`), so a
/// sample carries no names — readers resolve indices against the static
/// catalog.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Microseconds since the time-series epoch (first sample).
    pub t_us: u64,
    /// Counter totals, in [`crate::catalog::counters`] order.
    pub counters: Box<[u64]>,
    /// Gauge values, in [`crate::catalog::gauges`] order.
    pub gauges: Box<[i64]>,
    /// Histogram observation counts, in catalog order (a histogram's
    /// count is itself a monotonic counter, so it rates like one).
    pub hist_counts: Box<[u64]>,
    /// Histogram value sums (microseconds), in catalog order.
    pub hist_sums: Box<[u64]>,
}

/// A counter's movement over the queried window.
#[derive(Debug, Clone)]
pub struct Rate {
    /// Catalog series name.
    pub name: &'static str,
    /// Total at the newest sample.
    pub value: u64,
    /// Increase across the window (newest minus oldest-in-window).
    pub delta: u64,
    /// `delta` per second of sampled wall time.
    pub per_sec: f64,
}

#[cfg(not(feature = "telemetry-off"))]
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[cfg(not(feature = "telemetry-off"))]
static RING: Mutex<Vec<Sample>> = Mutex::new(Vec::new());

/// Take one sample of the catalog now and append it to the ring (oldest
/// dropped at capacity). The sampler thread calls this on its cadence;
/// tests and the `/v1/timeseries?sample=1` escape hatch call it
/// directly for deterministic sample counts.
pub fn sample_now() {
    #[cfg(not(feature = "telemetry-off"))]
    {
        if !crate::enabled() {
            return;
        }
        let t_us = epoch().elapsed().as_micros().min(u64::MAX as u128) as u64;
        let counters: Box<[u64]> = catalog::counters().iter().map(|c| c.get()).collect();
        let gauges: Box<[i64]> = catalog::gauges().iter().map(|g| g.get()).collect();
        let mut hist_counts = Vec::with_capacity(catalog::histograms().len());
        let mut hist_sums = Vec::with_capacity(catalog::histograms().len());
        for h in catalog::histograms() {
            let snap = h.snapshot();
            hist_counts.push(snap.count);
            hist_sums.push(snap.sum);
        }
        let sample = Sample {
            t_us,
            counters,
            gauges,
            hist_counts: hist_counts.into_boxed_slice(),
            hist_sums: hist_sums.into_boxed_slice(),
        };
        let mut ring = RING.lock().expect("timeseries ring lock");
        if ring.len() >= RING_CAP {
            ring.remove(0);
        }
        ring.push(sample);
    }
}

/// Start the background sampler at `interval` (idempotent: the first
/// call spawns one detached thread for the life of the process; later
/// calls — a second in-process daemon, tests — are no-ops). The thread
/// is cheap: one catalog scan per tick, asleep otherwise.
pub fn start_sampler(interval: Duration) {
    #[cfg(not(feature = "telemetry-off"))]
    {
        static STARTED: OnceLock<()> = OnceLock::new();
        STARTED.get_or_init(|| {
            let interval = interval.max(Duration::from_millis(10));
            std::thread::Builder::new()
                .name("joss-ts-sampler".into())
                .spawn(move || loop {
                    sample_now();
                    std::thread::sleep(interval);
                })
                .expect("spawn timeseries sampler");
        });
    }
    #[cfg(feature = "telemetry-off")]
    let _ = interval;
}

/// Samples currently held, oldest first.
pub fn samples() -> Vec<Sample> {
    #[cfg(not(feature = "telemetry-off"))]
    {
        RING.lock().expect("timeseries ring lock").clone()
    }
    #[cfg(feature = "telemetry-off")]
    Vec::new()
}

/// Number of samples currently held.
pub fn len() -> usize {
    #[cfg(not(feature = "telemetry-off"))]
    {
        RING.lock().expect("timeseries ring lock").len()
    }
    #[cfg(feature = "telemetry-off")]
    0
}

/// Drop all samples (test isolation).
pub fn clear() {
    #[cfg(not(feature = "telemetry-off"))]
    RING.lock().expect("timeseries ring lock").clear();
}

/// Per-counter rates over (at most) the trailing `window`: each counter's
/// delta between the newest sample and the oldest sample still inside the
/// window, divided by the wall time those samples span. Histogram
/// observation counts are included under their series name with a
/// `_count` suffix. Empty when fewer than two samples overlap the window.
pub fn rates(window: Duration) -> Vec<Rate> {
    #[cfg(not(feature = "telemetry-off"))]
    {
        let ring = RING.lock().expect("timeseries ring lock");
        let Some(newest) = ring.last() else {
            return Vec::new();
        };
        let window_us = window.as_micros().min(u64::MAX as u128) as u64;
        let horizon = newest.t_us.saturating_sub(window_us);
        let Some(oldest) = ring.iter().find(|s| s.t_us >= horizon) else {
            return Vec::new();
        };
        let span_us = newest.t_us.saturating_sub(oldest.t_us);
        if span_us == 0 {
            return Vec::new();
        }
        let secs = span_us as f64 / 1e6;
        let mut out = Vec::with_capacity(newest.counters.len() + newest.hist_counts.len());
        for (i, c) in catalog::counters().iter().enumerate() {
            let value = newest.counters[i];
            let delta = value.saturating_sub(oldest.counters[i]);
            out.push(Rate {
                name: c.name(),
                value,
                delta,
                per_sec: delta as f64 / secs,
            });
        }
        for (i, h) in catalog::histograms().iter().enumerate() {
            let value = newest.hist_counts[i];
            let delta = value.saturating_sub(oldest.hist_counts[i]);
            out.push(Rate {
                name: h.name(),
                value,
                delta,
                per_sec: delta as f64 / secs,
            });
        }
        out
    }
    #[cfg(feature = "telemetry-off")]
    {
        let _ = window;
        Vec::new()
    }
}

/// The `GET /v1/timeseries` response body: sample bookkeeping, the
/// per-counter rates over `window` (histograms appear by their series
/// name; their `delta` is observations), and current gauge values.
/// Renders a well-formed (near-empty) document when telemetry is
/// compiled out or fewer than two samples exist.
pub fn render_json(window: Duration) -> String {
    let mut out = String::with_capacity(4 * 1024);
    let (n_samples, span_us) = span_info();
    let _ = write!(
        out,
        "{{\"timeseries_schema\":1,\"samples\":{},\"ring_cap\":{},\
         \"window_secs\":{},\"span_us\":{},\"rates\":[",
        n_samples,
        RING_CAP,
        window.as_secs(),
        span_us,
    );
    for (i, r) in rates(window).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"value\":{},\"delta\":{},\"per_sec\":{:.3}}}",
            r.name, r.value, r.delta, r.per_sec
        );
    }
    out.push_str("],\"gauges\":[");
    #[cfg(not(feature = "telemetry-off"))]
    for (i, g) in catalog::gauges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",\"value\":{}}}", g.name(), g.get());
    }
    out.push_str("]}");
    out
}

/// (samples held, wall microseconds between oldest and newest).
fn span_info() -> (usize, u64) {
    #[cfg(not(feature = "telemetry-off"))]
    {
        let ring = RING.lock().expect("timeseries ring lock");
        let span = match (ring.first(), ring.last()) {
            (Some(first), Some(last)) => last.t_us.saturating_sub(first.t_us),
            _ => 0,
        };
        (ring.len(), span)
    }
    #[cfg(feature = "telemetry-off")]
    (0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn render_is_well_formed_json_even_when_empty() {
        // Cannot clear under other tests' feet reliably, but the render
        // must always be parseable-shaped regardless of sample count.
        let body = render_json(Duration::from_secs(60));
        assert!(body.starts_with("{\"timeseries_schema\":1,"));
        assert!(body.ends_with("]}"));
        assert!(body.contains("\"rates\":["));
    }

    #[cfg(feature = "telemetry-off")]
    #[test]
    fn compiled_out_is_inert() {
        sample_now();
        start_sampler(Duration::from_millis(10));
        assert_eq!(len(), 0);
        assert!(samples().is_empty());
        assert!(rates(Duration::from_secs(60)).is_empty());
        let body = render_json(Duration::from_secs(60));
        assert!(body.contains("\"samples\":0"));
    }
}
