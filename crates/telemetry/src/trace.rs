//! Span/event tracing with bounded in-memory ring capture.
//!
//! A trace is identified by a random 64-bit id, rendered as 16 hex
//! digits. The id travels with the work: the fleet coordinator mints one
//! per campaign and sends it to every backend in the `X-Joss-Trace`
//! request header; the serve executor installs it as the thread-local
//! *current* trace before running the job, so spans recorded anywhere
//! down the call stack (campaign workers, the engine) tag themselves
//! without threading an id argument through every layer.
//!
//! Capture is a global mutex-guarded ring of the most recent
//! [`RING_CAP`] records — tracing is a flight recorder, not a durable
//! log. The mutex is fine because span granularity is per *spec* /
//! per *request* (milliseconds), never per engine event. Everything is a
//! no-op when [`crate::enabled`] is false and compiles out entirely
//! under `telemetry-off`.

use std::cell::Cell;
#[cfg(not(feature = "telemetry-off"))]
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "telemetry-off"))]
use std::sync::Mutex;
use std::sync::OnceLock;
use std::time::Instant;

/// Ring capacity: enough for the tail of a large campaign (two records
/// per spec span) without unbounded growth.
pub const RING_CAP: usize = 4096;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Start,
    /// A span closed; `dur_us` holds its wall-clock duration.
    End,
    /// A point-in-time event.
    Instant,
}

impl EventKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Start => "start",
            EventKind::End => "end",
            EventKind::Instant => "event",
        }
    }
}

/// One captured record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Microseconds since this process's trace epoch (first capture).
    pub t_us: u64,
    /// Owning trace id (0 = untraced work).
    pub trace_id: u64,
    /// Static span/event name (e.g. `"spec"`, `"request"`, `"steal"`).
    pub name: &'static str,
    pub kind: EventKind,
    /// Free-form detail (spec index, backend addr, request id...).
    pub detail: String,
    /// Span duration for [`EventKind::End`] records, else 0.
    pub dur_us: u64,
}

#[cfg(not(feature = "telemetry-off"))]
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[cfg(not(feature = "telemetry-off"))]
fn now_us() -> u64 {
    epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

#[cfg(not(feature = "telemetry-off"))]
static RING: Mutex<VecDeque<TraceEvent>> = Mutex::new(VecDeque::new());

#[cfg(not(feature = "telemetry-off"))]
fn push(ev: TraceEvent) {
    let mut ring = RING.lock().expect("trace ring lock");
    if ring.len() >= RING_CAP {
        ring.pop_front();
    }
    ring.push_back(ev);
}

/// Mint a fresh trace id: SplitMix64 over a global counter seeded from
/// wall clock + pid, so concurrent processes (fleet backends) don't
/// collide. Never returns 0 (the "untraced" sentinel).
pub fn new_trace_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        t ^ ((std::process::id() as u64) << 32)
    });
    loop {
        let mut z = seed.wrapping_add(
            SEQ.fetch_add(1, Ordering::Relaxed)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        if z != 0 {
            return z;
        }
    }
}

/// A trace id as it appears on the wire: 16 lowercase hex digits.
pub fn format_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a wire-format trace id (any-case hex, 1-16 digits). `None` for
/// anything else — a malformed header means "start a fresh trace", never
/// an error.
pub fn parse_id(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().filter(|&id| id != 0)
}

thread_local! {
    /// The trace id spans on this thread inherit (0 = none).
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// Install `id` as this thread's current trace (0 clears it). Returns
/// the previous id so callers can restore it.
pub fn set_current(id: u64) -> u64 {
    CURRENT.with(|c| c.replace(id))
}

/// This thread's current trace id (0 = none).
pub fn current() -> u64 {
    CURRENT.with(|c| c.get())
}

/// Record a point-in-time event under this thread's current trace.
pub fn event(name: &'static str, detail: impl Into<String>) {
    #[cfg(not(feature = "telemetry-off"))]
    {
        if !crate::enabled() {
            return;
        }
        push(TraceEvent {
            t_us: now_us(),
            trace_id: current(),
            name,
            kind: EventKind::Instant,
            detail: detail.into(),
            dur_us: 0,
        });
    }
    #[cfg(feature = "telemetry-off")]
    let _ = (name, detail.into());
}

/// An RAII span: records a `Start` event on construction and an `End`
/// (with duration) on drop. `#[must_use]` — binding it to `_` drops it
/// immediately and times nothing.
#[must_use = "a span measures its own lifetime; bind it to a named local"]
pub struct Span {
    name: &'static str,
    trace_id: u64,
    started: Instant,
    live: bool,
}

impl Span {
    /// Open a span under this thread's current trace.
    pub fn enter(name: &'static str, detail: impl Into<String>) -> Span {
        Span::with_trace(current(), name, detail)
    }

    /// Open a span under an explicit trace id (campaign workers capture
    /// the id once, outside the worker closure).
    pub fn with_trace(trace_id: u64, name: &'static str, detail: impl Into<String>) -> Span {
        let live = crate::enabled();
        #[cfg(not(feature = "telemetry-off"))]
        if live {
            push(TraceEvent {
                t_us: now_us(),
                trace_id,
                name,
                kind: EventKind::Start,
                detail: detail.into(),
                dur_us: 0,
            });
        }
        #[cfg(feature = "telemetry-off")]
        let _ = detail.into();
        Span {
            name,
            trace_id,
            started: Instant::now(),
            live,
        }
    }

    /// The span's wall-clock age (what `End` will record as `dur_us`).
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        #[cfg(not(feature = "telemetry-off"))]
        if self.live {
            push(TraceEvent {
                t_us: now_us(),
                trace_id: self.trace_id,
                name: self.name,
                kind: EventKind::End,
                detail: String::new(),
                dur_us: self.started.elapsed().as_micros().min(u64::MAX as u128) as u64,
            });
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (self.name, self.trace_id, self.live);
    }
}

/// Copy out the ring's current contents, oldest first.
pub fn snapshot() -> Vec<TraceEvent> {
    #[cfg(not(feature = "telemetry-off"))]
    {
        RING.lock()
            .expect("trace ring lock")
            .iter()
            .cloned()
            .collect()
    }
    #[cfg(feature = "telemetry-off")]
    Vec::new()
}

/// Drop everything captured so far (test isolation).
pub fn clear() {
    #[cfg(not(feature = "telemetry-off"))]
    RING.lock().expect("trace ring lock").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_rejects() {
        let id = new_trace_id();
        assert_ne!(id, 0);
        assert_eq!(parse_id(&format_id(id)), Some(id));
        assert_eq!(parse_id(""), None);
        assert_eq!(parse_id("0"), None, "0 is the untraced sentinel");
        assert_eq!(parse_id("zznotahexid"), None);
        assert_eq!(parse_id("00112233445566778899"), None, "too long");
    }

    #[test]
    fn ids_are_distinct() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, b);
    }

    #[test]
    fn current_trace_nests_and_restores() {
        let prev = set_current(42);
        assert_eq!(current(), 42);
        let inner = set_current(7);
        assert_eq!(inner, 42);
        set_current(inner);
        assert_eq!(current(), 42);
        set_current(prev);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn span_records_start_and_end() {
        let id = new_trace_id();
        {
            let _span = Span::with_trace(id, "test_span", "detail");
            event("test_event", "mid");
        }
        let events = snapshot();
        let mine: Vec<_> = events.iter().filter(|e| e.trace_id == id).collect();
        assert!(
            mine.iter()
                .any(|e| e.name == "test_span" && e.kind == EventKind::Start),
            "missing start record"
        );
        assert!(
            mine.iter()
                .any(|e| e.name == "test_span" && e.kind == EventKind::End),
            "missing end record"
        );
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn ring_is_bounded() {
        for _ in 0..RING_CAP + 64 {
            event("flood", "");
        }
        assert!(snapshot().len() <= RING_CAP);
    }
}
