//! # joss-telemetry — unified metrics, tracing, and profiling
//!
//! The diagnostic substrate wired through every layer of the stack: the
//! engine flushes per-run profiling tallies here, `Campaign` records
//! per-spec spans and latencies, the serve reactor counts and times every
//! request, and the fleet coordinator publishes its steal bookkeeping.
//! `joss-serve` renders the whole catalog at `GET /metrics`
//! (Prometheus text), and the `joss_sweep`/`joss_fleet` CLIs snapshot it
//! to JSONL with `--telemetry-out`.
//!
//! Design constraints, in order:
//!
//! * **Zero dependencies.** The vendored dependency set has no metrics
//!   crate; everything here is `std` atomics and one mutex-guarded ring.
//! * **One relaxed atomic add on the hot path.** [`metrics::Counter`] and
//!   [`metrics::Histogram`] are striped into per-thread shards
//!   (cache-line padded; a thread writes only its own stripe) that are
//!   summed at scrape time — recording never takes a lock and never
//!   contends in the common case.
//! * **Compile-out proof.** Building with the `telemetry-off` feature
//!   turns every recording call into a no-op the optimizer deletes; the
//!   CI overhead job builds the engine bench both ways and gates on the
//!   throughput ratio.
//! * **Static registration.** All well-known series live in [`catalog`]
//!   as `static` items (declared with [`counter!`]/[`gauge!`]/
//!   [`histogram!`]), so a scrape shows the full catalog — zeros
//!   included — from the first request, and recording is a static
//!   reference, not a registry lookup.
//!
//! Tracing ([`trace`]) is a bounded in-memory ring of span/event records
//! tagged with 64-bit trace ids. A fleet campaign mints one id and
//! propagates it to every backend via the `X-Joss-Trace` request header;
//! the serve daemon adopts it (echoing `X-Joss-Request-Id` on every
//! response) and tags its request and campaign spans with it, so the
//! snapshots from coordinator and backends stitch into one distributed
//! trace. See `docs/OBSERVABILITY.md` for the catalog, formats, and
//! measured overhead.

pub mod catalog;
pub mod metrics;
pub mod render;
pub mod timeseries;
pub mod trace;

pub use metrics::{Counter, CounterVec, Gauge, Histogram};
pub use render::{render_prometheus, snapshot_jsonl};
pub use trace::Span;

/// Whether this build compiled telemetry out (`--features telemetry-off`).
/// Surfaced by `joss-serve`'s `/healthz` so an operator (or `joss_top`)
/// can tell a quiet backend from a blind one.
pub const COMPILED_OUT: bool = cfg!(feature = "telemetry-off");

#[cfg(not(feature = "telemetry-off"))]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(not(feature = "telemetry-off"))]
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry is live. Always `false` under `telemetry-off` (a
/// `const`, so gated code folds away); otherwise a runtime flag that
/// defaults to on. Cheap enough to check per *run*, not per event — the
/// engine keeps local tallies and branches on this once, at flush.
#[cfg(not(feature = "telemetry-off"))]
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Compiled-out build: telemetry is never enabled.
#[cfg(feature = "telemetry-off")]
#[inline]
pub const fn enabled() -> bool {
    false
}

/// Flip the runtime flag (benchmarks measuring the branch-on-enabled
/// paths; tests). A no-op under `telemetry-off`.
pub fn set_enabled(on: bool) {
    #[cfg(not(feature = "telemetry-off"))]
    ENABLED.store(on, Ordering::Relaxed);
    #[cfg(feature = "telemetry-off")]
    let _ = on;
}

/// Declare a static [`metrics::Counter`]:
/// `counter!(pub static FOO: "joss_foo_total", "what it counts");`
#[macro_export]
macro_rules! counter {
    ($vis:vis static $ident:ident : $name:literal, $help:literal) => {
        $vis static $ident: $crate::metrics::Counter =
            $crate::metrics::Counter::new($name, $help);
    };
}

/// Declare a static [`metrics::Gauge`].
#[macro_export]
macro_rules! gauge {
    ($vis:vis static $ident:ident : $name:literal, $help:literal) => {
        $vis static $ident: $crate::metrics::Gauge = $crate::metrics::Gauge::new($name, $help);
    };
}

/// Declare a static [`metrics::Histogram`] (values in microseconds by
/// convention; rendered as a Prometheus summary in seconds).
#[macro_export]
macro_rules! histogram {
    ($vis:vis static $ident:ident : $name:literal, $help:literal) => {
        $vis static $ident: $crate::metrics::Histogram =
            $crate::metrics::Histogram::new($name, $help);
    };
}

/// Declare a static [`metrics::CounterVec`] (one label dimension).
#[macro_export]
macro_rules! counter_vec {
    ($vis:vis static $ident:ident : $name:literal, $label:literal, $help:literal) => {
        $vis static $ident: $crate::metrics::CounterVec =
            $crate::metrics::CounterVec::new($name, $label, $help);
    };
}
