//! The static metric catalog: every well-known series in the stack,
//! declared here so a scrape renders the complete set (zeros included)
//! from the first request, and so recording sites are plain static
//! references — no registry lookup, no first-use registration race.
//!
//! Naming follows Prometheus conventions: `joss_<layer>_<what>_total`
//! for counters, `_seconds`/`_us` units spelled out, gauges unsuffixed.
//! All of these are **process-global**: a process hosting several
//! in-process serve backends (the fleet `--spawn` topology, the test
//! suites) accumulates across them, while each backend's `/stats` stays
//! per-instance. `docs/OBSERVABILITY.md` is the human-facing catalog.

use crate::metrics::{Counter, CounterVec, Gauge, Histogram};
use crate::{counter, counter_vec, gauge, histogram};

// --- serve: request plumbing -----------------------------------------------

counter!(pub static SERVE_REQUESTS: "joss_serve_requests_total",
    "HTTP requests whose head parsed (any method or path)");
counter!(pub static SERVE_CONNECTIONS: "joss_serve_connections_total",
    "TCP connections accepted");
counter!(pub static SERVE_BAD_REQUESTS: "joss_serve_bad_requests_total",
    "requests answered 4xx (framing errors included)");
counter!(pub static SERVE_IO_ERRORS: "joss_serve_io_errors_total",
    "connections dropped on transport errors or blown deadlines");
counter!(pub static SERVE_HANDLER_PANICS: "joss_serve_handler_panics_total",
    "handler panics contained by the executor pool");

// --- serve: the campaign endpoint ------------------------------------------
// The scrape-consistency identity, asserted by tests and the CI gate:
// campaign_requests_total == campaign_hits_total + campaigns_admitted_total
//                            + rejected_503_total + campaign_errors_total
// ("admitted" counts at job push, so the identity holds whenever the
// daemon is quiescent; mid-run the right side may trail the left by the
// requests still being routed).

counter!(pub static SERVE_CAMPAIGN_REQUESTS: "joss_serve_campaign_requests_total",
    "POST /v1/campaign requests routed");
counter!(pub static SERVE_CAMPAIGN_HITS: "joss_serve_campaign_hits_total",
    "campaign requests served from memory (raw memo, cache, shard slice, or store)");
counter!(pub static SERVE_CAMPAIGNS_ADMITTED: "joss_serve_campaigns_admitted_total",
    "campaign misses admitted and handed to the executor pool");
counter!(pub static SERVE_REJECTED_503: "joss_serve_rejected_503_total",
    "campaign requests shed with 503 + Retry-After");
counter!(pub static SERVE_CAMPAIGN_ERRORS: "joss_serve_campaign_errors_total",
    "campaign requests answered 4xx before admission");
counter!(pub static SERVE_CACHE_HITS: "joss_serve_cache_hits_total",
    "campaign requests served from the results cache");
counter!(pub static SERVE_STORE_HITS: "joss_serve_store_hits_total",
    "campaign requests assembled whole from the per-spec store");
counter!(pub static SERVE_STORE_SPEC_HITS: "joss_serve_store_spec_hits_total",
    "individual specs spliced in from the store instead of re-simulated");
counter!(pub static SERVE_CAMPAIGNS_EXECUTED: "joss_serve_campaigns_executed_total",
    "campaigns actually simulated by the executor pool");
counter!(pub static SERVE_RECORDS_STREAMED: "joss_serve_records_streamed_total",
    "record lines streamed by executed campaigns");
gauge!(pub static SERVE_EXECUTOR_QUEUE_DEPTH: "joss_serve_executor_queue_depth",
    "admitted jobs waiting for an executor (sampled at scrape)");
gauge!(pub static SERVE_ACTIVE_CAMPAIGNS: "joss_serve_active_campaigns",
    "campaigns currently streaming records (sampled at scrape)");
histogram!(pub static SERVE_MISS_SECONDS: "joss_serve_campaign_miss_duration",
    "wall-clock microseconds an admitted campaign spent in run_job");

// --- engine profiling hooks -------------------------------------------------
// Flushed once per engine run from local tallies (never per-event
// atomics), gated on `crate::enabled()` — the golden fixture and the
// throughput bench see identical behavior either way.

counter!(pub static ENGINE_RUNS: "joss_engine_runs_total",
    "discrete-event engine runs completed");
counter!(pub static ENGINE_EVENTS: "joss_engine_events_total",
    "events popped from the calendar queue");
counter!(pub static ENGINE_DISPATCHES: "joss_engine_dispatches_total",
    "dispatch attempts (core wakes that scanned for work)");
counter!(pub static ENGINE_STEAL_ATTEMPTS: "joss_engine_steal_attempts_total",
    "dispatches that fell through to the steal scan");
counter!(pub static ENGINE_STEALS: "joss_engine_steals_total",
    "tasks obtained by stealing from another core's queue");
counter!(pub static ENGINE_ARENA_RECYCLES: "joss_engine_arena_recycles_total",
    "core vectors recycled through the arena free list");
counter!(pub static ENGINE_TASKS: "joss_engine_tasks_total",
    "tasks completed across all runs");
gauge!(pub static ENGINE_EVENT_QUEUE_PEAK: "joss_engine_event_queue_peak",
    "high-water mark of the calendar event queue (across runs)");

// --- sweep / campaign executor ----------------------------------------------

counter!(pub static SWEEP_CAMPAIGNS: "joss_sweep_campaigns_total",
    "campaign executions started (any entry point)");
counter!(pub static SWEEP_SPECS: "joss_sweep_specs_total",
    "specs executed by campaign workers");
histogram!(pub static SWEEP_SPEC_SECONDS: "joss_sweep_spec_duration",
    "wall-clock microseconds one spec took to simulate");

// --- fleet coordinator -------------------------------------------------------

counter!(pub static FLEET_RUNS: "joss_fleet_runs_total",
    "fleet campaigns dispatched");
counter!(pub static FLEET_SHARDS_PLANNED: "joss_fleet_shards_planned_total",
    "ranges cut by fleet shard plans");
counter!(pub static FLEET_TASKS_COMPLETED: "joss_fleet_tasks_completed_total",
    "range tasks completed across all backends");
counter!(pub static FLEET_STEAL_ATTEMPTS: "joss_fleet_steal_attempts_total",
    "steal candidates polled (victim /stats fetched)");
counter!(pub static FLEET_STEALS_COMMITTED: "joss_fleet_steals_committed_total",
    "steals committed: straggler tails re-issued to idle backends");
counter!(pub static FLEET_STEALS_INVALIDATED: "joss_fleet_steals_invalidated_total",
    "steals justified by the poll but invalidated at commit (attempt concluded or raced)");
counter!(pub static FLEET_STOLEN_SPECS: "joss_fleet_stolen_specs_total",
    "specs moved by committed steals");
counter!(pub static FLEET_FAILOVERS: "joss_fleet_failovers_total",
    "range attempts that failed over to another backend");
counter!(pub static FLEET_SHEDS: "joss_fleet_sheds_total",
    "503 sheds absorbed (each waited out a Retry-After)");
counter_vec!(pub static FLEET_BACKEND_TASKS: "joss_fleet_backend_tasks_total", "backend",
    "range tasks completed per backend");

/// Every catalog counter, in render order.
pub fn counters() -> &'static [&'static Counter] {
    static COUNTERS: [&Counter; 33] = [
        &SERVE_REQUESTS,
        &SERVE_CONNECTIONS,
        &SERVE_BAD_REQUESTS,
        &SERVE_IO_ERRORS,
        &SERVE_HANDLER_PANICS,
        &SERVE_CAMPAIGN_REQUESTS,
        &SERVE_CAMPAIGN_HITS,
        &SERVE_CAMPAIGNS_ADMITTED,
        &SERVE_REJECTED_503,
        &SERVE_CAMPAIGN_ERRORS,
        &SERVE_CACHE_HITS,
        &SERVE_STORE_HITS,
        &SERVE_STORE_SPEC_HITS,
        &SERVE_CAMPAIGNS_EXECUTED,
        &SERVE_RECORDS_STREAMED,
        &ENGINE_RUNS,
        &ENGINE_EVENTS,
        &ENGINE_DISPATCHES,
        &ENGINE_STEAL_ATTEMPTS,
        &ENGINE_STEALS,
        &ENGINE_ARENA_RECYCLES,
        &ENGINE_TASKS,
        &SWEEP_CAMPAIGNS,
        &SWEEP_SPECS,
        &FLEET_RUNS,
        &FLEET_SHARDS_PLANNED,
        &FLEET_TASKS_COMPLETED,
        &FLEET_STEAL_ATTEMPTS,
        &FLEET_STEALS_COMMITTED,
        &FLEET_STEALS_INVALIDATED,
        &FLEET_STOLEN_SPECS,
        &FLEET_FAILOVERS,
        &FLEET_SHEDS,
    ];
    &COUNTERS
}

/// Every catalog gauge, in render order.
pub fn gauges() -> &'static [&'static Gauge] {
    static GAUGES: [&Gauge; 3] = [
        &SERVE_EXECUTOR_QUEUE_DEPTH,
        &SERVE_ACTIVE_CAMPAIGNS,
        &ENGINE_EVENT_QUEUE_PEAK,
    ];
    &GAUGES
}

/// Every catalog histogram, in render order.
pub fn histograms() -> &'static [&'static Histogram] {
    static HISTOGRAMS: [&Histogram; 2] = [&SERVE_MISS_SECONDS, &SWEEP_SPEC_SECONDS];
    &HISTOGRAMS
}

/// Every catalog labeled counter family, in render order.
pub fn counter_vecs() -> &'static [&'static CounterVec] {
    static COUNTER_VECS: [&CounterVec; 1] = [&FLEET_BACKEND_TASKS];
    &COUNTER_VECS
}
